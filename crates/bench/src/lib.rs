//! # skyserver-bench
//!
//! The benchmark harness of the reproduction.  Two entry points:
//!
//! * the `reproduce` binary regenerates every table and figure of the
//!   paper's evaluation (Table 1, Figures 5, 10, 11, 12, 13, 15 and the §12
//!   micro-measurements) against the synthetic catalog and prints
//!   paper-value vs measured-value side by side;
//! * the Criterion benches (`cargo bench`) measure the hot paths of each
//!   substrate (HTM lookups and covers, storage scans and seeks, SQL
//!   execution, the load pipeline, traffic simulation).

#![forbid(unsafe_code)]

use skyserver::{SkyServer, SkyServerBuilder, SurveyConfig};

/// Which data scale a reproduction run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~2.5 k objects: seconds to build, used in CI and unit tests.
    Tiny,
    /// ~60 k objects (the "Personal SkyServer" cut): the default.
    Personal,
    /// ~300 k objects: slower, closer statistics.
    Benchmark,
}

impl Scale {
    /// Parse a scale name (`tiny`, `personal`, `benchmark`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "personal" | "default" => Some(Scale::Personal),
            "benchmark" | "large" => Some(Scale::Benchmark),
            _ => None,
        }
    }

    /// The survey configuration for this scale.
    pub fn config(self) -> SurveyConfig {
        match self {
            Scale::Tiny => SurveyConfig::tiny(),
            Scale::Personal => SurveyConfig::personal_skyserver(),
            Scale::Benchmark => SurveyConfig::benchmark(),
        }
    }
}

/// Build a SkyServer at the given scale (generation + load).
pub fn build_server(scale: Scale) -> SkyServer {
    SkyServerBuilder::new()
        .with_config(scale.config())
        .build()
        .expect("building the SkyServer from a preset configuration cannot fail")
}

/// Format a byte count the way the paper's Table 1 does (KB/MB/GB).
pub fn human_bytes(bytes: u64) -> String {
    const KB: f64 = 1e3;
    const MB: f64 = 1e6;
    const GB: f64 = 1e9;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.1}GB", b / GB)
    } else if b >= MB {
        format!("{:.1}MB", b / MB)
    } else if b >= KB {
        format!("{:.0}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

/// Format a row count the way the paper's Table 1 does (k/m suffixes).
pub fn human_rows(rows: u64) -> String {
    if rows >= 1_000_000 {
        format!("{:.1}m", rows as f64 / 1e6)
    } else if rows >= 1_000 {
        format!("{:.0}k", rows as f64 / 1e3)
    } else {
        rows.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("Personal"), Some(Scale::Personal));
        assert_eq!(Scale::parse("benchmark"), Some(Scale::Benchmark));
        assert_eq!(Scale::parse("huge"), None);
        assert!(Scale::Tiny.config().target_objects < Scale::Personal.config().target_objects);
    }

    #[test]
    fn humanised_numbers() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(60_000), "60KB");
        assert_eq!(human_bytes(31_000_000_000), "31.0GB");
        assert_eq!(human_rows(14_000_000), "14.0m");
        assert_eq!(human_rows(73_000), "73k");
        assert_eq!(human_rows(98), "98");
    }
}
