//! The tracked SQL-executor performance suite.
//!
//! Three phases, one artifact:
//!
//! 1. **Microbenches** on a synthetic 100k+ row catalog: the scan / filter /
//!    join / aggregate hot paths, each measured three times — with the
//!    tree-walking interpreter (`set_expression_compilation(false)`), with
//!    compiled programs evaluated row-at-a-time
//!    (`set_vectorized_execution(false)`), and in the default vectorized
//!    batch mode — so both the compiled-vs-interpreted and the
//!    vectorized-vs-row ratios are recorded and tracked over time.  Each
//!    microbench also records the scan counters of the vectorized run
//!    (`segments_pruned`, `batches_processed`, `bytes_scanned`).
//! 2. **The documented query suite**: every data-mining query from
//!    `docs/QUERIES.md` runs end to end on a tiny SkyServer; per-query wall
//!    time, row count, estimated cardinality, plan class and raw scan
//!    counters go into the report, and any error or invariant violation
//!    fails the run.
//! 3. **Join ordering**: the pathological `Neighbors`/`PhotoObj` self-join
//!    queries (Q14/Q17/Q18) run with the cost-based join-ordering pass on
//!    and off (`set_cost_based_ordering`), recording wall time,
//!    `predicates_evaluated` and the estimate's q-error.  Validation fails
//!    if a cost-based plan evaluates more predicates than the syntactic
//!    order, or if Q14/Q18 lose their >= 2x predicate reduction.
//!
//! Output is written to `BENCH_SQL.json` (override with `--out`), then
//! re-read and validated: missing keys, a short query list or any query
//! violation exits non-zero — which is exactly what the CI quick-mode smoke
//! step relies on.
//!
//! ```text
//! cargo run --release -p skyserver-bench --bin sql_bench -- \
//!     [--quick] [--rows N] [--out BENCH_SQL.json]
//! ```

use skyserver_bench::{build_server, Scale};
use skyserver_queries::{run_all, twenty_queries, QueryReport};
use skyserver_sql::{FunctionRegistry, QueryLimits, SqlEngine};
use skyserver_storage::{ColumnDef, DataType, Database, TableSchema, Value};
use std::time::Instant;

/// One microbench: a name, the SQL, and how many rows it must return in
/// both modes (a result divergence is a correctness bug, not a perf number).
struct Micro {
    name: &'static str,
    sql: String,
}

/// Median wall-clock milliseconds over `runs` executions.
fn measure(engine: &mut SqlEngine, sql: &str, runs: usize) -> (f64, usize) {
    // One warm-up execution so allocator and cache effects settle.
    let warm = engine
        .execute(sql, QueryLimits::UNLIMITED)
        .unwrap_or_else(|e| panic!("microbench query failed: {e}\n  sql: {sql}"));
    let rows = warm.result.len();
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let started = Instant::now();
        let out = engine
            .execute(sql, QueryLimits::UNLIMITED)
            .expect("microbench query failed on a timed run");
        assert_eq!(out.result.len(), rows, "non-deterministic microbench");
        samples.push(started.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], rows)
}

/// A deterministic unindexed catalog for the scan/join microbenches, using
/// the reproduction's real ~54-column `PhotoObj` schema (the paper's table
/// has ~400 attributes — per-row name resolution cost grows with width, so
/// a narrow toy table would understate what compilation buys).  Every value
/// is a formula of the row number, so runs are exactly reproducible.
fn micro_engine(rows: usize) -> SqlEngine {
    let mut db = Database::new("sql_bench");
    let schema = skyserver_schema::photo_obj_schema();
    let width = schema.column_names().len();
    let type_idx = schema.column_index("type").unwrap();
    let flags_idx = schema.column_index("flags").unwrap();
    let mag_idx = schema.column_index("modelMag_r").unwrap();
    let rowv_idx = schema.column_index("rowv").unwrap();
    let colv_idx = schema.column_index("colv").unwrap();
    let htm_idx = schema.column_index("htmID").unwrap();
    db.create_table("photo", schema).unwrap();
    for i in 0..rows as i64 {
        let moving = i % 997 == 0;
        // Mostly-float filler for the remaining attributes, then overwrite
        // the columns the benchmark queries actually touch.
        let mut row: Vec<Value> = (0..width as i64)
            .map(|c| {
                if c == 0 {
                    Value::Int(i)
                } else if c < 9 {
                    Value::Int((i + c) % 1000)
                } else {
                    Value::Float(((i % 977) as f64) * 0.013 + c as f64)
                }
            })
            .collect();
        row[type_idx] = Value::Int(if i % 3 == 0 { 3 } else { 6 });
        row[flags_idx] = Value::Int(if i % 10 == 0 { 64 } else { 0 });
        row[mag_idx] = Value::Float(13.0 + (i % 900) as f64 * 0.01);
        row[rowv_idx] = Value::Float(if moving { 11.0 } else { (i % 7) as f64 * 0.1 });
        row[colv_idx] = Value::Float(if moving { 9.0 } else { (i % 5) as f64 * 0.1 });
        row[htm_idx] = Value::Int(6_000_000 + i / 16);
        db.insert("photo", row).unwrap();
    }
    // A narrow named table for the LIKE scan (PhotoObj has no string
    // column).
    let names = TableSchema::new(vec![
        ColumnDef::new("objID", DataType::Int),
        ColumnDef::new("name", DataType::Str),
    ]);
    db.create_table("obj_name", names).unwrap();
    for i in 0..rows as i64 {
        db.insert(
            "obj_name",
            vec![Value::Int(i), Value::str(format!("obj-{i:07}"))],
        )
        .unwrap();
    }
    // A small dimension table for the hash join (no index on the key, so
    // the join-strategy rule picks the hash path).
    let dim = TableSchema::new(vec![
        ColumnDef::new("htmID", DataType::Int),
        ColumnDef::new("zone", DataType::Int),
    ]);
    db.create_table("htm_zone", dim).unwrap();
    for i in 0..(rows as i64 / 16).max(1) {
        db.insert(
            "htm_zone",
            vec![Value::Int(6_000_000 + i), Value::Int(i % 128)],
        )
        .unwrap();
    }
    SqlEngine::new(db, FunctionRegistry::new())
}

fn microbenches() -> Vec<Micro> {
    vec![
        Micro {
            // The acceptance-criteria bench: a full-table filter over 100k+
            // rows; compiled ordinal resolution vs per-row name lookup.
            name: "scan_filter",
            sql: "select objID, modelMag_r from photo \
                  where modelMag_r between 16 and 18 and type = 3 and (flags & 64) = 0"
                .into(),
        },
        Micro {
            name: "velocity_scan_q15",
            sql: "select objID, sqrt(rowv*rowv + colv*colv) as velocity from photo \
                  where (rowv*rowv + colv*colv) between 50 and 1000"
                .into(),
        },
        Micro {
            name: "like_scan",
            sql: "select count(*) from obj_name where name like '%obj-0001%'".into(),
        },
        Micro {
            // htmID is monotonic in the row number, so every 4,096-row
            // segment covers a disjoint range and this range predicate lets
            // zone maps skip almost the whole table.
            name: "zone_pruned_range",
            sql: "select count(*) from photo where htmID between 6000000 and 6000400".into(),
        },
        Micro {
            name: "hash_join",
            sql: "select count(*) from photo p join htm_zone z on p.htmID = z.htmID \
                  where z.zone < 64"
                .into(),
        },
        Micro {
            name: "group_aggregate",
            sql: "select type, avg(modelMag_r) as m, count(*) as n from photo \
                  where flags = 0 group by type"
                .into(),
        },
        Micro {
            name: "distinct_pairs",
            sql: "select distinct type, flags from photo".into(),
        },
        Micro {
            name: "top_n_early_stop",
            sql: "select top 100 objID from photo where type = 3".into(),
        },
    ]
}

fn run_query_suite(compiled: bool) -> (f64, Vec<QueryReport>) {
    let mut server = build_server(Scale::Tiny);
    server.engine_mut().set_expression_compilation(compiled);
    let queries = twenty_queries();
    let started = Instant::now();
    let reports = run_all(&mut server, &queries).unwrap_or_else(|e| {
        eprintln!("query suite failed outright: {e}");
        std::process::exit(1);
    });
    (started.elapsed().as_secs_f64(), reports)
}

fn query_json(r: &QueryReport) -> String {
    format!(
        "{{\"id\": \"{}\", \"rows\": {}, \"est_rows\": {}, \"wall_ms\": {:.3}, \
         \"plan_class\": \"{}\", \
         \"rules_fired\": {}, \"rows_scanned\": {}, \"rows_from_index\": {}, \
         \"predicates_evaluated\": {}, \"bytes_scanned\": {}, \"segments_pruned\": {}, \
         \"batches_processed\": {}, \"violations\": {}}}",
        r.id,
        r.rows,
        r.est_rows
            .map(|n| n.to_string())
            .unwrap_or_else(|| "null".into()),
        r.wall_seconds * 1e3,
        r.plan_class,
        r.rules_fired.len(),
        r.rows_scanned,
        r.rows_from_index,
        r.predicates_evaluated,
        r.bytes_scanned,
        r.segments_pruned,
        r.batches_processed,
        r.violations.len()
    )
}

/// The queries whose plans the cost-based join-ordering pass rewrites most
/// aggressively (the `Neighbors`/`PhotoObj` self-join family): the phase
/// runs each with the pass on and off and records the plan-cost delta.
const JOIN_ORDERING_QUERIES: [&str; 3] = ["Q14", "Q17", "Q18"];

/// Symmetric q-error between an estimate and an actual row count, with +1
/// smoothing so empty results stay finite.
fn q_error(est: u64, actual: u64) -> f64 {
    let e = est as f64 + 1.0;
    let a = actual as f64 + 1.0;
    (e / a).max(a / e)
}

/// Phase: measure the cost-based join-ordering pass against the syntactic
/// baseline (`set_cost_based_ordering(false)`) on the pathological
/// self-join queries.  Returns the `join_ordering` JSON object.
fn join_ordering_phase(runs: usize) -> String {
    let mut on = build_server(Scale::Tiny);
    let mut off = build_server(Scale::Tiny);
    off.engine_mut().set_cost_based_ordering(false);
    let queries = twenty_queries();
    let mut entries = Vec::new();
    let mut max_q = 0.0f64;
    for id in JOIN_ORDERING_QUERIES {
        let q = queries
            .iter()
            .find(|q| q.id == id)
            .unwrap_or_else(|| panic!("join-ordering query {id} missing from the suite"));
        let sql = q.sql.trim();
        let summary = on.plan_summary(sql).expect("plan the cost-based query");
        let (on_ms, on_stats) = measure_read(on.engine_mut(), sql, runs);
        let (off_ms, off_stats) = measure_read(off.engine_mut(), sql, runs);
        let est = summary.est_rows.unwrap_or(0);
        let qe = q_error(est, on_stats.1 as u64);
        max_q = max_q.max(qe);
        let ratio = off_stats.0 as f64 / (on_stats.0 as f64).max(1.0);
        eprintln!(
            "  {id}: cost-on {on_ms:>9.2} ms / {} preds, cost-off {off_ms:>9.2} ms / {} preds \
             ({ratio:.0}x fewer predicates), q-error {qe:.2}",
            on_stats.0, off_stats.0
        );
        entries.push(format!(
            "      {{\"id\": \"{id}\", \"est_rows\": {est}, \"rows\": {}, \"q_error\": {qe:.3}, \
             \"cost_on\": {{\"wall_ms\": {on_ms:.3}, \"predicates_evaluated\": {}}}, \
             \"cost_off\": {{\"wall_ms\": {off_ms:.3}, \"predicates_evaluated\": {}}}, \
             \"predicate_ratio\": {ratio:.2}}}",
            on_stats.1, on_stats.0, off_stats.0
        ));
    }
    format!(
        "{{\n    \"queries\": [\n{}\n    ],\n    \"max_q_error\": {max_q:.3}\n  }}",
        entries.join(",\n")
    )
}

/// Median wall ms plus (predicates_evaluated, rows) through the read path.
fn measure_read(engine: &mut SqlEngine, sql: &str, runs: usize) -> (f64, (u64, usize)) {
    let warm = engine
        .execute(sql, QueryLimits::UNLIMITED)
        .unwrap_or_else(|e| panic!("join-ordering query failed: {e}\n  sql: {sql}"));
    let stats = (warm.stats.stats.predicates_evaluated, warm.result.len());
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let started = Instant::now();
        let out = engine
            .execute(sql, QueryLimits::UNLIMITED)
            .expect("join-ordering query failed on a timed run");
        assert_eq!(out.result.len(), stats.1, "non-deterministic query");
        samples.push(started.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], stats)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut rows: Option<usize> = None;
    let mut out = "BENCH_SQL.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--rows" => {
                i += 1;
                rows = args.get(i).and_then(|s| s.parse().ok());
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or(out);
            }
            other => {
                eprintln!(
                    "unknown argument {other}\nusage: sql_bench [--quick] [--rows N] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let rows = rows.unwrap_or(if quick { 24_000 } else { 120_000 });
    let runs = if quick { 3 } else { 5 };

    // ----------------------------------------------------------------------
    // Phase 1: interpreted-vs-compiled microbenches.
    // ----------------------------------------------------------------------
    eprintln!("building {rows}-row microbench catalog...");
    let mut engine = micro_engine(rows);
    let mut micro_json = Vec::new();
    for m in microbenches() {
        engine.set_expression_compilation(false);
        let (interpreted_ms, rows_a) = measure(&mut engine, &m.sql, runs);
        engine.set_expression_compilation(true);
        engine.set_vectorized_execution(false);
        let (row_ms, rows_b) = measure(&mut engine, &m.sql, runs);
        engine.set_vectorized_execution(true);
        let (compiled_ms, rows_c) = measure(&mut engine, &m.sql, runs);
        assert_eq!(
            rows_a, rows_b,
            "{}: interpreted and row-compiled modes disagree on the result",
            m.name
        );
        assert_eq!(
            rows_b, rows_c,
            "{}: row-compiled and vectorized modes disagree on the result",
            m.name
        );
        let stats = engine
            .execute(&m.sql, QueryLimits::UNLIMITED)
            .expect("stats run failed after successful timed runs")
            .stats
            .stats;
        let speedup = interpreted_ms / compiled_ms.max(1e-9);
        let vector_speedup = row_ms / compiled_ms.max(1e-9);
        eprintln!(
            "  {:<20} interpreted {:>9.2} ms   row {:>9.2} ms   vectorized {:>9.2} ms   \
             {:>5.2}x total {:>5.2}x vector  ({} rows, {} pruned)",
            m.name,
            interpreted_ms,
            row_ms,
            compiled_ms,
            speedup,
            vector_speedup,
            rows_a,
            stats.segments_pruned
        );
        micro_json.push(format!(
            "    \"{}\": {{\"interpreted_ms\": {:.3}, \"row_ms\": {:.3}, \
             \"compiled_ms\": {:.3}, \"speedup\": {:.2}, \"vector_speedup\": {:.2}, \
             \"rows\": {}, \"segments_pruned\": {}, \"batches_processed\": {}, \
             \"bytes_scanned\": {}}}",
            m.name,
            interpreted_ms,
            row_ms,
            compiled_ms,
            speedup,
            vector_speedup,
            rows_a,
            stats.segments_pruned,
            stats.batches_processed,
            stats.bytes_scanned
        ));
    }
    // Release the microbench catalog before timing the query suite: the
    // 120k-row engine holds tens of MB of column arrays and dictionaries,
    // and keeping it resident distorts the suite walls on small machines.
    drop(engine);

    // ----------------------------------------------------------------------
    // Phase 2: the documented query suite, both modes.
    // ----------------------------------------------------------------------
    eprintln!("running the documented query suite (interpreted)...");
    let (interpreted_wall, _) = run_query_suite(false);
    eprintln!("running the documented query suite (compiled)...");
    let (compiled_wall, reports) = run_query_suite(true);
    let mut failed = false;
    for r in &reports {
        if !r.violations.is_empty() {
            eprintln!("query {} violated its spec: {:?}", r.id, r.violations);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    let queries_json: Vec<String> = reports
        .iter()
        .map(|r| format!("      {}", query_json(r)))
        .collect();

    // ----------------------------------------------------------------------
    // Phase 3: cost-based join ordering vs the syntactic baseline.
    // ----------------------------------------------------------------------
    eprintln!("measuring the cost-based join-ordering pass (on vs off)...");
    let join_ordering_json = join_ordering_phase(runs);

    let report = format!(
        "{{\n  \"bench\": \"sql_exec\",\n  \"mode\": \"{}\",\n  \"microbench_rows\": {},\n  \
         \"runs_per_measurement\": {},\n  \"microbenches\": {{\n{}\n  }},\n  \
         \"query_suite\": {{\n    \"scale\": \"tiny\",\n    \"count\": {},\n    \
         \"interpreted_wall_s\": {:.3},\n    \"compiled_wall_s\": {:.3},\n    \
         \"speedup\": {:.2},\n    \"queries\": [\n{}\n    ]\n  }},\n  \
         \"join_ordering\": {}\n}}",
        if quick { "quick" } else { "full" },
        rows,
        runs,
        micro_json.join(",\n"),
        reports.len(),
        interpreted_wall,
        compiled_wall,
        interpreted_wall / compiled_wall.max(1e-9),
        queries_json.join(",\n"),
        join_ordering_json,
    );
    std::fs::write(&out, format!("{report}\n")).expect("write BENCH_SQL.json");
    eprintln!("wrote {out}");

    // ----------------------------------------------------------------------
    // Phase 4: validate the artifact (the CI smoke contract).
    // ----------------------------------------------------------------------
    let raw = std::fs::read_to_string(&out).expect("re-read the report");
    let parsed: serde_json::Value = serde_json::from_str(&raw).unwrap_or_else(|e| {
        eprintln!("BENCH_SQL.json is not valid JSON: {e:?}");
        std::process::exit(1);
    });
    let mut problems = Vec::new();
    for key in ["bench", "microbenches", "query_suite", "join_ordering"] {
        if parsed.get(key).is_none() {
            problems.push(format!("missing top-level key {key:?}"));
        }
    }
    for bench in [
        "scan_filter",
        "velocity_scan_q15",
        "like_scan",
        "zone_pruned_range",
        "hash_join",
        "group_aggregate",
        "distinct_pairs",
        "top_n_early_stop",
    ] {
        for key in ["speedup", "vector_speedup"] {
            let value = parsed
                .get("microbenches")
                .and_then(|m| m.get(bench))
                .and_then(|b| b.get(key))
                .and_then(|s| s.as_f64());
            if value.is_none() {
                problems.push(format!("microbench {bench:?} has no {key}"));
            }
        }
    }
    // Zone maps must actually fire somewhere: at the microbench scale the
    // range scan over the monotonic htmID column prunes whole segments.
    let pruned_somewhere = parsed
        .get("microbenches")
        .and_then(|m| m.as_object())
        .is_some_and(|benches| {
            benches.values().any(|b| {
                b.get("segments_pruned")
                    .and_then(|p| p.as_u64())
                    .unwrap_or(0)
                    > 0
            })
        });
    if !pruned_somewhere {
        problems.push("no microbench recorded a nonzero segments_pruned".into());
    }
    let queries = parsed
        .get("query_suite")
        .and_then(|q| q.get("queries"))
        .and_then(|q| q.as_array());
    match queries {
        None => problems.push("query_suite.queries missing".into()),
        Some(list) if list.len() < 20 => {
            problems.push(format!("only {} queries recorded", list.len()))
        }
        Some(list) => {
            for q in list {
                let violations = q.get("violations").and_then(|v| v.as_u64()).unwrap_or(99);
                if violations != 0 {
                    problems.push(format!(
                        "query {:?} recorded {violations} violations",
                        q.get("id")
                    ));
                }
                for key in ["segments_pruned", "batches_processed"] {
                    if q.get(key).and_then(|v| v.as_u64()).is_none() {
                        problems.push(format!("query {:?} has no {key}", q.get("id")));
                    }
                }
                if q.get("est_rows").is_none() {
                    problems.push(format!("query {:?} has no est_rows", q.get("id")));
                }
            }
        }
    }
    // The join-ordering phase must show the cost-based pass paying off: an
    // optimized plan evaluating MORE predicates than the syntactic order is
    // a cost-model regression, and Q14/Q18 specifically must keep their
    // >= 2x predicate reduction (the pathological self-join cross products).
    match parsed
        .get("join_ordering")
        .and_then(|j| j.get("queries"))
        .and_then(|q| q.as_array())
    {
        None => problems.push("join_ordering.queries missing".into()),
        Some(list) => {
            for id in JOIN_ORDERING_QUERIES {
                let Some(entry) = list
                    .iter()
                    .find(|e| e.get("id").and_then(|v| v.as_str()) == Some(id))
                else {
                    problems.push(format!("join_ordering has no entry for {id}"));
                    continue;
                };
                let preds = |side: &str| {
                    entry
                        .get(side)
                        .and_then(|s| s.get("predicates_evaluated"))
                        .and_then(|v| v.as_u64())
                };
                match (preds("cost_on"), preds("cost_off")) {
                    (Some(on), Some(off)) => {
                        if on > off {
                            problems.push(format!(
                                "{id}: cost-based plan evaluates more predicates \
                                 ({on}) than the syntactic order ({off})"
                            ));
                        }
                        if (id == "Q14" || id == "Q18") && on.saturating_mul(2) > off {
                            problems.push(format!(
                                "{id}: predicate reduction below 2x ({off} -> {on})"
                            ));
                        }
                    }
                    _ => problems.push(format!(
                        "{id}: join_ordering entry missing predicates_evaluated"
                    )),
                }
                if entry.get("q_error").and_then(|v| v.as_f64()).is_none() {
                    problems.push(format!("{id}: join_ordering entry has no q_error"));
                }
            }
        }
    }
    if !problems.is_empty() {
        eprintln!("BENCH_SQL.json failed validation:");
        for p in &problems {
            eprintln!("  - {p}");
        }
        std::process::exit(1);
    }
    eprintln!("BENCH_SQL.json validated: all keys present, every query clean");
}
