//! `http_bench` — drive the real HTTP server over TCP with traffic-shaped
//! sessions from N concurrent client threads and report throughput and
//! latency percentiles.
//!
//! Two serving modes are measured back to back:
//!
//! * **serialized** — a faithful replay of the PR-1 front end: every
//!   request handled under one global mutex (`Mutex<SkyServer>` serialized
//!   the whole site), no result cache, and `Connection: close` hardcoded
//!   in every response, so clients reconnect for each request;
//! * **shared** — the current architecture: pooled keep-alive HTTP
//!   server, `RwLock<Arc<SkyServer>>` snapshots, engine `&self` read path
//!   and the LRU result cache.
//!
//! A third phase measures the **mixed workload** the batch-job tier
//! exists for: interactive point queries with heavy analytic scans either
//! issued **inline** through `x_sql` (competing with interactive traffic
//! at full speed) or **routed through the job queue** (`x_job/submit`,
//! one paced batch worker).  The acceptance number is the interactive p99
//! in each mode against the scan-free baseline.
//!
//! A fourth phase drives the **`/api/v1` programmatic surface** with
//! typed clients: paginated result walking (follow `next_cursor` until
//! the full result is covered), object/cone lookups, and **error-path
//! sampling** (missing parameters, unknown endpoints, broken SQL — each
//! must answer its registered status with the structured envelope).  Any
//! status mismatch fails the run, so the bench doubles as an API smoke
//! test in CI quick mode.
//!
//! A fifth phase measures **overload behaviour**: a governor-capped site
//! is driven at 4x its admission cap.  Excess queries must be shed with
//! `503` + `Retry-After` (never queued), the p99 of the *accepted*
//! requests must stay within 3x of the unloaded baseline, a
//! `get_with_backoff` client must recover every request through the
//! storm, and RSS growth across the phase must stay bounded.  Any
//! violation fails the run.
//!
//! A sixth phase measures **publish under load**: while a mixed
//! interactive workload (head queries, `AS OF dr1` and `?release=dr1`
//! pins) runs and a batch job is mid-scan, `dr2` is published through
//! the admin path.  The gates: zero failed queries, the batch job
//! *completes* on its pinned snapshot (never cancelled or failed), the
//! `AS OF dr1` answer is byte-identical across the publish, `dr2`
//! appears in the release list, and the workload p99 during the publish
//! stays within 2x of its unpublished baseline.  Any violation fails
//! the run.
//!
//! Usage:
//!
//! ```text
//! http_bench [--scale tiny|personal|benchmark] [--threads N]
//!            [--requests N] [--quick] [--out BENCH.json]
//! ```
//!
//! The JSON report (stdout, and `--out` when given) captures the
//! serialized-vs-shared comparison, the mixed-workload p99s and the
//! API-traffic phase.

use skyserver_bench::{build_server, Scale};
use skyserver_web::{
    GovernorConfig, HttpClient, HttpServer, JobQueueConfig, ServerConfig, SkyServerSite,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The request mix of one simulated session, shaped like the §7 traffic
/// sections: mostly hot pages (home, famous places, navigator) plus a few
/// distinct SQL searches — the workload `traffic.rs` models.
fn session_paths(session: usize) -> Vec<String> {
    let lang = ["en", "jp", "de"][session % 3];
    vec![
        format!("/{lang}/"),
        format!("/{lang}/tools/places"),
        format!(
            "/{lang}/tools/navi?ra={}&dec=-0.8&zoom={}",
            180.0 + (session % 8) as f64 * 0.2,
            session % 3
        ),
        format!(
            "/{lang}/tools/search/x_sql?cmd=select+count(*)+from+PhotoObj&format=json"
        ),
        format!(
            "/{lang}/tools/search/x_sql?cmd=select+top+{}+objID,ra,dec+from+Galaxy+order+by+modelMag_r&format=csv",
            session % 7 + 5
        ),
        format!("/{lang}/help/browser"),
    ]
}

#[derive(Debug, Clone)]
struct LoadStats {
    requests: u64,
    errors: u64,
    elapsed_seconds: f64,
    requests_per_second: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn percentile(sorted_micros: &[u64], p: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_micros.len() as f64 - 1.0) * p).round() as usize;
    sorted_micros[rank] as f64 / 1000.0
}

/// The interactive side of the mixed workload: short point queries (index
/// seeks, counts, the navigator) — the traffic that must stay fast while
/// analytic scans run.
fn point_paths(session: usize) -> Vec<String> {
    vec![
        format!(
            "/en/tools/search/x_sql?cmd=select+top+{}+objID+from+PhotoObj&format=json",
            session % 9 + 1
        ),
        format!(
            "/en/tools/navi?ra={}&dec=-0.8&zoom={}",
            180.0 + (session % 8) as f64 * 0.2,
            session % 3
        ),
        "/en/tools/search/x_sql?cmd=select+count(*)+from+PhotoObj&format=json".to_string(),
    ]
}

/// The pinned query of the publish-under-load phase: its body must come
/// back byte-identical before and after `dr2` is published, because
/// `AS OF dr1` pins the scan to the dr1 snapshot.
const PINNED_AS_OF_PATH: &str = "/en/tools/search/x_sql?cmd=select+top+40+objID,ra,dec+from+PhotoObj+order+by+objID+as+of+dr1&format=json";

/// The mixed workload of the publish-under-load phase: head point
/// queries plus release-pinned traffic (`AS OF dr1` through the legacy
/// route and `?release=dr1` through the API) — every request must keep
/// answering 200 while the publish swaps the head snapshot underneath.
fn publish_paths(session: usize) -> Vec<String> {
    let mut paths = point_paths(session);
    paths.push(PINNED_AS_OF_PATH.to_string());
    paths.push(format!(
        "/api/v1/query?sql=select+top+{}+objID+from+PhotoObj+order+by+objID&limit=1000&release=dr1",
        session % 9 + 1
    ));
    paths
}

/// A heavy analytic scan: a nested-loop self-join over PhotoObj (millions
/// of probes at any scale).  The varying constant defeats the result
/// cache, as distinct ad-hoc analytic SQL would.
fn heavy_scan_sql(i: u64) -> String {
    format!(
        "select+count(*)+from+PhotoObj+a+join+PhotoObj+b+on+a.objID+%3C+b.objID+where+a.ra+%3E+{}",
        -(i as i64)
    )
}

/// Run `threads` concurrent clients, each issuing `requests_per_thread`
/// requests in traffic-shaped sessions.  With `keep_alive` the client
/// reuses one connection (the new server); without it every request opens
/// a fresh connection (the old `Connection: close` front end).
fn run_load(
    addr: SocketAddr,
    threads: usize,
    requests_per_thread: usize,
    keep_alive: bool,
) -> LoadStats {
    run_shaped_load(
        addr,
        threads,
        requests_per_thread,
        keep_alive,
        &session_paths,
    )
}

/// [`run_load`] with an explicit per-session request mix.
fn run_shaped_load(
    addr: SocketAddr,
    threads: usize,
    requests_per_thread: usize,
    keep_alive: bool,
    paths: &(dyn Fn(usize) -> Vec<String> + Sync),
) -> LoadStats {
    let started = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(requests_per_thread);
                    let mut errors = 0u64;
                    let mut client =
                        keep_alive.then(|| HttpClient::connect(addr).expect("connect"));
                    let mut issued = 0usize;
                    let mut session = t;
                    'outer: loop {
                        for path in paths(session) {
                            if issued == requests_per_thread {
                                break 'outer;
                            }
                            let request_started = Instant::now();
                            let outcome = match client.as_mut() {
                                Some(c) => c.get(&path),
                                None => skyserver_web::http_get(addr, &path),
                            };
                            match outcome {
                                Ok((200, _)) => {}
                                Ok(_) | Err(_) => {
                                    errors += 1;
                                    if keep_alive {
                                        // The server may have closed the
                                        // connection: reconnect.
                                        client =
                                            Some(HttpClient::connect(addr).expect("reconnect"));
                                    }
                                }
                            }
                            latencies.push(request_started.elapsed().as_micros() as u64);
                            issued += 1;
                        }
                        session += threads;
                    }
                    (latencies, errors)
                })
            })
            .collect();
        for h in handles {
            let (lat, err) = h.join().expect("client thread");
            all_latencies.extend(lat);
            errors += err;
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    all_latencies.sort_unstable();
    let requests = all_latencies.len() as u64;
    LoadStats {
        requests,
        errors,
        elapsed_seconds: elapsed,
        requests_per_second: requests as f64 / elapsed.max(1e-9),
        p50_ms: percentile(&all_latencies, 0.50),
        p99_ms: percentile(&all_latencies, 0.99),
        max_ms: all_latencies.last().copied().unwrap_or(0) as f64 / 1000.0,
    }
}

/// Counters of the API-traffic phase beyond latency.
#[derive(Debug, Default)]
struct ApiCounters {
    /// Paginated walks that covered their full result exactly once.
    walks_completed: u64,
    /// Rows accumulated across completed walks.
    rows_walked: u64,
    /// Error-path samples that answered the expected 400.
    sampled_400: u64,
    /// Error-path samples that answered the expected 404.
    sampled_404: u64,
    /// Error-path samples that answered the expected 422.
    sampled_422: u64,
    /// Requests whose status did not match the expectation (must be 0).
    status_mismatches: u64,
}

/// The API phase: each "session" walks a paginated query result through
/// its cursor chain, fetches an object and a cone, and samples three
/// error paths, asserting the registered status for every request.
fn run_api_load(
    addr: SocketAddr,
    threads: usize,
    requests_per_thread: usize,
    object_id: i64,
) -> (LoadStats, ApiCounters) {
    const WALK_SQL: &str = "select+top+40+objID,ra+from+PhotoObj+order+by+objID";
    const WALK_ROWS: u64 = 40;
    let started = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::new();
    let mut totals = ApiCounters::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(requests_per_thread);
                    let mut counters = ApiCounters::default();
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut session = t;
                    let timed_get = |client: &mut HttpClient,
                                     path: &str,
                                     expected: u16,
                                     latencies: &mut Vec<u64>|
                     -> Option<String> {
                        let request_started = Instant::now();
                        let outcome = client.get(path);
                        latencies.push(request_started.elapsed().as_micros() as u64);
                        match outcome {
                            Ok((status, body)) if status == expected => Some(body),
                            _ => None,
                        }
                    };
                    while latencies.len() < requests_per_thread {
                        // 1. A paginated walk over the full 40-row result.
                        let mut cursor: Option<String> = None;
                        let mut rows = 0u64;
                        let mut pages = 0;
                        loop {
                            let url = match &cursor {
                                None => format!("/api/v1/query?sql={WALK_SQL}&limit=15"),
                                Some(c) => {
                                    format!("/api/v1/query?sql={WALK_SQL}&limit=15&cursor={c}")
                                }
                            };
                            let Some(body) = timed_get(&mut client, &url, 200, &mut latencies)
                            else {
                                counters.status_mismatches += 1;
                                break;
                            };
                            let Ok(v) = serde_json::from_str::<serde_json::Value>(&body) else {
                                counters.status_mismatches += 1;
                                break;
                            };
                            rows += v["rows"].as_array().map(|r| r.len()).unwrap_or(0) as u64;
                            pages += 1;
                            if pages > 10 {
                                counters.status_mismatches += 1;
                                break;
                            }
                            match v["meta"]["next_cursor"].as_str() {
                                Some(next) => cursor = Some(next.to_string()),
                                None => break,
                            }
                        }
                        if rows == WALK_ROWS {
                            counters.walks_completed += 1;
                            counters.rows_walked += rows;
                        }
                        // 2. Typed object and cone lookups.
                        let object_path = format!("/api/v1/objects/{object_id}");
                        if timed_get(&mut client, &object_path, 200, &mut latencies).is_none() {
                            counters.status_mismatches += 1;
                        }
                        let cone = format!(
                            "/api/v1/cone?ra={}&dec=-0.8&radius=10&limit=25",
                            180.0 + (session % 8) as f64 * 0.2
                        );
                        if timed_get(&mut client, &cone, 200, &mut latencies).is_none() {
                            counters.status_mismatches += 1;
                        }
                        // 3. Error-path samples: each must answer its
                        //    registered status with the envelope.
                        for (path, expected, tally) in [
                            ("/api/v1/query", 400u16, 0usize),
                            ("/api/v1/nope", 404, 1),
                            ("/api/v1/query?sql=selec+broken", 422, 2),
                        ] {
                            match timed_get(&mut client, path, expected, &mut latencies) {
                                Some(body) if body.contains("\"error\"") => match tally {
                                    0 => counters.sampled_400 += 1,
                                    1 => counters.sampled_404 += 1,
                                    _ => counters.sampled_422 += 1,
                                },
                                _ => counters.status_mismatches += 1,
                            }
                        }
                        session += threads;
                    }
                    (latencies, counters)
                })
            })
            .collect();
        for h in handles {
            let (lat, c) = h.join().expect("api client thread");
            all_latencies.extend(lat);
            totals.walks_completed += c.walks_completed;
            totals.rows_walked += c.rows_walked;
            totals.sampled_400 += c.sampled_400;
            totals.sampled_404 += c.sampled_404;
            totals.sampled_422 += c.sampled_422;
            totals.status_mismatches += c.status_mismatches;
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    all_latencies.sort_unstable();
    let requests = all_latencies.len() as u64;
    (
        LoadStats {
            requests,
            errors: totals.status_mismatches,
            elapsed_seconds: elapsed,
            requests_per_second: requests as f64 / elapsed.max(1e-9),
            p50_ms: percentile(&all_latencies, 0.50),
            p99_ms: percentile(&all_latencies, 0.99),
            max_ms: all_latencies.last().copied().unwrap_or(0) as f64 / 1000.0,
        },
        totals,
    )
}

fn stats_json(s: &LoadStats) -> String {
    format!(
        "{{\"requests\": {}, \"errors\": {}, \"elapsed_seconds\": {:.3}, \
         \"requests_per_second\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"max_ms\": {:.3}}}",
        s.requests,
        s.errors,
        s.elapsed_seconds,
        s.requests_per_second,
        s.p50_ms,
        s.p99_ms,
        s.max_ms
    )
}

/// One public query for the overload phase: a whole-table aggregate
/// with a varying predicate, so every admitted request holds its
/// admission permit while doing real scan work (the overload site runs
/// with the result cache disabled as well).
fn overload_query_path(i: usize) -> String {
    format!(
        "/api/v1/query?sql=select+count(*)+from+PhotoObj+where+ra+%3E+{}&limit=1",
        i % 360
    )
}

/// Outcome of driving a governor-capped server: accepted-request
/// latency percentiles plus the shed/error tallies the gates check.
#[derive(Debug)]
struct OverloadStats {
    accepted: u64,
    shed: u64,
    /// 503 responses that arrived without a `Retry-After` header (must
    /// be 0: shedding without a backoff hint just converts load into
    /// retry storms).
    retry_after_missing: u64,
    /// Any status other than 200/503 (must be 0).
    other: u64,
    elapsed_seconds: f64,
    accepted_p50_ms: f64,
    accepted_p99_ms: f64,
}

/// Drive `threads` keep-alive clients at the server flat out.  Only
/// accepted (200) requests contribute latency samples; shed requests
/// are tallied and checked for the `Retry-After` hint.
fn run_overload(addr: SocketAddr, threads: usize, requests_per_thread: usize) -> OverloadStats {
    let started = Instant::now();
    let mut accepted_latencies: Vec<u64> = Vec::new();
    let (mut shed, mut retry_after_missing, mut other) = (0u64, 0u64, 0u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let (mut shed, mut missing, mut other) = (0u64, 0u64, 0u64);
                    let mut client = HttpClient::connect(addr).expect("connect");
                    for i in 0..requests_per_thread {
                        let path = overload_query_path(t * requests_per_thread + i);
                        let request_started = Instant::now();
                        match client.get(&path) {
                            Ok((200, _)) => {
                                latencies.push(request_started.elapsed().as_micros() as u64);
                            }
                            Ok((503, _)) => {
                                shed += 1;
                                if client.retry_after().is_none() {
                                    missing += 1;
                                }
                            }
                            Ok(_) => other += 1,
                            Err(_) => {
                                other += 1;
                                client = HttpClient::connect(addr).expect("reconnect");
                            }
                        }
                    }
                    (latencies, shed, missing, other)
                })
            })
            .collect();
        for h in handles {
            let (lat, s, m, o) = h.join().expect("overload client thread");
            accepted_latencies.extend(lat);
            shed += s;
            retry_after_missing += m;
            other += o;
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    accepted_latencies.sort_unstable();
    OverloadStats {
        accepted: accepted_latencies.len() as u64,
        shed,
        retry_after_missing,
        other,
        elapsed_seconds: elapsed,
        accepted_p50_ms: percentile(&accepted_latencies, 0.50),
        accepted_p99_ms: percentile(&accepted_latencies, 0.99),
    }
}

/// Resident set size of this process (server and clients both live
/// here) in MiB, from `/proc/self/status`; `None` off Linux.
fn vm_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: f64 = status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Tiny;
    let mut threads = 8usize;
    let mut requests = 120usize;
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown scale; use tiny, personal or benchmark");
                        std::process::exit(2);
                    });
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(8);
            }
            "--requests" => {
                i += 1;
                requests = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(120);
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            "--help" | "-h" => {
                println!(
                    "http_bench [--scale tiny|personal|benchmark] [--threads N] \
                     [--requests N-per-thread] [--quick] [--out BENCH.json]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if quick {
        // The CI smoke configuration: every phase runs (the status
        // assertions of the API phase still hold), just smaller.
        threads = threads.min(4);
        requests = requests.min(30);
    }

    eprintln!("building two identical SkyServers (scale {scale:?}) ...");
    // Two deterministic builds of the same catalog: the baseline must not
    // share (or warm) the shared site's result cache.
    let baseline_site = SkyServerSite::new_with_cache(build_server(scale), 0);
    let site = SkyServerSite::new(build_server(scale));

    // Serialized baseline: every request behind one global mutex, no
    // result cache, every connection closed after one request — the shape
    // of the old `Mutex<SkyServer>` + `Connection: close` front end.
    eprintln!("running the serialized baseline ({threads} threads x {requests} requests) ...");
    // Both modes get a pool big enough for every client (the old front end
    // spawned one thread per connection, so it was never pool-limited).
    let config = ServerConfig {
        workers: threads.max(4),
        ..ServerConfig::default()
    };
    let global_lock = Mutex::new(());
    let serialized_server = HttpServer::start_with(0, config.clone(), move |req| {
        let _exclusive = global_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        baseline_site.handle(req)
    })
    .expect("start serialized server");
    // Warm up (fills caches identically in both modes).
    run_load(serialized_server.addr(), 2, 12, false);
    let serialized = run_load(serialized_server.addr(), threads, requests, false);
    serialized_server.stop();

    eprintln!("running the shared read path ({threads} threads x {requests} requests) ...");
    let shared_server = site.serve_with(0, config).expect("start shared server");
    run_load(shared_server.addr(), 2, 12, true);
    let shared = run_load(shared_server.addr(), threads, requests, true);
    shared_server.stop();
    let cache = site.cache_stats();

    // ----------------------------------------------------------------------
    // Mixed workload: interactive point queries with heavy scans either
    // inline (through x_sql) or routed through the batch job queue.
    // ----------------------------------------------------------------------
    const HEAVY_CLIENTS: usize = 4;
    const BATCH_JOBS: u64 = 4;
    eprintln!("running the mixed workload (interactive + heavy scans) ...");
    let mixed_site = SkyServerSite::new_with(
        build_server(scale),
        128,
        // One paced batch worker: the whole point is that heavy scans run
        // with bounded concurrency and a CPU duty-cycle brake.
        JobQueueConfig {
            workers: 1,
            ..JobQueueConfig::default()
        },
    );
    let mixed_server = mixed_site
        .serve_with(
            0,
            ServerConfig {
                // Interactive keep-alive clients and inline heavy scans
                // each pin a worker; size the pool so queueing never
                // confounds the CPU-contention measurement.
                workers: threads + HEAVY_CLIENTS + 2,
                ..ServerConfig::default()
            },
        )
        .expect("start mixed-workload server");
    let addr = mixed_server.addr();
    run_shaped_load(addr, 2, 12, true, &point_paths);

    // Phase 1: interactive only (the no-scan baseline).
    let mixed_baseline = run_shaped_load(addr, threads, requests, true, &point_paths);

    // Phase 2: heavy scans inline through x_sql, competing at full speed.
    let stop = AtomicBool::new(false);
    let inline_scans_done = AtomicU64::new(0);
    let mixed_inline = std::thread::scope(|scope| {
        for c in 0..HEAVY_CLIENTS {
            let stop = &stop;
            let inline_scans_done = &inline_scans_done;
            scope.spawn(move || {
                let mut i = c as u64 * 1_000_000;
                while !stop.load(Ordering::Relaxed) {
                    let path = format!(
                        "/en/tools/search/x_sql?cmd={}&format=json",
                        heavy_scan_sql(i)
                    );
                    let _ = skyserver_web::http_get(addr, &path);
                    inline_scans_done.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        // Let every heavy client get a scan in flight before measuring.
        std::thread::sleep(Duration::from_millis(300));
        let stats = run_shaped_load(addr, threads, requests, true, &point_paths);
        stop.store(true, Ordering::Relaxed);
        stats
    });

    // Phase 3: the same heavy scans submitted to the batch job queue.
    let mut job_ids: Vec<u64> = Vec::new();
    for i in 0..BATCH_JOBS {
        let path = format!(
            "/x_job/submit?cmd={}&submitter=bench",
            heavy_scan_sql(10_000_000 + i)
        );
        let (status, body) = skyserver_web::http_get(addr, &path).expect("submit job");
        assert_eq!(status, 200, "job submission failed: {body}");
        let id = body
            .split("\"job_id\":")
            .nth(1)
            .and_then(|s| s.trim_start().split(&[',', '}'][..]).next())
            .and_then(|s| s.trim().parse().ok())
            .expect("job id in submit response");
        job_ids.push(id);
    }
    // Let the batch worker start scanning before measuring.
    std::thread::sleep(Duration::from_millis(300));
    let mixed_batched = run_shaped_load(addr, threads, requests, true, &point_paths);
    let batch_progress: u64 = job_ids
        .iter()
        .filter_map(|id| {
            let (_, body) =
                skyserver_web::http_get(addr, &format!("/x_job/status?id={id}")).ok()?;
            body.split("\"rows_processed\":")
                .nth(1)?
                .trim_start()
                .split(&[',', '}'][..])
                .next()?
                .trim()
                .parse::<u64>()
                .ok()
        })
        .sum();
    // The jobs only exist to load the system; stop them so shutdown is
    // instant instead of waiting out millions of paced probes.
    for id in &job_ids {
        let _ = skyserver_web::http_get(addr, &format!("/x_job/cancel?id={id}"));
    }
    mixed_server.stop();

    // ----------------------------------------------------------------------
    // API traffic: typed clients against /api/v1 — paginated result
    // walking, object/cone lookups, error-path sampling.
    // ----------------------------------------------------------------------
    eprintln!("running the API-traffic phase ({threads} threads x {requests} requests) ...");
    let api_server = site
        .serve_with(
            0,
            ServerConfig {
                workers: threads + 2,
                ..ServerConfig::default()
            },
        )
        .expect("start API server");
    let api_addr = api_server.addr();
    // Discover a real object id through the API itself.
    let (status, body) = skyserver_web::http_get(
        api_addr,
        "/api/v1/query?sql=select+top+1+objID+from+PhotoObj",
    )
    .expect("object discovery");
    assert_eq!(status, 200, "object discovery failed: {body}");
    let object_id = serde_json::from_str::<serde_json::Value>(&body)
        .ok()
        .and_then(|v| v["rows"][0][0].as_i64())
        .expect("an objID in the discovery response");
    run_api_load(api_addr, 2, 12, object_id); // warm-up
    let (api_stats, api_counters) = run_api_load(api_addr, threads, requests, object_id);
    api_server.stop();

    // The phase doubles as the API smoke test: a status mismatch, a
    // broken pagination walk or a missing error sample fails the run.
    let api_healthy = api_counters.status_mismatches == 0
        && api_counters.walks_completed > 0
        && api_counters.sampled_400 > 0
        && api_counters.sampled_404 > 0
        && api_counters.sampled_422 > 0;
    if !api_healthy {
        eprintln!("API phase violations: {api_counters:?}");
    }

    // ----------------------------------------------------------------------
    // Overload: a governor-capped site driven at 4x its admission cap.
    // Excess load must be shed (503 + Retry-After), accepted requests
    // must stay fast, backoff clients must get through, RSS must not
    // balloon (shedding means no unbounded queue of admitted work).
    // ----------------------------------------------------------------------
    // Size the phase to the machine: a cap above the core count would
    // let admitted queries contend for CPU with each other, and the
    // client-side latency gate would then measure scheduler queueing
    // rather than governor behaviour.  The 4x saturation ratio is what
    // matters, not the absolute thread count.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let governor_cap = cores.clamp(1, 4);
    let storm_threads = governor_cap * 4;
    const BACKOFF_REQUESTS: u64 = 5;
    eprintln!(
        "running the overload phase ({storm_threads} storm threads vs admission cap {governor_cap}) ..."
    );
    let rss_before_mb = vm_rss_mb();
    let overload_site = SkyServerSite::new_with_governor(
        build_server(scale),
        // No result cache: every accepted query does real scan work and
        // holds its admission permit for a measurable interval.
        0,
        JobQueueConfig::default(),
        GovernorConfig {
            max_in_flight: governor_cap,
            ..GovernorConfig::default()
        },
    );
    let overload_server = overload_site
        .serve_with(
            0,
            ServerConfig {
                // Enough HTTP workers for every storm client: the shed
                // point under test is the query governor, not the
                // accept queue.
                workers: storm_threads + 4,
                ..ServerConfig::default()
            },
        )
        .expect("start overload server");
    let overload_addr = overload_server.addr();
    run_overload(overload_addr, 2, 12); // warm-up
                                        // Unloaded baseline: concurrency below the cap, nothing shed.
    let overload_baseline = run_overload(overload_addr, 2, requests);
    // The storm, with one well-behaved backoff client riding through it.
    let (storm, backoff_recovered) = std::thread::scope(|scope| {
        let backoff = scope.spawn(move || {
            let mut client = HttpClient::connect(overload_addr).expect("connect backoff client");
            let mut recovered = 0u64;
            for i in 0..BACKOFF_REQUESTS {
                let path = overload_query_path(900_000 + i as usize);
                if let Ok((200, _)) = client.get_with_backoff(&path, 40, Duration::from_millis(20))
                {
                    recovered += 1;
                }
            }
            recovered
        });
        let storm = run_overload(overload_addr, storm_threads, requests);
        (storm, backoff.join().expect("backoff client thread"))
    });
    let governor_stats = overload_site.governor().stats();
    overload_server.stop();
    let rss_after_mb = vm_rss_mb();
    // Accepted-request p99 must stay within 3x of the unloaded baseline
    // (with a small absolute floor so sub-millisecond scheduler noise
    // on loaded CI machines cannot fail the gate).
    let p99_budget_ms = (overload_baseline.accepted_p99_ms * 3.0).max(10.0);
    let rss_growth_mb = match (rss_before_mb, rss_after_mb) {
        (Some(before), Some(after)) => Some(after - before),
        _ => None,
    };
    let overload_healthy = storm.shed > 0
        && governor_stats.shed > 0
        && storm.retry_after_missing == 0
        && storm.other == 0
        && storm.accepted > 0
        && storm.accepted_p99_ms <= p99_budget_ms
        && backoff_recovered == BACKOFF_REQUESTS
        && rss_growth_mb.is_none_or(|g| g < 512.0);
    if !overload_healthy {
        eprintln!(
            "overload phase violations: storm {storm:?}, governor {governor_stats:?}, \
             p99 budget {p99_budget_ms:.3} ms, backoff recovered \
             {backoff_recovered}/{BACKOFF_REQUESTS}, rss growth {rss_growth_mb:?} MiB"
        );
    }

    // ----------------------------------------------------------------------
    // Publish under load: publish dr2 while a mixed workload (head +
    // release-pinned queries) runs and a batch job is mid-scan.  Nothing
    // drains and nothing is cancelled: the job completes on its pinned
    // snapshot, every query keeps answering, the AS OF dr1 answer stays
    // byte-identical, and the workload p99 stays within 2x of baseline.
    // ----------------------------------------------------------------------
    eprintln!("running the publish-under-load phase ({threads} threads x {requests} requests) ...");
    let publish_site = SkyServerSite::new_with(
        build_server(scale),
        128,
        JobQueueConfig {
            workers: 1,
            // A light duty-cycle brake so the job spans the whole phase
            // without stretching CI: the point is that it is *running*
            // when the publish lands and still finishes.
            pace: Duration::from_micros(100),
            ..JobQueueConfig::default()
        },
    );
    let publish_server = publish_site
        .serve_with(
            0,
            ServerConfig {
                workers: threads + 4,
                ..ServerConfig::default()
            },
        )
        .expect("start publish-under-load server");
    let publish_addr = publish_server.addr();
    run_shaped_load(publish_addr, 2, 12, true, &publish_paths);

    // Baseline: the same mix with no publish in flight.
    let publish_baseline = run_shaped_load(publish_addr, threads, requests, true, &publish_paths);

    // The pinned answer before the publish.
    let (status, pinned_before) =
        skyserver_web::http_get(publish_addr, PINNED_AS_OF_PATH).expect("pinned AS OF query");
    assert_eq!(status, 200, "pinned AS OF query failed: {pinned_before}");

    // The 500 smallest object ids: the first is the row the publish
    // deletes, the last bounds the batch job's self-join so it stays
    // inside the job memory budget at every scale.
    let (status, body) = skyserver_web::http_get(
        publish_addr,
        "/api/v1/query?sql=select+top+500+objID+from+PhotoObj+order+by+objID&limit=1000",
    )
    .expect("id discovery");
    assert_eq!(status, 200, "id discovery failed: {body}");
    let ids: Vec<i64> = serde_json::from_str::<serde_json::Value>(&body)
        .ok()
        .and_then(|v| {
            v["rows"]
                .as_array()?
                .iter()
                .map(|row| row[0].as_i64())
                .collect()
        })
        .expect("object ids in the discovery response");
    let victim = ids[0];
    let bound = *ids.last().expect("a non-empty catalog");
    // A batch job that must COMPLETE across the publish: a bounded
    // self-join whose snapshot is pinned at submission time.
    let job_sql = format!(
        "select+count(*)+from+PhotoObj+a+join+PhotoObj+b+on+a.objID+%3C+b.objID+where+b.objID+%3C%3D+{bound}"
    );
    let (status, body) = skyserver_web::http_get(
        publish_addr,
        &format!("/x_job/submit?cmd={job_sql}&submitter=bench"),
    )
    .expect("submit publish-phase job");
    assert_eq!(status, 200, "publish-phase job submission failed: {body}");
    let publish_job_id: u64 = body
        .split("\"job_id\":")
        .nth(1)
        .and_then(|s| s.trim_start().split(&[',', '}'][..]).next())
        .and_then(|s| s.trim().parse().ok())
        .expect("job id in submit response");
    let job_status = |deadline: Duration| -> String {
        let until = Instant::now() + deadline;
        loop {
            let (_, body) = skyserver_web::http_get(
                publish_addr,
                &format!("/x_job/status?id={publish_job_id}"),
            )
            .expect("publish-phase job status");
            let state = serde_json::from_str::<serde_json::Value>(&body)
                .ok()
                .and_then(|v| v["state"].as_str().map(str::to_string))
                .unwrap_or_default();
            match state.as_str() {
                "done" | "failed" | "cancelled" => return state,
                _ if Instant::now() >= until => return format!("stuck:{state}"),
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    };
    // Wait until the worker has the job mid-scan, so the publish lands
    // on a genuinely running job.
    {
        let until = Instant::now() + Duration::from_secs(30);
        loop {
            let (_, body) = skyserver_web::http_get(
                publish_addr,
                &format!("/x_job/status?id={publish_job_id}"),
            )
            .expect("publish-phase job status");
            let v: serde_json::Value =
                serde_json::from_str(&body).unwrap_or(serde_json::Value::Null);
            if v["state"].as_str() == Some("running")
                && v["rows_processed"].as_u64().unwrap_or(0) > 0
            {
                break;
            }
            assert!(
                Instant::now() < until,
                "publish-phase job never started scanning: {body}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // The storm: the mixed workload with the publish landing mid-run.
    let (publish_storm, publish_elapsed_ms) = std::thread::scope(|scope| {
        let publish_site = &publish_site;
        let publisher = scope.spawn(move || {
            // Let the load get in flight before swapping the snapshot.
            std::thread::sleep(Duration::from_millis(50));
            let started = Instant::now();
            publish_site.with_admin(|sky| {
                sky.execute(&format!("delete from PhotoObj where objID = {victim}"))
                    .expect("delete the victim row");
                sky.publish_release("dr2").expect("publish dr2");
            });
            started.elapsed().as_secs_f64() * 1000.0
        });
        let stats = run_shaped_load(publish_addr, threads, requests, true, &publish_paths);
        (stats, publisher.join().expect("publisher thread"))
    });

    // The job finishes on its pinned snapshot — done, never cancelled.
    let publish_job_state = job_status(Duration::from_secs(120));
    // The pinned AS OF answer is byte-identical across the publish.
    let (status, pinned_after) =
        skyserver_web::http_get(publish_addr, PINNED_AS_OF_PATH).expect("pinned AS OF re-query");
    let pinned_identical = status == 200 && pinned_after == pinned_before;
    // dr2 is now listed.
    let (_, releases_body) =
        skyserver_web::http_get(publish_addr, "/api/v1/releases").expect("release list");
    let dr2_listed = releases_body.contains("\"dr2\"");
    publish_server.stop();
    // Same absolute floor as the overload gate: sub-millisecond
    // scheduler noise on loaded CI machines cannot fail the phase.
    let publish_p99_budget_ms = (publish_baseline.p99_ms * 2.0).max(10.0);
    let publish_healthy = publish_baseline.errors == 0
        && publish_storm.errors == 0
        && publish_job_state == "done"
        && pinned_identical
        && dr2_listed
        && publish_storm.p99_ms <= publish_p99_budget_ms;
    if !publish_healthy {
        eprintln!(
            "publish-under-load violations: baseline {publish_baseline:?}, \
             storm {publish_storm:?}, p99 budget {publish_p99_budget_ms:.3} ms, \
             job state {publish_job_state}, pinned identical {pinned_identical}, \
             dr2 listed {dr2_listed}"
        );
    }

    let report = format!(
        "{{\n  \"bench\": \"http_concurrency\",\n  \"scale\": \"{:?}\",\n  \
         \"threads\": {},\n  \"requests_per_thread\": {},\n  \
         \"serialized\": {},\n  \"shared\": {},\n  \
         \"throughput_speedup\": {:.2},\n  \"p99_speedup\": {:.2},\n  \
         \"result_cache\": {{\"hits\": {}, \"misses\": {}}},\n  \
         \"mixed_workload\": {{\n    \
         \"interactive_threads\": {},\n    \
         \"heavy_clients_inline\": {},\n    \
         \"batch_jobs\": {},\n    \
         \"inline_scans_completed\": {},\n    \
         \"batch_rows_processed_during_run\": {},\n    \
         \"interactive_baseline\": {},\n    \
         \"interactive_with_inline_scans\": {},\n    \
         \"interactive_with_batched_scans\": {},\n    \
         \"inline_p99_inflation\": {:.2},\n    \
         \"batched_p99_inflation\": {:.2}\n  }},\n  \
         \"api_traffic\": {{\n    \
         \"stats\": {},\n    \
         \"paginated_walks_completed\": {},\n    \
         \"rows_walked\": {},\n    \
         \"error_samples\": {{\"status_400\": {}, \"status_404\": {}, \
         \"status_422\": {}}},\n    \
         \"status_mismatches\": {}\n  }},\n  \
         \"overload\": {{\n    \
         \"governor_cap\": {},\n    \
         \"storm_threads\": {},\n    \
         \"baseline_accepted_p99_ms\": {:.3},\n    \
         \"storm\": {{\"accepted\": {}, \"shed\": {}, \
         \"retry_after_missing\": {}, \"other_statuses\": {}, \
         \"elapsed_seconds\": {:.3}, \"accepted_p50_ms\": {:.3}, \
         \"accepted_p99_ms\": {:.3}}},\n    \
         \"accepted_p99_budget_ms\": {:.3},\n    \
         \"governor\": {{\"in_flight\": {}, \"admitted\": {}, \
         \"shed\": {}}},\n    \
         \"backoff_client\": {{\"requests\": {}, \"recovered\": {}}},\n    \
         \"rss_growth_mb\": {}\n  }},\n  \
         \"publish_under_load\": {{\n    \
         \"baseline\": {},\n    \
         \"during_publish\": {},\n    \
         \"p99_budget_ms\": {:.3},\n    \
         \"p99_inflation\": {:.2},\n    \
         \"publish_ms\": {:.3},\n    \
         \"failed_queries\": {},\n    \
         \"batch_job_state\": \"{}\",\n    \
         \"pinned_as_of_identical\": {},\n    \
         \"dr2_listed\": {}\n  }}\n}}",
        scale,
        threads,
        requests,
        stats_json(&serialized),
        stats_json(&shared),
        shared.requests_per_second / serialized.requests_per_second.max(1e-9),
        serialized.p99_ms / shared.p99_ms.max(1e-9),
        cache.hits,
        cache.misses,
        threads,
        HEAVY_CLIENTS,
        BATCH_JOBS,
        inline_scans_done.load(Ordering::Relaxed),
        batch_progress,
        stats_json(&mixed_baseline),
        stats_json(&mixed_inline),
        stats_json(&mixed_batched),
        mixed_inline.p99_ms / mixed_baseline.p99_ms.max(1e-9),
        mixed_batched.p99_ms / mixed_baseline.p99_ms.max(1e-9),
        stats_json(&api_stats),
        api_counters.walks_completed,
        api_counters.rows_walked,
        api_counters.sampled_400,
        api_counters.sampled_404,
        api_counters.sampled_422,
        api_counters.status_mismatches,
        governor_cap,
        storm_threads,
        overload_baseline.accepted_p99_ms,
        storm.accepted,
        storm.shed,
        storm.retry_after_missing,
        storm.other,
        storm.elapsed_seconds,
        storm.accepted_p50_ms,
        storm.accepted_p99_ms,
        p99_budget_ms,
        governor_stats.in_flight,
        governor_stats.admitted,
        governor_stats.shed,
        BACKOFF_REQUESTS,
        backoff_recovered,
        rss_growth_mb.map_or("null".to_string(), |g| format!("{g:.1}")),
        stats_json(&publish_baseline),
        stats_json(&publish_storm),
        publish_p99_budget_ms,
        publish_storm.p99_ms / publish_baseline.p99_ms.max(1e-9),
        publish_elapsed_ms,
        publish_baseline.errors + publish_storm.errors,
        publish_job_state,
        pinned_identical,
        dr2_listed,
    );
    println!("{report}");
    // The report must be valid JSON with the API phase present — the
    // artifact is tracked and CI re-reads it.
    let parsed: serde_json::Value =
        serde_json::from_str(&report).expect("report serialises as valid JSON");
    assert!(
        parsed["api_traffic"]["stats"]["requests"]
            .as_u64()
            .unwrap_or(0)
            > 0,
        "API phase missing from the report"
    );
    if let Some(path) = out {
        std::fs::write(&path, format!("{report}\n")).expect("write BENCH json");
        eprintln!("wrote {path}");
    }
    assert!(
        parsed["overload"]["storm"]["shed"].as_u64().is_some(),
        "overload phase missing from the report"
    );
    assert!(
        parsed["publish_under_load"]["batch_job_state"]
            .as_str()
            .is_some(),
        "publish-under-load phase missing from the report"
    );
    // Give the sockets a moment to drain before the process exits.
    std::thread::sleep(Duration::from_millis(50));
    if !api_healthy || !overload_healthy || !publish_healthy {
        std::process::exit(1);
    }
}
