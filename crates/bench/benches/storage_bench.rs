//! Storage-engine micro-benchmarks: inserts, heap scans and index seeks.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skyserver::storage::{ColumnDef, DataType, Database, IndexDef, IndexKey, TableSchema, Value};

fn build_db(rows: i64) -> Database {
    let mut db = Database::new("bench");
    db.create_table(
        "t",
        TableSchema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("htmID", DataType::Int),
            ColumnDef::new("mag", DataType::Float),
        ]),
    )
    .unwrap();
    for i in 0..rows {
        db.insert(
            "t",
            vec![
                Value::Int(i),
                Value::Int(i * 7 % 100_000),
                Value::Float(15.0 + (i % 80) as f64 * 0.1),
            ],
        )
        .unwrap();
    }
    db.create_index(IndexDef::new("ix_htm", "t", &["htmID"]).include(&["id", "mag"]))
        .unwrap();
    db
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("storage_insert_10k_rows", |b| {
        b.iter(|| black_box(build_db(10_000).table("t").unwrap().row_count()))
    });
}

fn bench_scan_vs_seek(c: &mut Criterion) {
    let db = build_db(50_000);
    c.bench_function("storage_heap_scan_50k", |b| {
        b.iter(|| {
            let t = db.table("t").unwrap();
            let n = t
                .iter()
                .filter(|(_, row)| row[2].as_f64().unwrap_or(0.0) > 20.0)
                .count();
            black_box(n)
        })
    });
    c.bench_function("storage_index_seek", |b| {
        let idx = db.index("t", "ix_htm").unwrap();
        let mut key = 0i64;
        b.iter(|| {
            key = (key + 7) % 100_000;
            black_box(idx.seek_exact(&IndexKey(vec![Value::Int(key)])).len())
        })
    });
    c.bench_function("storage_index_range_scan", |b| {
        let idx = db.index("t", "ix_htm").unwrap();
        b.iter(|| {
            let lo = IndexKey(vec![Value::Int(10_000)]);
            let hi = IndexKey(vec![Value::Int(11_000)]);
            black_box(idx.seek_range(Some(&lo), Some(&hi)).len())
        })
    });
}

criterion_group!(benches, bench_insert, bench_scan_vs_seek);
criterion_main!(benches);
