//! SQL-engine benchmarks on a loaded tiny SkyServer: the access-path classes
//! of Figure 13 (point lookup, covering scan, full scan, spatial join).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skyserver_bench::{build_server, Scale};

fn bench_queries(c: &mut Criterion) {
    let server = build_server(Scale::Tiny);
    let some_id = server
        .query("select top 1 objID from PhotoObj")
        .unwrap()
        .scalar()
        .unwrap()
        .as_i64()
        .unwrap();

    c.bench_function("sql_point_lookup_by_objid", |b| {
        b.iter(|| {
            let r = server
                .query(&format!(
                    "select ra, dec from PhotoObj where objID = {some_id}"
                ))
                .unwrap();
            black_box(r.len())
        })
    });

    c.bench_function("sql_count_star_scan", |b| {
        b.iter(|| {
            let r = server.query("select count(*) from PhotoObj").unwrap();
            black_box(r.scalar().cloned())
        })
    });

    c.bench_function("sql_filtered_count_scan", |b| {
        b.iter(|| {
            let r = server
                .query("select count(*) from PhotoObj where (modelMag_r - modelMag_g) > 1")
                .unwrap();
            black_box(r.scalar().cloned())
        })
    });

    c.bench_function("sql_velocity_scan_query15", |b| {
        b.iter(|| {
            let r = server
                .query(
                    "select objID from PhotoObj \
                     where (rowv*rowv + colv*colv) between 50 and 1000 and rowv >= 0 and colv >= 0",
                )
                .unwrap();
            black_box(r.len())
        })
    });

    c.bench_function("sql_spatial_join_query1", |b| {
        b.iter(|| {
            let r = server
                .query(
                    "select G.objID, GN.distance from Galaxy as G \
                     join fGetNearbyObjEq(181.0, -0.8, 3) as GN on G.objID = GN.objID \
                     where (G.flags & 16) = 0 order by distance",
                )
                .unwrap();
            black_box(r.len())
        })
    });
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
