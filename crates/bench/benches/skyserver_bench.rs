//! End-to-end benchmarks: survey generation, the load pipeline, the traffic
//! simulator and the analytic I/O model sweep of Figure 15.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skyserver::skygen::{Survey, SurveyConfig};
use skyserver::storage::{CpuCost, DiskConfig, HardwareProfile, IoSimulator};
use skyserver::SkyServerBuilder;
use skyserver_web::{analyze_traffic, simulate_traffic, TrafficConfig};

fn bench_generation_and_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("generate_tiny_survey", |b| {
        b.iter(|| black_box(Survey::generate(SurveyConfig::tiny()).unwrap().counts()))
    });
    group.bench_function("build_and_load_tiny_skyserver", |b| {
        b.iter(|| {
            let server = SkyServerBuilder::new().tiny().build().unwrap();
            black_box(server.counts().photo_obj)
        })
    });
    group.finish();
}

fn bench_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic");
    group.sample_size(10);
    group.bench_function("simulate_and_analyze_7_months", |b| {
        let config = TrafficConfig::default();
        b.iter(|| {
            let log = simulate_traffic(&config);
            black_box(analyze_traffic(&log, &config).total_hits)
        })
    });
    group.finish();
}

fn bench_iosim_sweep(c: &mut Criterion) {
    c.bench_function("fig15_disk_sweep", |b| {
        let profile = HardwareProfile::skyserver_ml530();
        b.iter(|| {
            let mut total = 0.0;
            for disks in 1..=12 {
                let sim = IoSimulator::new(profile, DiskConfig::balanced(disks, &profile));
                total += sim.scan_mbps(CpuCost::simple_scan());
                total += sim.scan_mbps(CpuCost::raw_copy());
            }
            black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_generation_and_load,
    bench_traffic,
    bench_iosim_sweep
);
criterion_main!(benches);
