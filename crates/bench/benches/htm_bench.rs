//! HTM micro-benchmarks: point lookups and region covers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skyserver::htm::{cover, lookup_id, Convex, SDSS_DEPTH};

fn bench_lookup(c: &mut Criterion) {
    c.bench_function("htm_lookup_depth20", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            let ra = 180.0 + (i as f64) * 0.0005;
            let dec = -1.0 + (i as f64) * 0.0002;
            black_box(lookup_id(ra, dec, SDSS_DEPTH))
        })
    });
}

fn bench_cover(c: &mut Criterion) {
    c.bench_function("htm_cover_1arcmin_circle", |b| {
        b.iter(|| {
            let region = Convex::circle_arcmin(black_box(185.0), black_box(-0.5), 1.0);
            black_box(cover(&region).len())
        })
    });
    c.bench_function("htm_cover_1deg_circle", |b| {
        b.iter(|| {
            let region = Convex::circle(black_box(185.0), black_box(-0.5), 1.0);
            black_box(cover(&region).total_trixels())
        })
    });
}

criterion_group!(benches, bench_lookup, bench_cover);
criterion_main!(benches);
