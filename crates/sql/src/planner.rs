//! The query planner / optimizer.
//!
//! It performs the rewrites the paper attributes to SQL Server's optimizer:
//!
//! * **view merging** -- `Galaxy` / `Star` / `PhotoPrimary` queries "map down
//!   to the base photoObj table with the additional qualifiers" (§9.1.3),
//! * **predicate pushdown** -- single-table conjuncts move into the scans,
//! * **access-path selection** -- sargable predicates on a leading index
//!   column become index seeks; queries fully covered by an index become
//!   covering-index scans (the tag-table replacement); everything else is a
//!   (parallel) heap scan,
//! * **join ordering and strategy** -- table-valued functions and small
//!   derived tables drive nested-loop joins that probe B-tree indices on the
//!   inner table (the Fig 10 shape); equi-joins without a usable index
//!   become hash joins; the rest fall back to nested loops.

use crate::ast::{
    BinaryOp, Expr, JoinKind, SelectItem, SelectStatement, TableSource,
};
use crate::error::SqlError;
use crate::expr::RowSchema;
use crate::functions::FunctionRegistry;
use crate::parser::parse_select;
use crate::plan::{
    AccessPath, IndexBounds, JoinStep, JoinStrategy, SelectPlan, SourceKind, SourcePlan,
};
use skyserver_storage::Database;
use std::collections::HashSet;

/// Plans SELECT statements against a database + function registry.
pub struct Planner<'a> {
    pub db: &'a Database,
    pub functions: &'a FunctionRegistry,
}

/// A FROM item after name resolution, before join ordering.
struct BoundSource {
    alias: String,
    kind: SourceKind,
    schema: RowSchema,
    /// Extra conjuncts introduced by view merging (already re-qualified).
    view_predicates: Vec<Expr>,
    join_kind: Option<JoinKind>,
    on: Option<Expr>,
}

impl<'a> Planner<'a> {
    /// Create a planner.
    pub fn new(db: &'a Database, functions: &'a FunctionRegistry) -> Self {
        Planner { db, functions }
    }

    /// Plan a SELECT statement.
    pub fn plan_select(&self, stmt: &SelectStatement) -> Result<SelectPlan, SqlError> {
        if stmt.projections.is_empty() {
            return Err(SqlError::Plan("SELECT list is empty".into()));
        }
        // ------------------------------------------------------------------
        // 1. Bind FROM sources (resolve names, merge simple views).
        // ------------------------------------------------------------------
        let mut bound: Vec<BoundSource> = Vec::new();
        for item in &stmt.from {
            bound.push(self.bind_source(item)?);
        }
        // A FROM-less select (e.g. `select 1+1`) gets a single dummy source.
        let fromless = bound.is_empty();

        // ------------------------------------------------------------------
        // 2. Gather conjuncts from WHERE, ON clauses and merged views.
        // ------------------------------------------------------------------
        let mut conjuncts: Vec<Expr> = Vec::new();
        if let Some(w) = &stmt.selection {
            conjuncts.extend(w.conjuncts().into_iter().cloned());
        }
        let only_inner = bound
            .iter()
            .all(|b| matches!(b.join_kind, None | Some(JoinKind::Inner) | Some(JoinKind::Cross)));
        for b in &mut bound {
            conjuncts.append(&mut b.view_predicates);
            if only_inner {
                if let Some(on) = b.on.take() {
                    conjuncts.extend(on.conjuncts().into_iter().cloned());
                }
            }
        }

        // Alias -> schema lookup used to classify conjuncts.
        let alias_schemas: Vec<(String, RowSchema)> = bound
            .iter()
            .map(|b| (b.alias.clone(), b.schema.clone()))
            .collect();

        // Classify each conjunct by the set of aliases it references.
        let mut classified: Vec<(Expr, HashSet<String>)> = Vec::new();
        for c in conjuncts {
            let aliases = aliases_of(&c, &alias_schemas)?;
            classified.push((c, aliases));
        }

        // ------------------------------------------------------------------
        // 3. Per-source pushed predicates and access paths.
        // ------------------------------------------------------------------
        let needed = self.needed_columns(stmt, &classified, &alias_schemas);
        let mut sources: Vec<SourcePlan> = Vec::new();
        for b in &bound {
            let pushed: Vec<Expr> = classified
                .iter()
                .filter(|(_, aliases)| aliases.len() == 1 && aliases.contains(&b.alias))
                .map(|(e, _)| e.clone())
                .collect();
            let source = self.make_source_plan(b, pushed, &needed)?;
            sources.push(source);
        }

        // ------------------------------------------------------------------
        // 4. Join ordering (only when every join is inner/comma).
        // ------------------------------------------------------------------
        if only_inner && sources.len() > 1 {
            sources.sort_by_key(|s| source_priority(s));
        }

        // ------------------------------------------------------------------
        // 5. Join strategies + residual assignment.
        // ------------------------------------------------------------------
        // Multi-alias conjuncts (and single-alias ones already pushed are
        // *also* kept in the residual chain only if they span >1 alias).
        let mut remaining: Vec<(Expr, HashSet<String>)> = classified
            .iter()
            .filter(|(_, aliases)| aliases.len() != 1)
            .cloned()
            .collect();

        let mut joins: Vec<JoinStep> = Vec::new();
        let mut available: HashSet<String> = HashSet::new();
        let mut input_schema = RowSchema::default();
        for (i, s) in sources.iter().enumerate() {
            available.insert(s.alias.to_ascii_lowercase());
            input_schema = input_schema.join(&s.schema);
            if i == 0 {
                continue;
            }
            // Conjuncts that become evaluable once this source is joined.
            let mut step_conjuncts: Vec<Expr> = Vec::new();
            remaining.retain(|(e, aliases)| {
                let ready = aliases
                    .iter()
                    .all(|a| available.contains(&a.to_ascii_lowercase()));
                if ready {
                    step_conjuncts.push(e.clone());
                    false
                } else {
                    true
                }
            });
            let join_kind = bound
                .iter()
                .find(|b| b.alias.eq_ignore_ascii_case(&s.alias))
                .and_then(|b| b.join_kind)
                .unwrap_or(JoinKind::Inner);
            let outer_schema: RowSchema = sources[..i]
                .iter()
                .map(|s| s.schema.clone())
                .reduce(|a, b| a.join(&b))
                .unwrap_or_default();
            let step = self.choose_join_strategy(s, &outer_schema, join_kind, step_conjuncts);
            joins.push(step);
        }
        // Anything still unassigned (e.g. constant-only predicates or, for
        // outer joins, WHERE conjuncts) becomes the global residual.
        let mut residual_conjuncts: Vec<Expr> =
            remaining.into_iter().map(|(e, _)| e).collect();
        if fromless {
            if let Some(w) = &stmt.selection {
                residual_conjuncts.push(w.clone());
            }
        }
        // Constant-only conjuncts were classified with an empty alias set and
        // kept in `remaining`, so they are already handled above.

        // ------------------------------------------------------------------
        // 6. Projections.
        // ------------------------------------------------------------------
        let projections = expand_projections(&stmt.projections, &input_schema)?;
        let has_aggregates = stmt
            .projections
            .iter()
            .any(|p| matches!(p, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || stmt
                .having
                .as_ref()
                .map(Expr::contains_aggregate)
                .unwrap_or(false);

        Ok(SelectPlan {
            sources,
            joins,
            residual: Expr::from_conjuncts(residual_conjuncts),
            projections,
            select_items: stmt.projections.clone(),
            group_by: stmt.group_by.clone(),
            having: stmt.having.clone(),
            has_aggregates,
            order_by: stmt.order_by.clone(),
            top: stmt.top,
            distinct: stmt.distinct,
            into: stmt.into.clone(),
            input_schema,
        })
    }

    // ----------------------------------------------------------------------
    // FROM binding
    // ----------------------------------------------------------------------

    fn bind_source(&self, item: &crate::ast::FromItem) -> Result<BoundSource, SqlError> {
        match &item.source {
            TableSource::Named(name) => {
                let alias = item.alias.clone().unwrap_or_else(|| name.clone());
                if self.db.has_table(name) {
                    let table = self.db.table(name)?;
                    let cols = table.schema().column_names();
                    let schema = RowSchema::for_table(Some(&alias), &cols);
                    return Ok(BoundSource {
                        alias,
                        kind: SourceKind::Table {
                            table: name.clone(),
                            path: AccessPath::HeapScan,
                        },
                        schema,
                        view_predicates: Vec::new(),
                        join_kind: item.join,
                        on: item.on.clone(),
                    });
                }
                if let Some(view) = self.db.view(name) {
                    let view_select = parse_select(&view.sql)?;
                    if let Some(merged) = self.try_merge_view(&alias, &view_select)? {
                        return Ok(BoundSource {
                            alias,
                            kind: merged.0,
                            schema: merged.1,
                            view_predicates: merged.2,
                            join_kind: item.join,
                            on: item.on.clone(),
                        });
                    }
                    // Fall back to materialising the view as a derived table.
                    let sub_plan = self.plan_select(&view_select)?;
                    let names = sub_plan
                        .projections
                        .iter()
                        .map(|(_, n)| n.as_str())
                        .collect::<Vec<_>>();
                    let schema = RowSchema::for_table(Some(&alias), &names);
                    return Ok(BoundSource {
                        alias,
                        kind: SourceKind::Derived {
                            plan: Box::new(sub_plan),
                        },
                        schema,
                        view_predicates: Vec::new(),
                        join_kind: item.join,
                        on: item.on.clone(),
                    });
                }
                Err(SqlError::Plan(format!("unknown table or view {name}")))
            }
            TableSource::Function { name, args } => {
                let alias = item.alias.clone().unwrap_or_else(|| name.clone());
                let tf = self
                    .functions
                    .table(name)
                    .ok_or_else(|| SqlError::UnknownFunction(name.clone()))?;
                let cols: Vec<&str> = tf.columns.iter().map(String::as_str).collect();
                let schema = RowSchema::for_table(Some(&alias), &cols);
                Ok(BoundSource {
                    alias,
                    kind: SourceKind::TableFunction {
                        name: name.clone(),
                        args: args.clone(),
                    },
                    schema,
                    view_predicates: Vec::new(),
                    join_kind: item.join,
                    on: item.on.clone(),
                })
            }
            TableSource::Derived(select) => {
                let alias = item
                    .alias
                    .clone()
                    .ok_or_else(|| SqlError::Plan("derived tables need an alias".into()))?;
                let sub_plan = self.plan_select(select)?;
                let names = sub_plan
                    .projections
                    .iter()
                    .map(|(_, n)| n.as_str())
                    .collect::<Vec<_>>();
                let schema = RowSchema::for_table(Some(&alias), &names);
                Ok(BoundSource {
                    alias,
                    kind: SourceKind::Derived {
                        plan: Box::new(sub_plan),
                    },
                    schema,
                    view_predicates: Vec::new(),
                    join_kind: item.join,
                    on: item.on.clone(),
                })
            }
        }
    }

    /// Try to merge a view of the shape `SELECT * FROM base [WHERE pred]`
    /// (optionally via another such view) into a direct base-table access.
    /// Returns the source kind, schema and the re-qualified view predicates.
    #[allow(clippy::type_complexity)]
    fn try_merge_view(
        &self,
        alias: &str,
        view: &SelectStatement,
    ) -> Result<Option<(SourceKind, RowSchema, Vec<Expr>)>, SqlError> {
        let simple = view.from.len() == 1
            && view.projections.len() == 1
            && matches!(view.projections[0], SelectItem::Wildcard)
            && view.group_by.is_empty()
            && view.order_by.is_empty()
            && view.top.is_none()
            && !view.distinct
            && view.into.is_none();
        if !simple {
            return Ok(None);
        }
        let TableSource::Named(base) = &view.from[0].source else {
            return Ok(None);
        };
        let mut predicates: Vec<Expr> = view
            .selection
            .as_ref()
            .map(|p| p.conjuncts().into_iter().cloned().collect())
            .unwrap_or_default();
        // Re-qualify unqualified column references with the outer alias.
        for p in &mut predicates {
            requalify(p, alias);
        }
        if self.db.has_table(base) {
            let table = self.db.table(base)?;
            let cols = table.schema().column_names();
            let schema = RowSchema::for_table(Some(alias), &cols);
            return Ok(Some((
                SourceKind::Table {
                    table: base.clone(),
                    path: AccessPath::HeapScan,
                },
                schema,
                predicates,
            )));
        }
        if let Some(inner_view) = self.db.view(base) {
            // Views stacked on views (Star -> PhotoPrimary -> photoObj).
            let inner_select = parse_select(&inner_view.sql)?;
            if let Some((kind, schema, mut inner_preds)) =
                self.try_merge_view(alias, &inner_select)?
            {
                inner_preds.extend(predicates);
                return Ok(Some((kind, schema, inner_preds)));
            }
        }
        Ok(None)
    }

    // ----------------------------------------------------------------------
    // Access paths
    // ----------------------------------------------------------------------

    fn make_source_plan(
        &self,
        b: &BoundSource,
        pushed: Vec<Expr>,
        needed: &[(String, String)],
    ) -> Result<SourcePlan, SqlError> {
        let pushed_predicate = Expr::from_conjuncts(pushed.clone());
        let (kind, schema) = match &b.kind {
            SourceKind::Table { table, .. } => {
                let path = self.choose_access_path(table, &b.alias, &pushed, needed);
                let schema = match &path {
                    AccessPath::CoveringIndexScan { index } => {
                        let idx = self
                            .db
                            .index(table, index)
                            .expect("covering index chosen by the planner must exist");
                        let cols: Vec<&str> = idx.def().covered_columns();
                        RowSchema::for_table(Some(&b.alias), &cols)
                    }
                    _ => b.schema.clone(),
                };
                (
                    SourceKind::Table {
                        table: table.clone(),
                        path,
                    },
                    schema,
                )
            }
            other => (other.clone(), b.schema.clone()),
        };
        Ok(SourcePlan {
            alias: b.alias.clone(),
            kind,
            pushed_predicate,
            schema,
        })
    }

    fn choose_access_path(
        &self,
        table: &str,
        alias: &str,
        pushed: &[Expr],
        needed: &[(String, String)],
    ) -> AccessPath {
        let indexes = self.db.indexes_for(table);
        if indexes.is_empty() {
            return AccessPath::HeapScan;
        }
        // Sargable bounds per column.
        let sargable = extract_sargable(pushed);
        // Pick the best index: equality on leading column beats range beats
        // nothing.
        let mut best: Option<(u32, AccessPath)> = None;
        for idx in indexes {
            let leading = &idx.def().key_columns[0];
            let mut bounds = IndexBounds {
                column: leading.clone(),
                ..Default::default()
            };
            for s in &sargable {
                if !s.column.eq_ignore_ascii_case(leading) {
                    continue;
                }
                match s.kind {
                    SargKind::Eq => bounds.equals = Some(s.value.clone()),
                    SargKind::GtEq => bounds.lower = Some((s.value.clone(), true)),
                    SargKind::Gt => bounds.lower = Some((s.value.clone(), false)),
                    SargKind::LtEq => bounds.upper = Some((s.value.clone(), true)),
                    SargKind::Lt => bounds.upper = Some((s.value.clone(), false)),
                }
            }
            let score = if bounds.equals.is_some() {
                3
            } else if bounds.lower.is_some() && bounds.upper.is_some() {
                2
            } else if !bounds.is_unbounded() {
                1
            } else {
                0
            };
            if score > 0 && best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                best = Some((
                    score,
                    AccessPath::IndexSeek {
                        index: idx.def().name.clone(),
                        bounds,
                    },
                ));
            }
        }
        if let Some((_, path)) = best {
            return path;
        }
        // No seek possible: try a covering index scan over the needed columns.
        let needed_for_alias: Vec<&str> = needed
            .iter()
            .filter(|(a, _)| a.eq_ignore_ascii_case(alias))
            .map(|(_, c)| c.as_str())
            .collect();
        if !needed_for_alias.is_empty() {
            let mut best_cover: Option<(usize, String)> = None;
            for idx in indexes {
                if idx.def().covers(&needed_for_alias) {
                    let width = idx.def().covered_columns().len();
                    if best_cover.as_ref().map(|(w, _)| width < *w).unwrap_or(true) {
                        best_cover = Some((width, idx.def().name.clone()));
                    }
                }
            }
            if let Some((_, index)) = best_cover {
                return AccessPath::CoveringIndexScan { index };
            }
        }
        AccessPath::HeapScan
    }

    /// All `(alias, column)` pairs the query references anywhere.
    fn needed_columns(
        &self,
        stmt: &SelectStatement,
        classified: &[(Expr, HashSet<String>)],
        alias_schemas: &[(String, RowSchema)],
    ) -> Vec<(String, String)> {
        let mut refs: Vec<(Option<String>, String)> = Vec::new();
        for p in &stmt.projections {
            match p {
                SelectItem::Expr { expr, .. } => expr.collect_columns(&mut refs),
                SelectItem::Wildcard => {
                    // A bare * needs every column of every source: return a
                    // sentinel that defeats covering-index selection.
                    for (alias, schema) in alias_schemas {
                        for (_, name) in schema.columns() {
                            refs.push((Some(alias.clone()), name.clone()));
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    for (alias, schema) in alias_schemas {
                        if alias.eq_ignore_ascii_case(q) {
                            for (_, name) in schema.columns() {
                                refs.push((Some(alias.clone()), name.clone()));
                            }
                        }
                    }
                }
            }
        }
        for (e, _) in classified {
            e.collect_columns(&mut refs);
        }
        for o in &stmt.order_by {
            o.expr.collect_columns(&mut refs);
        }
        for g in &stmt.group_by {
            g.collect_columns(&mut refs);
        }
        if let Some(h) = &stmt.having {
            h.collect_columns(&mut refs);
        }
        // Resolve unqualified references to their alias.
        let mut out = Vec::new();
        for (q, name) in refs {
            match q {
                Some(q) => out.push((q, name)),
                None => {
                    for (alias, schema) in alias_schemas {
                        if schema.can_resolve(None, &name) {
                            out.push((alias.clone(), name.clone()));
                        }
                    }
                }
            }
        }
        out
    }

    // ----------------------------------------------------------------------
    // Join strategies
    // ----------------------------------------------------------------------

    fn choose_join_strategy(
        &self,
        inner: &SourcePlan,
        outer_schema: &RowSchema,
        kind: JoinKind,
        step_conjuncts: Vec<Expr>,
    ) -> JoinStep {
        // Find equi-join conjuncts: inner.column = outer-only expression.
        let mut equi: Vec<(String, Expr)> = Vec::new(); // (inner column, outer expr)
        let mut residual: Vec<Expr> = Vec::new();
        for c in &step_conjuncts {
            if let Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } = c
            {
                if let Some((col, outer)) =
                    equi_join_sides(left, right, &inner.alias, &inner.schema, outer_schema)
                {
                    equi.push((col, outer));
                    // Keep the conjunct in the residual as well: harmless
                    // re-check, and it keeps outer-join semantics simple.
                }
            }
            residual.push(c.clone());
        }
        let strategy = if let SourceKind::Table { table, .. } = &inner.kind {
            // Prefer an index lookup on an equi-join column.
            let mut lookup = None;
            for (col, outer) in &equi {
                for idx in self.db.indexes_for(table) {
                    if idx.def().key_columns[0].eq_ignore_ascii_case(col) {
                        lookup = Some(JoinStrategy::IndexLookup {
                            index: idx.def().name.clone(),
                            outer_key: outer.clone(),
                            inner_column: col.clone(),
                        });
                        break;
                    }
                }
                if lookup.is_some() {
                    break;
                }
            }
            lookup.unwrap_or_else(|| hash_or_nested(&equi, &inner.alias))
        } else {
            hash_or_nested(&equi, &inner.alias)
        };
        JoinStep {
            kind,
            strategy,
            residual: Expr::from_conjuncts(residual),
        }
    }
}

fn hash_or_nested(equi: &[(String, Expr)], inner_alias: &str) -> JoinStrategy {
    if equi.is_empty() {
        JoinStrategy::NestedLoop
    } else {
        JoinStrategy::Hash {
            outer_keys: equi.iter().map(|(_, o)| o.clone()).collect(),
            inner_keys: equi
                .iter()
                .map(|(c, _)| Expr::Column {
                    qualifier: Some(inner_alias.to_string()),
                    name: c.clone(),
                })
                .collect(),
        }
    }
}

/// If `left = right` is an equi-join between the inner source and the outer
/// side, return `(inner column name, outer expression)`.
fn equi_join_sides(
    left: &Expr,
    right: &Expr,
    inner_alias: &str,
    inner_schema: &RowSchema,
    outer_schema: &RowSchema,
) -> Option<(String, Expr)> {
    let is_inner_col = |e: &Expr| -> Option<String> {
        if let Expr::Column { qualifier, name } = e {
            let matches_alias = qualifier
                .as_deref()
                .map(|q| q.eq_ignore_ascii_case(inner_alias))
                .unwrap_or_else(|| inner_schema.can_resolve(None, name));
            if matches_alias && inner_schema.can_resolve(qualifier.as_deref(), name) {
                return Some(name.clone());
            }
        }
        None
    };
    let is_outer_expr = |e: &Expr| -> bool {
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        !cols.is_empty()
            && cols
                .iter()
                .all(|(q, n)| outer_schema.can_resolve(q.as_deref(), n))
    };
    if let Some(col) = is_inner_col(left) {
        if is_outer_expr(right) {
            return Some((col, right.clone()));
        }
    }
    if let Some(col) = is_inner_col(right) {
        if is_outer_expr(left) {
            return Some((col, left.clone()));
        }
    }
    None
}

/// Priority used to order inner-join sources: drive with TVFs and derived
/// tables, then indexed tables, finish with heap scans.
fn source_priority(s: &SourcePlan) -> u8 {
    match &s.kind {
        SourceKind::TableFunction { .. } => 0,
        SourceKind::Derived { .. } => 1,
        SourceKind::Table { path, .. } => match path {
            AccessPath::IndexSeek { bounds, .. } if bounds.equals.is_some() => 2,
            AccessPath::IndexSeek { .. } => 3,
            AccessPath::CoveringIndexScan { .. } => 4,
            AccessPath::HeapScan => 5,
        },
    }
}

/// The sargable shapes we recognise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SargKind {
    Eq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

struct Sarg {
    column: String,
    kind: SargKind,
    value: Expr,
}

/// Extract sargable `column op constant-expression` conjuncts.
fn extract_sargable(conjuncts: &[Expr]) -> Vec<Sarg> {
    let mut out = Vec::new();
    let is_const = |e: &Expr| {
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        cols.is_empty() && !matches!(e, Expr::Star)
    };
    for c in conjuncts {
        match c {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                let (col, value, op) = match (&**left, &**right) {
                    (Expr::Column { name, .. }, v) if is_const(v) => (name.clone(), v.clone(), *op),
                    (v, Expr::Column { name, .. }) if is_const(v) => {
                        (name.clone(), v.clone(), op.mirror())
                    }
                    _ => continue,
                };
                let kind = match op {
                    BinaryOp::Eq => SargKind::Eq,
                    BinaryOp::Lt => SargKind::Lt,
                    BinaryOp::LtEq => SargKind::LtEq,
                    BinaryOp::Gt => SargKind::Gt,
                    BinaryOp::GtEq => SargKind::GtEq,
                    _ => continue,
                };
                out.push(Sarg {
                    column: col,
                    kind,
                    value,
                });
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                if let Expr::Column { name, .. } = &**expr {
                    if is_const(low) && is_const(high) {
                        out.push(Sarg {
                            column: name.clone(),
                            kind: SargKind::GtEq,
                            value: (**low).clone(),
                        });
                        out.push(Sarg {
                            column: name.clone(),
                            kind: SargKind::LtEq,
                            value: (**high).clone(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Which aliases does a conjunct reference?
fn aliases_of(
    expr: &Expr,
    alias_schemas: &[(String, RowSchema)],
) -> Result<HashSet<String>, SqlError> {
    let mut cols = Vec::new();
    expr.collect_columns(&mut cols);
    let mut out = HashSet::new();
    for (q, name) in cols {
        match q {
            Some(q) => {
                let found = alias_schemas
                    .iter()
                    .find(|(a, _)| a.eq_ignore_ascii_case(&q));
                match found {
                    Some((a, _)) => {
                        out.insert(a.clone());
                    }
                    None => {
                        return Err(SqlError::Plan(format!("unknown table alias {q}")));
                    }
                }
            }
            None => {
                let matches: Vec<&String> = alias_schemas
                    .iter()
                    .filter(|(_, s)| s.can_resolve(None, &name))
                    .map(|(a, _)| a)
                    .collect();
                match matches.len() {
                    0 => {
                        return Err(SqlError::Plan(format!("unknown column {name}")));
                    }
                    1 => {
                        out.insert(matches[0].clone());
                    }
                    _ => {
                        return Err(SqlError::Plan(format!("ambiguous column {name}")));
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Qualify the unqualified column references of a merged view predicate with
/// the outer alias.
fn requalify(expr: &mut Expr, alias: &str) {
    match expr {
        Expr::Column { qualifier, .. } => {
            if qualifier.is_none() {
                *qualifier = Some(alias.to_string());
            } else {
                // The view body referenced its own base table name; rewrite
                // it to the outer alias.
                *qualifier = Some(alias.to_string());
            }
        }
        Expr::Unary { expr, .. } => requalify(expr, alias),
        Expr::Binary { left, right, .. } => {
            requalify(left, alias);
            requalify(right, alias);
        }
        Expr::Function { args, .. } => {
            for a in args {
                requalify(a, alias);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            requalify(expr, alias);
            requalify(low, alias);
            requalify(high, alias);
        }
        Expr::InList { expr, list, .. } => {
            requalify(expr, alias);
            for e in list {
                requalify(e, alias);
            }
        }
        Expr::IsNull { expr, .. } => requalify(expr, alias),
        Expr::Like { expr, pattern, .. } => {
            requalify(expr, alias);
            requalify(pattern, alias);
        }
        Expr::Case {
            branches,
            else_value,
        } => {
            for (c, v) in branches {
                requalify(c, alias);
                requalify(v, alias);
            }
            if let Some(e) = else_value {
                requalify(e, alias);
            }
        }
        Expr::Cast { expr, .. } => requalify(expr, alias),
        Expr::Literal(_) | Expr::Variable(_) | Expr::Star => {}
    }
}

/// Expand the select list against the combined input schema.
fn expand_projections(
    items: &[SelectItem],
    schema: &RowSchema,
) -> Result<Vec<(Expr, String)>, SqlError> {
    let mut out = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (q, name) in schema.columns() {
                    out.push((
                        Expr::Column {
                            qualifier: q.clone(),
                            name: name.clone(),
                        },
                        name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut found = false;
                for (cq, name) in schema.columns() {
                    if cq
                        .as_deref()
                        .map(|c| c.eq_ignore_ascii_case(q))
                        .unwrap_or(false)
                    {
                        found = true;
                        out.push((
                            Expr::Column {
                                qualifier: cq.clone(),
                                name: name.clone(),
                            },
                            name.clone(),
                        ));
                    }
                }
                if !found {
                    return Err(SqlError::Plan(format!("unknown alias {q} in {q}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

fn default_name(expr: &Expr, index: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.split('.').next_back().unwrap_or(name).to_string(),
        _ => format!("col{}", index + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use skyserver_storage::{ColumnDef, DataType, IndexDef, TableSchema, Value};

    fn test_db() -> Database {
        let mut db = Database::new("test");
        let schema = TableSchema::new(vec![
            ColumnDef::new("objID", DataType::Int),
            ColumnDef::new("htmID", DataType::Int),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
            ColumnDef::new("type", DataType::Int),
            ColumnDef::new("flags", DataType::Int),
            ColumnDef::new("modelMag_r", DataType::Float),
        ])
        .with_primary_key(&["objID"]);
        db.create_table("photoObj", schema).unwrap();
        db.create_index(IndexDef::new("pk_photoObj", "photoObj", &["objID"]).unique())
            .unwrap();
        db.create_index(IndexDef::new("ix_htm", "photoObj", &["htmID"]).include(&["ra", "dec"]))
            .unwrap();
        db.create_index(
            IndexDef::new("ix_type_mag", "photoObj", &["type"]).include(&["modelMag_r", "objID"]),
        )
        .unwrap();
        db.create_view(
            "Galaxy",
            "select * from photoObj where type = 3 and (flags & 256) > 0",
            "primary galaxies",
        )
        .unwrap();
        for i in 0..10i64 {
            db.insert(
                "photoObj",
                vec![
                    Value::Int(i),
                    Value::Int(1000 + i),
                    Value::Float(180.0 + i as f64),
                    Value::Float(0.0),
                    Value::Int(if i % 2 == 0 { 3 } else { 6 }),
                    Value::Int(256),
                    Value::Float(18.0),
                ],
            )
            .unwrap();
        }
        db
    }

    fn plan(db: &Database, sql: &str) -> SelectPlan {
        let funcs = registry();
        let planner = Planner::new(db, &funcs);
        planner.plan_select(&parse_select(sql).unwrap()).unwrap()
    }

    fn registry() -> FunctionRegistry {
        let mut f = FunctionRegistry::new();
        f.register_table(
            "fGetNearbyObjEq",
            &["objID", "distance"],
            |_db, _args| Ok(crate::result::ResultSet::empty(vec!["objID".into(), "distance".into()])),
        );
        f
    }

    #[test]
    fn equality_on_pk_becomes_index_seek() {
        let db = test_db();
        let p = plan(&db, "select ra from photoObj where objID = 5");
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => match path {
                AccessPath::IndexSeek { index, bounds } => {
                    assert_eq!(index, "pk_photoObj");
                    assert!(bounds.equals.is_some());
                }
                other => panic!("expected index seek, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
        assert_eq!(p.plan_class(), crate::plan::PlanClass::IndexSeek);
    }

    #[test]
    fn range_on_htm_becomes_index_seek() {
        let db = test_db();
        let p = plan(
            &db,
            "select ra, dec from photoObj where htmID between 1000 and 1005",
        );
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => match path {
                AccessPath::IndexSeek { index, bounds } => {
                    assert_eq!(index, "ix_htm");
                    assert!(bounds.lower.is_some() && bounds.upper.is_some());
                }
                other => panic!("expected index seek, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn covering_index_used_when_no_sarg() {
        let db = test_db();
        // type is not sargable here (expression), but the query touches only
        // type/modelMag_r/objID which ix_type_mag covers.
        let p = plan(
            &db,
            "select objID, modelMag_r from photoObj where type * 2 = 6",
        );
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => {
                assert_eq!(
                    path,
                    &AccessPath::CoveringIndexScan {
                        index: "ix_type_mag".into()
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_scan_when_nothing_helps() {
        let db = test_db();
        let p = plan(&db, "select * from photoObj where ra + dec > 100");
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => assert_eq!(path, &AccessPath::HeapScan),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.plan_class(), crate::plan::PlanClass::Scan);
    }

    #[test]
    fn view_merges_to_base_table_with_extra_predicates() {
        let db = test_db();
        let p = plan(&db, "select objID from Galaxy where modelMag_r < 19");
        assert_eq!(p.sources.len(), 1);
        match &p.sources[0].kind {
            SourceKind::Table { table, .. } => assert_eq!(table, "photoObj"),
            other => panic!("expected merged view, got {other:?}"),
        }
        // Both the view predicate and the user predicate are pushed.
        let pushed = p.sources[0].pushed_predicate.as_ref().unwrap();
        let n = pushed.conjuncts().len();
        assert_eq!(n, 3, "type=3, flags check, modelMag_r<19");
    }

    #[test]
    fn tvf_drives_index_lookup_join() {
        let db = test_db();
        let p = plan(
            &db,
            "select G.objID, GN.distance from Galaxy as G \
             join fGetNearbyObjEq(185, -0.5, 1) as GN on G.objID = GN.objID \
             where (G.flags & 64) = 0 order by distance",
        );
        // The TVF should be the driving source.
        assert!(matches!(
            p.sources[0].kind,
            SourceKind::TableFunction { .. }
        ));
        assert_eq!(p.joins.len(), 1);
        match &p.joins[0].strategy {
            JoinStrategy::IndexLookup { index, .. } => assert_eq!(index, "pk_photoObj"),
            other => panic!("expected index lookup join, got {other:?}"),
        }
        let rendered = p.render();
        assert!(rendered.contains("TableFunction(fGetNearbyObjEq"));
        assert!(rendered.contains("index lookup pk_photoObj"));
    }

    #[test]
    fn self_join_uses_hash_strategy_without_index() {
        let db = test_db();
        let p = plan(
            &db,
            "select r.objID, g.objID from photoObj r, photoObj g \
             where r.ra = g.ra and r.objID <> g.objID",
        );
        assert_eq!(p.sources.len(), 2);
        assert_eq!(p.joins.len(), 1);
        assert!(matches!(p.joins[0].strategy, JoinStrategy::Hash { .. }));
    }

    #[test]
    fn projections_expand_wildcards() {
        let db = test_db();
        let p = plan(&db, "select * from photoObj");
        assert_eq!(p.projections.len(), 7);
        let p2 = plan(&db, "select p.* from photoObj p");
        assert_eq!(p2.projections.len(), 7);
    }

    #[test]
    fn aggregates_detected() {
        let db = test_db();
        let p = plan(&db, "select count(*) from photoObj where type = 3");
        assert!(p.has_aggregates);
        let p2 = plan(&db, "select type, avg(modelMag_r) from photoObj group by type");
        assert!(p2.has_aggregates);
        assert_eq!(p2.group_by.len(), 1);
    }

    #[test]
    fn errors_for_unknown_names() {
        let db = test_db();
        let funcs = registry();
        let planner = Planner::new(&db, &funcs);
        assert!(planner
            .plan_select(&parse_select("select * from noSuchTable").unwrap())
            .is_err());
        assert!(planner
            .plan_select(&parse_select("select noSuchColumn from photoObj").unwrap())
            .is_ok(), "projection binding happens at execution");
        assert!(planner
            .plan_select(&parse_select("select * from photoObj where noSuchColumn = 1").unwrap())
            .is_err());
        assert!(planner
            .plan_select(&parse_select("select * from fNoSuchTvf(1)").unwrap())
            .is_err());
    }
}
