//! Result sets returned by query execution.

use skyserver_storage::{ExecutionStats, Value};

/// A tabular query result: column names plus rows of values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultSet {
    /// Output column names, in order.
    pub columns: Vec<String>,
    /// Rows of values (each row has `columns.len()` entries).
    pub rows: Vec<Vec<Value>>,
    /// True when the row budget truncated the result (public interface).
    pub truncated: bool,
}

impl ResultSet {
    /// An empty result with the given column names.
    pub fn empty(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
            truncated: false,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Get a cell by row number and column name.
    pub fn cell(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(idx))
    }

    /// Extract one column as a vector of values.
    pub fn column_values(&self, column: &str) -> Vec<Value> {
        match self.column_index(column) {
            Some(idx) => self.rows.iter().map(|r| r[idx].clone()).collect(),
            None => Vec::new(),
        }
    }

    /// Single scalar convenience accessor (first row, first column).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as an ASCII grid (the SkyServerQA "grid" output format).
    pub fn to_grid(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, v) in row.iter().enumerate() {
                widths[i] = widths[i].max(v.to_string().len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, v)| format!("{:<width$}", v.to_string(), width = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// The outcome of executing one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatementOutcome {
    /// The result set (empty with no columns for DDL/DML statements).
    pub result: ResultSet,
    /// Number of rows affected by DML (inserted/updated/deleted) or written
    /// to an INTO target.
    pub rows_affected: usize,
    /// Execution statistics (rows/bytes touched, wall time, simulated time).
    pub stats: ExecutionStats,
    /// Rendered plan (populated by EXPLAIN or when plan capture is enabled).
    pub plan: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs() -> ResultSet {
        ResultSet {
            columns: vec!["objID".into(), "ra".into()],
            rows: vec![
                vec![Value::Int(1), Value::Float(185.0)],
                vec![Value::Int(2), Value::Float(186.5)],
            ],
            truncated: false,
        }
    }

    #[test]
    fn accessors() {
        let r = rs();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.column_index("RA"), Some(1));
        assert_eq!(r.cell(1, "objid"), Some(&Value::Int(2)));
        assert_eq!(r.column_values("ra").len(), 2);
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
        assert!(r.column_values("nope").is_empty());
    }

    #[test]
    fn grid_rendering_includes_all_cells() {
        let g = rs().to_grid();
        assert!(g.contains("objID"));
        assert!(g.contains("186.5"));
        assert_eq!(g.lines().count(), 4);
    }

    #[test]
    fn empty_result() {
        let r = ResultSet::empty(vec!["n".into()]);
        assert!(r.is_empty());
        assert!(r.scalar().is_none());
    }
}
