//! Recursive-descent parser for the SkyServer SQL dialect.
//!
//! The dialect is the subset of Transact-SQL the paper's queries actually
//! use: multi-statement scripts with `DECLARE`/`SET`, `SELECT ... INTO`
//! temp tables, `TOP n`, explicit and comma joins, table-valued functions in
//! `FROM`, `GROUP BY`/`HAVING`/`ORDER BY`, `CREATE TABLE/INDEX/VIEW`, and
//! the usual DML statements.

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{tokenize, Token};
use skyserver_storage::{DataType, Value};

/// Parse a SQL script (one or more statements separated by optional
/// semicolons).
pub fn parse_script(sql: &str) -> Result<Vec<Statement>, SqlError> {
    let tokens = tokenize(sql).map_err(|e| SqlError::Parse(e.to_string()))?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    loop {
        while parser.eat(&Token::Semicolon) {}
        if parser.peek() == &Token::Eof {
            break;
        }
        statements.push(parser.parse_statement()?);
    }
    if statements.is_empty() {
        return Err(SqlError::Parse("empty SQL script".into()));
    }
    Ok(statements)
}

/// Parse a single statement (errors if more than one is present).
pub fn parse_statement(sql: &str) -> Result<Statement, SqlError> {
    let mut stmts = parse_script(sql)?;
    if stmts.len() != 1 {
        return Err(SqlError::Parse(format!(
            "expected a single statement, found {}",
            stmts.len()
        )));
    }
    Ok(stmts.remove(0))
}

/// Parse a SELECT statement from text (used for view definitions).
pub fn parse_select(sql: &str) -> Result<SelectStatement, SqlError> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(s),
        _ => Err(SqlError::Parse("expected a SELECT statement".into())),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn peek_at(&self, offset: usize) -> &Token {
        self.tokens.get(self.pos + offset).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), SqlError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {t} but found {}",
                self.peek()
            )))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn peek_keyword_at(&self, offset: usize, kw: &str) -> bool {
        matches!(self.peek_at(offset), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected keyword {kw} but found {}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, SqlError> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            Token::TempTable(s) => Ok(format!("##{s}")),
            other => Err(SqlError::Parse(format!(
                "expected an identifier but found {other}"
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement, SqlError> {
        if self.peek_keyword("select") {
            Ok(Statement::Select(self.parse_select_statement()?))
        } else if self.peek_keyword("explain") {
            self.advance();
            self.expect_keyword("verify")?;
            Ok(Statement::ExplainVerify(self.parse_select_statement()?))
        } else if self.peek_keyword("insert") {
            self.parse_insert()
        } else if self.peek_keyword("update") {
            self.parse_update()
        } else if self.peek_keyword("delete") {
            self.parse_delete()
        } else if self.peek_keyword("create") {
            self.parse_create()
        } else if self.peek_keyword("drop") {
            self.parse_drop()
        } else if self.peek_keyword("declare") {
            self.parse_declare()
        } else if self.peek_keyword("set") {
            self.parse_set()
        } else if self.peek_keyword("publish") {
            self.advance();
            self.expect_keyword("release")?;
            let id = self.expect_ident()?;
            Ok(Statement::PublishRelease { id })
        } else {
            Err(SqlError::Parse(format!(
                "unexpected start of statement: {}",
                self.peek()
            )))
        }
    }

    fn parse_select_statement(&mut self) -> Result<SelectStatement, SqlError> {
        self.expect_keyword("select")?;
        let mut stmt = SelectStatement::default();
        if self.eat_keyword("distinct") {
            stmt.distinct = true;
        }
        if self.eat_keyword("top") {
            match self.advance() {
                Token::Number(n) => {
                    stmt.top = Some(
                        n.parse::<u64>()
                            .map_err(|_| SqlError::Parse(format!("invalid TOP count {n}")))?,
                    );
                }
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected a number after TOP, found {other}"
                    )))
                }
            }
        }
        stmt.projections = self.parse_select_list()?;
        if self.eat_keyword("into") {
            stmt.into = Some(self.expect_ident()?);
        }
        if self.eat_keyword("from") {
            stmt.from = self.parse_from_list()?;
        }
        if self.eat_keyword("where") {
            stmt.selection = Some(self.parse_expr()?);
        }
        if self.peek_keyword("group") {
            self.advance();
            self.expect_keyword("by")?;
            loop {
                stmt.group_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword("having") {
            stmt.having = Some(self.parse_expr()?);
        }
        if self.peek_keyword("order") {
            self.advance();
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.eat_keyword("desc") {
                    false
                } else {
                    self.eat_keyword("asc");
                    true
                };
                stmt.order_by.push(OrderByItem { expr, ascending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.peek_keyword("as") && self.peek_keyword_at(1, "of") {
            self.advance();
            self.advance();
            stmt.as_of = Some(self.expect_ident()?);
        }
        Ok(stmt)
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = Vec::new();
        loop {
            if self.peek() == &Token::Star {
                self.advance();
                items.push(SelectItem::Wildcard);
            } else if matches!(self.peek(), Token::Ident(_))
                && self.peek_at(1) == &Token::Dot
                && self.peek_at(2) == &Token::Star
            {
                let q = self.expect_ident()?;
                self.advance(); // dot
                self.advance(); // star
                items.push(SelectItem::QualifiedWildcard(q));
            } else {
                let expr = self.parse_expr()?;
                let as_of_follows = self.peek_keyword("as") && self.peek_keyword_at(1, "of");
                let alias = if !as_of_follows
                    && (self.eat_keyword("as") || self.projection_alias_follows())
                {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    /// Heuristic: a bare identifier right after a projection expression is an
    /// implicit alias unless it is a clause keyword.
    fn projection_alias_follows(&self) -> bool {
        match self.peek() {
            Token::Ident(s) => !matches!(
                s.to_ascii_lowercase().as_str(),
                "from"
                    | "into"
                    | "where"
                    | "group"
                    | "having"
                    | "order"
                    | "join"
                    | "on"
                    | "inner"
                    | "left"
                    | "cross"
                    | "union"
                    | "as"
                    | "and"
                    | "or"
                    | "between"
                    | "not"
                    | "in"
                    | "like"
                    | "is"
                    | "asc"
                    | "desc"
            ),
            _ => false,
        }
    }

    fn parse_from_list(&mut self) -> Result<Vec<FromItem>, SqlError> {
        let mut items = vec![self.parse_from_item(None)?];
        loop {
            if self.eat(&Token::Comma) {
                items.push(self.parse_from_item(None)?);
            } else if self.peek_keyword("join") || self.peek_keyword("inner") {
                self.eat_keyword("inner");
                self.expect_keyword("join")?;
                let mut item = self.parse_from_item(Some(JoinKind::Inner))?;
                self.expect_keyword("on")?;
                item.on = Some(self.parse_expr()?);
                items.push(item);
            } else if self.peek_keyword("left") {
                self.advance();
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                let mut item = self.parse_from_item(Some(JoinKind::Left))?;
                self.expect_keyword("on")?;
                item.on = Some(self.parse_expr()?);
                items.push(item);
            } else if self.peek_keyword("cross") {
                self.advance();
                self.expect_keyword("join")?;
                let item = self.parse_from_item(Some(JoinKind::Cross))?;
                items.push(item);
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn parse_from_item(&mut self, join: Option<JoinKind>) -> Result<FromItem, SqlError> {
        let source = if self.eat(&Token::LParen) {
            // Derived table.
            let select = self.parse_select_statement()?;
            self.expect(&Token::RParen)?;
            TableSource::Derived(Box::new(select))
        } else {
            match self.advance() {
                Token::Ident(first) => {
                    // Possibly dotted name and possibly a function call.
                    let mut name = first;
                    while self.peek() == &Token::Dot {
                        self.advance();
                        let part = self.expect_ident()?;
                        name = format!("{name}.{part}");
                    }
                    if self.peek() == &Token::LParen {
                        self.advance();
                        let mut args = Vec::new();
                        if self.peek() != &Token::RParen {
                            loop {
                                args.push(self.parse_expr()?);
                                if !self.eat(&Token::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect(&Token::RParen)?;
                        TableSource::Function { name, args }
                    } else {
                        TableSource::Named(name)
                    }
                }
                Token::TempTable(name) => TableSource::Named(format!("##{name}")),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected a table reference, found {other}"
                    )))
                }
            }
        };
        // `AS OF <release>` pins the statement to a snapshot; it must not be
        // mistaken for an `AS of` table alias.
        let as_of_follows = self.peek_keyword("as") && self.peek_keyword_at(1, "of");
        let alias = if !as_of_follows && (self.eat_keyword("as") || self.table_alias_follows()) {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(FromItem {
            source,
            alias,
            join,
            on: None,
        })
    }

    fn table_alias_follows(&self) -> bool {
        match self.peek() {
            Token::Ident(s) => !matches!(
                s.to_ascii_lowercase().as_str(),
                "where"
                    | "group"
                    | "having"
                    | "order"
                    | "join"
                    | "on"
                    | "inner"
                    | "left"
                    | "cross"
                    | "union"
                    | "as"
                    | "select"
            ),
            _ => false,
        }
    }

    fn parse_insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("insert")?;
        self.eat_keyword("into");
        let table = self.expect_ident()?;
        let mut columns = Vec::new();
        if self.peek() == &Token::LParen {
            self.advance();
            loop {
                columns.push(self.expect_ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let source = if self.eat_keyword("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek_keyword("select") {
            InsertSource::Select(Box::new(self.parse_select_statement()?))
        } else {
            return Err(SqlError::Parse(
                "expected VALUES or SELECT in INSERT statement".into(),
            ));
        };
        Ok(Statement::Insert(InsertStatement {
            table,
            columns,
            source,
        }))
    }

    fn parse_update(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("update")?;
        let table = self.expect_ident()?;
        self.expect_keyword("set")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.expect_ident()?;
            self.expect(&Token::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((column, value));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let selection = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(UpdateStatement {
            table,
            assignments,
            selection,
        }))
    }

    fn parse_delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("delete")?;
        self.eat_keyword("from");
        let table = self.expect_ident()?;
        let selection = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(DeleteStatement { table, selection }))
    }

    fn parse_create(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("create")?;
        if self.eat_keyword("table") {
            let name = self.expect_ident()?;
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            let mut primary_key = Vec::new();
            loop {
                if self.peek_keyword("primary") {
                    self.advance();
                    self.expect_keyword("key")?;
                    self.expect(&Token::LParen)?;
                    loop {
                        primary_key.push(self.expect_ident()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                } else {
                    let col_name = self.expect_ident()?;
                    let ty_name = self.expect_ident()?;
                    // Swallow optional (n) / (n, m) size suffixes.
                    if self.eat(&Token::LParen) {
                        while self.peek() != &Token::RParen && self.peek() != &Token::Eof {
                            self.advance();
                        }
                        self.expect(&Token::RParen)?;
                    }
                    let ty = DataType::parse(&ty_name)
                        .ok_or_else(|| SqlError::Parse(format!("unknown column type {ty_name}")))?;
                    let mut nullable = true;
                    if self.peek_keyword("not") {
                        self.advance();
                        self.expect_keyword("null")?;
                        nullable = false;
                    } else {
                        self.eat_keyword("null");
                    }
                    columns.push(ColumnSpec {
                        name: col_name,
                        ty,
                        nullable,
                    });
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            Ok(Statement::CreateTable(CreateTableStatement {
                name,
                columns,
                primary_key,
            }))
        } else if self.peek_keyword("unique") || self.peek_keyword("index") {
            let unique = self.eat_keyword("unique");
            self.expect_keyword("index")?;
            let name = self.expect_ident()?;
            self.expect_keyword("on")?;
            let table = self.expect_ident()?;
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.expect_ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            let mut include = Vec::new();
            if self.eat_keyword("include") {
                self.expect(&Token::LParen)?;
                loop {
                    include.push(self.expect_ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            Ok(Statement::CreateIndex(CreateIndexStatement {
                name,
                table,
                columns,
                include,
                unique,
            }))
        } else if self.eat_keyword("view") {
            let name = self.expect_ident()?;
            self.expect_keyword("as")?;
            let query = self.parse_select_statement()?;
            Ok(Statement::CreateView(CreateViewStatement { name, query }))
        } else {
            Err(SqlError::Parse(format!(
                "CREATE must be followed by TABLE, INDEX or VIEW, found {}",
                self.peek()
            )))
        }
    }

    fn parse_drop(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("drop")?;
        self.expect_keyword("table")?;
        let name = self.expect_ident()?;
        Ok(Statement::DropTable { name })
    }

    fn parse_declare(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("declare")?;
        let name = match self.advance() {
            Token::Variable(v) => v,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected @variable after DECLARE, found {other}"
                )))
            }
        };
        let ty_name = self.expect_ident()?;
        if self.eat(&Token::LParen) {
            while self.peek() != &Token::RParen && self.peek() != &Token::Eof {
                self.advance();
            }
            self.expect(&Token::RParen)?;
        }
        let ty = DataType::parse(&ty_name)
            .ok_or_else(|| SqlError::Parse(format!("unknown type {ty_name}")))?;
        Ok(Statement::Declare { name, ty })
    }

    fn parse_set(&mut self) -> Result<Statement, SqlError> {
        self.expect_keyword("set")?;
        let name = match self.advance() {
            Token::Variable(v) => v,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected @variable after SET, found {other}"
                )))
            }
        };
        self.expect(&Token::Eq)?;
        let expr = self.parse_expr()?;
        Ok(Statement::SetVariable { name, expr })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, SqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, SqlError> {
        if self.eat_keyword("not") {
            let expr = self.parse_not()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(expr),
            })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.parse_bitor()?;
        // BETWEEN / IN / LIKE / IS NULL, possibly negated.
        let negated = if self.peek_keyword("not")
            && (self.peek_keyword_at(1, "between")
                || self.peek_keyword_at(1, "in")
                || self.peek_keyword_at(1, "like"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_keyword("between") {
            let low = self.parse_bitor()?;
            self.expect_keyword("and")?;
            let high = self.parse_bitor()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("in") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("like") {
            let pattern = self.parse_bitor()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.peek_keyword("is") {
            self.advance();
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let op = match self.peek() {
            Token::Eq => Some(BinaryOp::Eq),
            Token::NotEq => Some(BinaryOp::NotEq),
            Token::Lt => Some(BinaryOp::Lt),
            Token::LtEq => Some(BinaryOp::LtEq),
            Token::Gt => Some(BinaryOp::Gt),
            Token::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_bitor()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_bitor(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_bitand()?;
        while self.peek() == &Token::Pipe {
            self.advance();
            let right = self.parse_bitand()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::BitOr,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_bitand(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_additive()?;
        while self.peek() == &Token::Ampersand {
            self.advance();
            let right = self.parse_additive()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::BitAnd,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Add,
                Token::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                Token::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, SqlError> {
        if self.peek() == &Token::Minus {
            self.advance();
            let expr = self.parse_unary()?;
            // Fold negative numeric literals for cleaner plans.
            if let Expr::Literal(Value::Int(i)) = expr {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            if let Expr::Literal(Value::Float(f)) = expr {
                return Ok(Expr::Literal(Value::Float(-f)));
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(expr),
            });
        }
        if self.peek() == &Token::Plus {
            self.advance();
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, SqlError> {
        match self.advance() {
            Token::Number(n) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse::<f64>()
                        .map(|f| Expr::Literal(Value::Float(f)))
                        .map_err(|_| SqlError::Parse(format!("bad numeric literal {n}")))
                } else {
                    n.parse::<i64>()
                        .map(|i| Expr::Literal(Value::Int(i)))
                        .or_else(|_| n.parse::<f64>().map(|f| Expr::Literal(Value::Float(f))))
                        .map_err(|_| SqlError::Parse(format!("bad numeric literal {n}")))
                }
            }
            Token::StringLit(s) => Ok(Expr::Literal(Value::str(s))),
            Token::Variable(v) => Ok(Expr::Variable(v)),
            Token::Star => Ok(Expr::Star),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(first) => self.parse_ident_expr(first),
            other => Err(SqlError::Parse(format!(
                "unexpected token {other} in expression"
            ))),
        }
    }

    fn parse_ident_expr(&mut self, first: String) -> Result<Expr, SqlError> {
        let lower = first.to_ascii_lowercase();
        // NULL literal, CASE, CAST and NOT handled specially.
        if lower == "null" {
            return Ok(Expr::Literal(Value::Null));
        }
        if lower == "case" {
            return self.parse_case();
        }
        if lower == "cast" {
            self.expect(&Token::LParen)?;
            let expr = self.parse_expr()?;
            self.expect_keyword("as")?;
            let ty_name = self.expect_ident()?;
            if self.eat(&Token::LParen) {
                while self.peek() != &Token::RParen && self.peek() != &Token::Eof {
                    self.advance();
                }
                self.expect(&Token::RParen)?;
            }
            self.expect(&Token::RParen)?;
            let ty = DataType::parse(&ty_name)
                .ok_or_else(|| SqlError::Parse(format!("unknown cast type {ty_name}")))?;
            return Ok(Expr::Cast {
                expr: Box::new(expr),
                ty,
            });
        }
        // Dotted name: alias.column, dbo.func(...), alias.column more parts.
        let mut parts = vec![first];
        while self.peek() == &Token::Dot {
            self.advance();
            parts.push(self.expect_ident()?);
        }
        if self.peek() == &Token::LParen {
            // Function call; name keeps its dotted spelling.
            self.advance();
            let mut args = Vec::new();
            if self.peek() != &Token::RParen {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function {
                name: parts.join("."),
                args,
            });
        }
        match parts.len() {
            1 => Ok(Expr::Column {
                qualifier: None,
                name: parts.pop().expect("one part"),
            }),
            2 => {
                let name = parts.pop().expect("two parts");
                let qualifier = parts.pop().expect("two parts");
                Ok(Expr::Column {
                    qualifier: Some(qualifier),
                    name,
                })
            }
            _ => {
                // dbo.table.column style: keep the last two parts.
                let name = parts.pop().expect(">2 parts");
                let qualifier = parts.pop().expect(">2 parts");
                Ok(Expr::Column {
                    qualifier: Some(qualifier),
                    name,
                })
            }
        }
    }

    fn parse_case(&mut self) -> Result<Expr, SqlError> {
        let mut branches = Vec::new();
        let mut else_value = None;
        loop {
            if self.eat_keyword("when") {
                let cond = self.parse_expr()?;
                self.expect_keyword("then")?;
                let value = self.parse_expr()?;
                branches.push((cond, value));
            } else if self.eat_keyword("else") {
                else_value = Some(Box::new(self.parse_expr()?));
            } else if self.eat_keyword("end") {
                break;
            } else {
                return Err(SqlError::Parse(format!(
                    "unexpected token {} in CASE expression",
                    self.peek()
                )));
            }
        }
        Ok(Expr::Case {
            branches,
            else_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_select() {
        let s =
            parse_select("select objID, ra, dec from photoObj where ra > 180 and dec < 0").unwrap();
        assert_eq!(s.projections.len(), 3);
        assert_eq!(s.from.len(), 1);
        assert!(s.selection.is_some());
        assert!(matches!(
            s.from[0].source,
            TableSource::Named(ref n) if n == "photoObj"
        ));
    }

    #[test]
    fn parses_top_distinct_order() {
        let s =
            parse_select("select distinct top 10 type from PhotoObj order by type desc").unwrap();
        assert_eq!(s.top, Some(10));
        assert!(s.distinct);
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].ascending);
    }

    #[test]
    fn parses_aliases_with_and_without_as() {
        let s = parse_select(
            "select p.objID as id, sqrt(rowv*rowv+colv*colv) velocity from PhotoObj p",
        )
        .unwrap();
        match &s.projections[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("id")),
            _ => panic!("expected expr"),
        }
        match &s.projections[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("velocity")),
            _ => panic!("expected expr"),
        }
        assert_eq!(s.from[0].alias.as_deref(), Some("p"));
    }

    #[test]
    fn parses_select_into_temp_table() {
        let s = parse_select("select objID into ##results from PhotoObj").unwrap();
        assert_eq!(s.into.as_deref(), Some("##results"));
    }

    #[test]
    fn parses_explicit_join_with_tvf() {
        let s = parse_select(
            "select G.objID, GN.distance from Galaxy as G \
             join fGetNearbyObjEq(185,-0.5, 1) as GN on G.objID = GN.objID",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[1].join, Some(JoinKind::Inner));
        assert!(s.from[1].on.is_some());
        match &s.from[1].source {
            TableSource::Function { name, args } => {
                assert_eq!(name, "fGetNearbyObjEq");
                assert_eq!(args.len(), 3);
                assert_eq!(args[1], Expr::Literal(Value::Float(-0.5)));
            }
            other => panic!("expected TVF, got {other:?}"),
        }
    }

    #[test]
    fn parses_comma_join_self_join() {
        let s =
            parse_select("select r.objID, g.objID from PhotoObj r, PhotoObj g where r.run = g.run")
                .unwrap();
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias.as_deref(), Some("r"));
        assert_eq!(s.from[1].alias.as_deref(), Some("g"));
        assert!(s.from[1].join.is_none());
    }

    #[test]
    fn parses_group_by_having() {
        let s = parse_select(
            "select type, count(*) as n, avg(modelMag_r) from PhotoObj \
             group by type having count(*) > 10 order by n",
        )
        .unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn parses_between_in_like_isnull() {
        let s = parse_select(
            "select * from PhotoObj where fiberMag_r between 6 and 22 \
             and type in (3, 6) and name like 'NGC%' and parentID is not null \
             and flags is null and ra not between 10 and 20",
        )
        .unwrap();
        let conjuncts = s.selection.unwrap().conjuncts().len();
        assert_eq!(conjuncts, 6);
    }

    #[test]
    fn parses_bitwise_flag_test() {
        let s = parse_select("select * from PhotoObj where (flags & @saturated) = 0").unwrap();
        let sel = s.selection.unwrap();
        match sel {
            Expr::Binary { left, op, .. } => {
                assert_eq!(op, BinaryOp::Eq);
                assert!(matches!(
                    *left,
                    Expr::Binary {
                        op: BinaryOp::BitAnd,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multi_statement_script() {
        let script = parse_script(
            "declare @saturated bigint; \
             set @saturated = dbo.fPhotoFlags('saturated'); \
             select objID from PhotoObj where (flags & @saturated) = 0",
        )
        .unwrap();
        assert_eq!(script.len(), 3);
        assert!(matches!(script[0], Statement::Declare { .. }));
        assert!(matches!(script[1], Statement::SetVariable { .. }));
        assert!(matches!(script[2], Statement::Select(_)));
    }

    #[test]
    fn parses_create_table_index_view() {
        let ct = parse_statement(
            "create table t (id bigint not null, mag float, name varchar(64), primary key (id))",
        )
        .unwrap();
        match ct {
            Statement::CreateTable(c) => {
                assert_eq!(c.columns.len(), 3);
                assert!(!c.columns[0].nullable);
                assert!(c.columns[1].nullable);
                assert_eq!(c.primary_key, vec!["id"]);
            }
            other => panic!("{other:?}"),
        }
        let ci = parse_statement("create unique index ix_t on t (mag, id) include (name)").unwrap();
        match ci {
            Statement::CreateIndex(c) => {
                assert!(c.unique);
                assert_eq!(c.columns, vec!["mag", "id"]);
                assert_eq!(c.include, vec!["name"]);
            }
            other => panic!("{other:?}"),
        }
        let cv =
            parse_statement("create view Star as select * from PhotoObj where type = 6").unwrap();
        assert!(matches!(cv, Statement::CreateView(_)));
    }

    #[test]
    fn parses_insert_update_delete() {
        let i = parse_statement("insert into t (id, mag) values (1, 2.5), (2, 3.5)").unwrap();
        match i {
            Statement::Insert(ins) => match ins.source {
                InsertSource::Values(rows) => assert_eq!(rows.len(), 2),
                _ => panic!("expected VALUES"),
            },
            other => panic!("{other:?}"),
        }
        let i2 = parse_statement("insert into t select id, mag from s where mag > 1").unwrap();
        assert!(matches!(
            i2,
            Statement::Insert(InsertStatement {
                source: InsertSource::Select(_),
                ..
            })
        ));
        let u = parse_statement("update t set mag = mag + 1 where id = 3").unwrap();
        assert!(matches!(u, Statement::Update(_)));
        let d = parse_statement("delete from t where id = 3").unwrap();
        assert!(matches!(d, Statement::Delete(_)));
    }

    #[test]
    fn parses_case_and_cast() {
        let s = parse_select(
            "select case when type = 3 then 'galaxy' when type = 6 then 'star' else 'other' end, \
             cast(ra as bigint) from PhotoObj",
        )
        .unwrap();
        assert_eq!(s.projections.len(), 2);
    }

    #[test]
    fn parses_query15_from_the_paper() {
        let s = parse_select(
            "select objID, sqrt(rowv*rowv+colv*colv) as velocity, dbo.fGetUrlExpId(objID) as Url \
             into ##results from PhotoObj \
             where (rowv*rowv+colv*colv) between 50 and 1000 and rowv >= 0 and colv >= 0",
        )
        .unwrap();
        assert_eq!(s.projections.len(), 3);
        assert_eq!(s.into.as_deref(), Some("##results"));
        assert_eq!(s.selection.unwrap().conjuncts().len(), 3);
    }

    #[test]
    fn parses_fast_mover_query_fragment() {
        // A representative chunk of the paper's NEO pair query.
        let s = parse_select(
            "select r.objID as rId, g.objId as gId from PhotoObj r, PhotoObj g \
             where r.run = g.run and r.camcol = g.camcol \
             and abs(g.field - r.field) <= 1 \
             and ((power(r.q_r,2) + power(r.u_r,2)) > 0.111111) \
             and r.fiberMag_r between 6 and 22 \
             and sqrt(power(r.cx - g.cx, 2) + power(r.cy - g.cy, 2) + power(r.cz - g.cz, 2)) * (180*60/pi()) < 4.0",
        )
        .unwrap();
        assert_eq!(s.from.len(), 2);
        assert!(s.selection.unwrap().conjuncts().len() >= 5);
    }

    #[test]
    fn reports_errors_for_malformed_sql() {
        assert!(parse_script("").is_err());
        assert!(parse_script("selec * from t").is_err());
        assert!(parse_script("select from where").is_err());
        assert!(parse_script("select * from t where (a = 1").is_err());
        assert!(parse_statement("select 1; select 2").is_err());
        assert!(parse_statement("create table t (id badtype)").is_err());
    }

    #[test]
    fn parses_as_of_release_pin() {
        let s = parse_select("select objID from PhotoObj where ra > 180 as of dr2").unwrap();
        assert_eq!(s.as_of.as_deref(), Some("dr2"));
        // AS OF must not be mistaken for a table alias named `of`.
        assert_eq!(s.from[0].alias, None);

        let s = parse_select("select objID from PhotoObj p order by objID as of dr1").unwrap();
        assert_eq!(s.as_of.as_deref(), Some("dr1"));
        assert_eq!(s.from[0].alias.as_deref(), Some("p"));

        // AS OF directly after the FROM item (no WHERE clause).
        let s = parse_select("select objID from PhotoObj as of dr3").unwrap();
        assert_eq!(s.as_of.as_deref(), Some("dr3"));
        assert_eq!(s.from[0].alias, None);

        // Explicit aliases still work.
        let s = parse_select("select objID from PhotoObj as p as of dr1").unwrap();
        assert_eq!(s.from[0].alias.as_deref(), Some("p"));
        assert_eq!(s.as_of.as_deref(), Some("dr1"));
    }

    #[test]
    fn parses_publish_release() {
        let st = parse_statement("publish release dr2").unwrap();
        assert!(matches!(st, Statement::PublishRelease { ref id } if id == "dr2"));
        assert!(parse_statement("publish dr2").is_err());
    }

    #[test]
    fn qualified_wildcard() {
        let s = parse_select("select g.*, s.z from Galaxy g join SpecObj s on g.objID = s.objID")
            .unwrap();
        assert!(matches!(
            s.projections[0],
            SelectItem::QualifiedWildcard(ref q) if q == "g"
        ));
    }
}
