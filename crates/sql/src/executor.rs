//! Plan execution.
//!
//! A Volcano-style pipeline specialised to the left-deep plans the planner
//! produces: materialise the driving source, fold in each join step
//! (index-lookup / hash / nested-loop), apply the residual filter, then
//! aggregate / sort / dedupe / limit and project.  Scans the optimizer's
//! parallel-scan rule marked [`AccessPath::ParallelHeapScan`] fan out over
//! scoped worker threads, mirroring the paper's parallel sequential scans;
//! scans granted a limit hint stop reading early.  When a
//! [`QueryMonitor`] is attached, every scan and join loop reports progress
//! and honours cancellation/pacing at [`MONITOR_BATCH`]-row granularity.
//!
//! Execution is **compiled first**: the planner finalizer attaches
//! [`CompiledPrograms`] (ordinal-resolved, constant-folded expression
//! programs — see [`crate::exec::compile`]) to the plan, and every hot loop
//! here runs the program for its predicate / join key / projection.  The
//! tree-walking interpreter in [`crate::expr`] remains the fallback for any
//! slot that could not be compiled (late-bound columns, compilation
//! disabled for benchmarking) — both paths share one semantics, so they mix
//! freely.  Scans practice **late materialization**: rows stream borrowed
//! from storage, the filter runs *before* any copy, and single-table plans
//! without joins/sort/aggregation project straight into the output row, so
//! a rejected row is never cloned at all.

use crate::ast::{Expr, JoinKind};
use crate::error::SqlError;
use crate::exec::compile::{
    collect_aggregates, CompiledAggregate, CompiledExpr, CompiledPrograms, SortKey,
};
use crate::exec::vector::{BatchProgram, BatchScratch, BATCH_ROWS};
use crate::expr::{aggregate_key, eval, EvalContext, RowSchema};
use crate::functions::FunctionRegistry;
use crate::monitor::{QueryMonitor, MONITOR_BATCH};
use crate::plan::{AccessPath, JoinStrategy, SelectPlan, SourceKind, SourcePlan};
use crate::result::ResultSet;
use skyserver_storage::{DataType, Database, IndexKey, ScanStats, Value, SEGMENT_ROWS};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Row-count / time / memory budgets (the public SkyServer limits queries
/// to 1,000 rows or 30 seconds, §4; the memory budget keeps one hostile
/// query from exhausting the server's RAM before the row cap applies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryLimits {
    /// Maximum rows returned (the rest are truncated and flagged).
    pub max_rows: Option<usize>,
    /// Wall-clock computation budget in seconds.
    pub max_seconds: Option<f64>,
    /// Memory budget in bytes over every materialization point (scan
    /// output, hash-join builds and outputs, GROUP BY/DISTINCT tables,
    /// sort keys, projections).  Crossing it raises
    /// [`SqlError::ResourceExhausted`].
    pub max_bytes: Option<u64>,
}

impl QueryLimits {
    /// No limits (private / trusted SkyServer).
    pub const UNLIMITED: QueryLimits = QueryLimits {
        max_rows: None,
        max_seconds: None,
        max_bytes: None,
    };

    /// The public web interface limits.
    pub const PUBLIC: QueryLimits = QueryLimits {
        max_rows: Some(1000),
        max_seconds: Some(30.0),
        max_bytes: Some(64 * 1024 * 1024),
    };
}

/// Fixed per-row overhead charged against the memory budget on top of the
/// cell payloads: the `Vec` header plus allocator slack.
const ROW_MEM_OVERHEAD: u64 = 32;

/// Per-cell overhead: the `Value` enum discriminant + inline storage that
/// exists regardless of payload size.
const VALUE_MEM_OVERHEAD: u64 = 16;

/// Approximate heap footprint of one materialized row.
fn row_charge(row: &[Value]) -> u64 {
    ROW_MEM_OVERHEAD
        + row
            .iter()
            .map(|v| v.byte_size() as u64 + VALUE_MEM_OVERHEAD)
            .sum::<u64>()
}

/// [`row_charge`] over a slice of rows.
fn rows_charge(rows: &[Vec<Value>]) -> u64 {
    rows.iter().map(|r| row_charge(r)).sum()
}

/// A per-row predicate: the compiled program when one was built, the
/// interpreter otherwise, or nothing.
enum RowFilter<'a> {
    None,
    Compiled(&'a CompiledExpr),
    Interpreted(&'a Expr),
}

impl<'a> RowFilter<'a> {
    fn new(compiled: Option<&'a CompiledExpr>, expr: Option<&'a Expr>) -> Self {
        match (compiled, expr) {
            (Some(c), _) => RowFilter::Compiled(c),
            (None, Some(e)) => RowFilter::Interpreted(e),
            (None, None) => RowFilter::None,
        }
    }

    fn is_some(&self) -> bool {
        !matches!(self, RowFilter::None)
    }

    #[inline]
    fn accepts(&self, row: &[Value], ctx: &EvalContext<'_>) -> Result<bool, SqlError> {
        match self {
            RowFilter::None => Ok(true),
            RowFilter::Compiled(p) => Ok(p.eval(row, ctx)?.is_truthy()),
            RowFilter::Interpreted(e) => Ok(eval(e, row, ctx)?.is_truthy()),
        }
    }
}

/// A per-row value producer: compiled program or interpreted expression.
enum RowExpr<'a> {
    Compiled(&'a CompiledExpr),
    Interpreted(&'a Expr),
}

impl<'a> RowExpr<'a> {
    #[inline]
    fn eval(&self, row: &[Value], ctx: &EvalContext<'_>) -> Result<Value, SqlError> {
        match self {
            RowExpr::Compiled(p) => p.eval(row, ctx),
            RowExpr::Interpreted(e) => eval(e, row, ctx),
        }
    }
}

/// Pair every expression of a list with its compiled program when the whole
/// list compiled (programs are all-or-nothing per list).
fn zip_exprs<'a>(
    compiled: Option<&'a [CompiledExpr]>,
    exprs: impl ExactSizeIterator<Item = &'a Expr>,
) -> Vec<RowExpr<'a>> {
    match compiled {
        Some(c) if c.len() == exprs.len() => c.iter().map(RowExpr::Compiled).collect(),
        _ => exprs.map(RowExpr::Interpreted).collect(),
    }
}

/// Programs a scan applies while streaming borrowed rows: the pushed filter
/// and, on the late-materialization fast path, the output projection that
/// replaces whole-row cloning.
#[derive(Clone, Copy, Default)]
struct ScanPrograms<'a> {
    filter: Option<&'a CompiledExpr>,
    project: Option<&'a [CompiledExpr]>,
    /// Run heap scans in vectorized batches (plan-level switch).  Only
    /// honoured when the pushed filter (if any) compiled — the batch
    /// kernels execute compiled programs, not interpreter trees.
    vectorized: bool,
    /// Stop accumulating output rows at this count (merged with the
    /// planner's `limit_hint`).  Set from `max_rows + 1` for plans with no
    /// downstream row-reducing or row-reordering operators, so the row
    /// budget bounds memory during the scan instead of trimming a fully
    /// materialized result; the extra row keeps `truncated` detectable.
    row_cap: Option<u64>,
}

/// Programs of one join step.
#[derive(Clone, Copy, Default)]
struct JoinPrograms<'a> {
    inner_filter: Option<&'a CompiledExpr>,
    outer_key: Option<&'a CompiledExpr>,
    hash_keys: Option<&'a (Vec<CompiledExpr>, Vec<CompiledExpr>)>,
    residual: Option<&'a CompiledExpr>,
    /// Propagates [`ScanPrograms::vectorized`] to inner-side scans.
    vectorized: bool,
}

/// The full heap schema of a base table, qualified by its alias — what
/// heap/parallel/seek scans materialize rows with, and what the inner side
/// of an index-lookup join uses (it fetches whole heap rows by RowId
/// regardless of the source's planned access path).
///
/// This is THE definition of the runtime row layout: the planner's program
/// compiler resolves ordinals through these same functions, so the executor
/// and the compiled programs cannot drift apart.
pub(crate) fn heap_schema(db: &Database, alias: &str, table: &str) -> Result<RowSchema, SqlError> {
    let t = db.table(table)?;
    Ok(RowSchema::for_table(
        Some(alias),
        &t.schema().column_names(),
    ))
}

/// The schema a table scan materializes rows with for a given access path:
/// covering scans produce the covered column subset, everything else the
/// full heap schema.  Shared with the planner's program compiler (see
/// [`heap_schema`]).
pub(crate) fn scan_schema(
    db: &Database,
    alias: &str,
    table: &str,
    path: &AccessPath,
) -> Result<RowSchema, SqlError> {
    match path {
        AccessPath::CoveringIndexScan { index } => {
            let idx = db
                .index(table, index)
                .ok_or_else(|| SqlError::Plan(format!("index {index} disappeared")))?;
            let covered: Vec<&str> = idx.def().covered_columns();
            Ok(RowSchema::for_table(Some(alias), &covered))
        }
        _ => heap_schema(db, alias, table),
    }
}

/// What one heap scan (or one parallel-scan partition) produced: the
/// surviving rows plus the counters to fold into the query's [`ScanStats`].
#[derive(Default)]
struct HeapScanOutcome {
    rows: Vec<Vec<Value>>,
    /// Live rows visited in non-pruned segments.
    scanned: u64,
    /// Rows the pushed predicate was evaluated over.
    evaluated: u64,
    /// Segments skipped entirely by zone-map pruning.
    pruned: u64,
    /// Row chunks processed (each ≤ [`BATCH_ROWS`] slots).
    batches: u64,
    /// Bytes of the visited rows' scanned columns.
    bytes: u64,
    /// Full-row-equivalent bytes of the visited rows (all columns), for
    /// the row-store simulation.
    logical_bytes: u64,
}

impl HeapScanOutcome {
    fn merge_into(&self, stats: &mut ScanStats) {
        stats.rows_scanned += self.scanned;
        stats.predicates_evaluated += self.evaluated;
        stats.segments_pruned += self.pruned;
        stats.batches_processed += self.batches;
        stats.bytes_scanned += self.bytes;
        stats.logical_bytes_scanned += self.logical_bytes;
    }
}

/// Bytes of the columns a row-id gather actually touched: the planner's
/// scan-column set when known, the whole row otherwise.
fn gathered_bytes(row: &[Value], scan_columns: Option<&[usize]>) -> u64 {
    match scan_columns {
        Some(cols) => cols
            .iter()
            .filter_map(|&c| row.get(c))
            .map(|v| v.byte_size() as u64)
            .sum(),
        None => row.iter().map(|v| v.byte_size() as u64).sum(),
    }
}

fn source_program(programs: Option<&CompiledPrograms>, index: usize) -> Option<&CompiledExpr> {
    programs.and_then(|p| p.source_predicates.get(index).and_then(Option::as_ref))
}

fn join_programs<'a>(
    programs: Option<&'a CompiledPrograms>,
    index: usize,
    vectorized: bool,
) -> JoinPrograms<'a> {
    let Some(p) = programs else {
        return JoinPrograms::default();
    };
    JoinPrograms {
        inner_filter: p.source_predicates.get(index + 1).and_then(Option::as_ref),
        outer_key: p.join_outer_keys.get(index).and_then(Option::as_ref),
        hash_keys: p.join_hash_keys.get(index).and_then(Option::as_ref),
        residual: p.join_residuals.get(index).and_then(Option::as_ref),
        vectorized,
    }
}

/// Executes SELECT plans.
pub struct Executor<'a> {
    /// The database the plan reads.
    pub db: &'a Database,
    /// Scalar and table-valued functions.
    pub functions: &'a FunctionRegistry,
    /// Session variables visible to the query.
    pub variables: &'a HashMap<String, Value>,
    /// Row/time/memory budgets enforced during execution.
    pub limits: QueryLimits,
    started: Instant,
    /// Cooperative cancellation/progress/pacing hook, checked every
    /// [`MONITOR_BATCH`] rows or probes.  `None` costs nothing on the hot
    /// path beyond a local counter increment.
    monitor: Option<&'a QueryMonitor>,
    /// Bytes of materialized state charged so far — shared atomically
    /// across parallel-scan workers and derived-plan recursion so the
    /// `max_bytes` budget covers the whole statement.
    mem_used: AtomicU64,
}

impl Drop for Executor<'_> {
    fn drop(&mut self) {
        // Return this statement's charge to the monitor's gauge so an
        // observer sees live usage, not the sum over a whole script.
        if let Some(monitor) = self.monitor {
            monitor.release_bytes(self.mem_used.load(Ordering::Relaxed));
        }
    }
}

/// Result of executing a plan, before any INTO handling.
#[derive(Debug, Clone)]
pub struct ExecutedSelect {
    /// The produced rows.
    pub result: ResultSet,
    /// Raw scan counters accumulated during execution.
    pub stats: ScanStats,
}

impl<'a> Executor<'a> {
    /// Create an executor.
    pub fn new(
        db: &'a Database,
        functions: &'a FunctionRegistry,
        variables: &'a HashMap<String, Value>,
        limits: QueryLimits,
    ) -> Self {
        Executor {
            db,
            functions,
            variables,
            limits,
            started: Instant::now(),
            monitor: None,
            mem_used: AtomicU64::new(0),
        }
    }

    /// Charge `bytes` of newly materialized state against the memory
    /// budget.  Reports to the attached monitor's gauge and raises
    /// [`SqlError::ResourceExhausted`] once `max_bytes` is crossed — the
    /// governor's alternative to an OOM kill.
    fn charge_mem(&self, bytes: u64) -> Result<(), SqlError> {
        if bytes == 0 {
            return Ok(());
        }
        let now = self.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(monitor) = self.monitor {
            monitor.charge_bytes(bytes);
        }
        if let Some(budget) = self.limits.max_bytes {
            if now > budget {
                return Err(SqlError::ResourceExhausted(format!(
                    "query materialized {now} bytes against its {budget} byte budget"
                )));
            }
        }
        Ok(())
    }

    /// Attach a [`QueryMonitor`]: the executor reports progress to it and
    /// honours cancellation and pacing at row-batch granularity.
    pub fn with_monitor(mut self, monitor: Option<&'a QueryMonitor>) -> Self {
        self.monitor = monitor;
        self
    }

    /// Count one processed row/probe into the local batch counter; every
    /// [`MONITOR_BATCH`] rows the batch is flushed to the monitor, which
    /// may cancel or pace the query.
    #[inline]
    fn tick(&self, pending: &mut u64) -> Result<(), SqlError> {
        *pending += 1;
        if *pending >= MONITOR_BATCH {
            self.flush_progress(pending)?;
        }
        Ok(())
    }

    /// [`Self::tick`] for a whole batch of rows at once: chunked scans
    /// report progress (and observe cancellation/pacing) at chunk
    /// granularity instead of per row.
    #[inline]
    fn tick_rows(&self, pending: &mut u64, n: u64) -> Result<(), SqlError> {
        *pending += n;
        if *pending >= MONITOR_BATCH {
            self.flush_progress(pending)?;
        }
        Ok(())
    }

    /// Count one unit of work that is *not* a scanned row or probe (e.g. a
    /// residual-predicate evaluation over rows the scan already reported):
    /// checks the time budget and the monitor's cancellation/pacing at
    /// batch granularity without inflating the progress counter.
    #[inline]
    fn tick_quiet(&self, pending: &mut u64) -> Result<(), SqlError> {
        *pending += 1;
        if *pending >= MONITOR_BATCH {
            *pending = 0;
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Flush the pending row count to the monitor and honour the time
    /// budget and the monitor's cancellation flag and pacing sleep.
    fn flush_progress(&self, pending: &mut u64) -> Result<(), SqlError> {
        if *pending == 0 {
            return Ok(());
        }
        if let Some(monitor) = self.monitor {
            monitor.add_rows(*pending);
        }
        *pending = 0;
        self.checkpoint()
    }

    /// The shared batch-boundary checkpoint: enforce the time budget and
    /// the monitor's cancellation flag, then apply its pacing sleep.
    fn checkpoint(&self) -> Result<(), SqlError> {
        // Chaos hook at the universal batch boundary: every plan shape
        // (heap scan, index scan, join, aggregate) passes through here,
        // so an injected fault reaches any query (delays model a slow
        // kernel; errors a mid-execution failure).
        skyserver_storage::failpoints::check("executor.batch").map_err(SqlError::Execution)?;
        // Batch boundaries double as time-budget checkpoints, so a long
        // scan hits its `max_seconds` limit mid-flight instead of only at
        // the next pipeline stage.
        self.check_time()?;
        if let Some(monitor) = self.monitor {
            if monitor.is_cancelled() {
                return Err(SqlError::Cancelled);
            }
            let pace = monitor.pace();
            if !pace.is_zero() {
                std::thread::sleep(pace);
            }
        }
        Ok(())
    }

    fn check_time(&self) -> Result<(), SqlError> {
        if let Some(budget) = self.limits.max_seconds {
            if self.started.elapsed().as_secs_f64() > budget {
                return Err(SqlError::LimitExceeded(format!(
                    "query exceeded the {budget} second computation budget"
                )));
            }
        }
        // The monitor's deadline is the request-scoped wall budget the web
        // tier propagates (interactive, API and batch paths all set it);
        // it expires a query mid-scan exactly like `max_seconds`.
        if let Some(monitor) = self.monitor {
            if monitor.deadline_expired() {
                return Err(SqlError::LimitExceeded(
                    "query ran past its request deadline".into(),
                ));
            }
        }
        Ok(())
    }

    fn ctx<'b>(&'b self, schema: &'b RowSchema) -> EvalContext<'b> {
        EvalContext {
            schema,
            variables: self.variables,
            functions: self.functions,
            aggregates: None,
        }
    }

    /// Produce one output row from a borrowed storage row: either evaluate
    /// the compiled projection straight into the output (fast path) or
    /// materialise the row as-is.
    #[inline]
    fn emit(
        &self,
        row: &[Value],
        project: Option<&[CompiledExpr]>,
        ctx: &EvalContext<'_>,
    ) -> Result<Vec<Value>, SqlError> {
        match project {
            Some(programs) => {
                let mut out = Vec::with_capacity(programs.len());
                for p in programs {
                    out.push(p.eval(row, ctx)?);
                }
                Ok(out)
            }
            None => Ok(row.to_vec()),
        }
    }

    /// The row count at which this plan's driving scan may stop
    /// accumulating: `max_rows + 1` when no downstream operator (join,
    /// residual, aggregate, ORDER BY, DISTINCT) can reduce or reorder
    /// rows, `None` otherwise.  The extra row is what lets [`Self::finish`]
    /// still detect and flag truncation.
    fn accumulation_cap(&self, plan: &SelectPlan) -> Option<u64> {
        let eligible = plan.joins.is_empty()
            && plan.residual.is_none()
            && !plan.has_aggregates
            && plan.group_by.is_empty()
            && plan.order_by.is_empty()
            && !plan.distinct
            && plan.sources.len() == 1;
        if !eligible {
            return None;
        }
        self.limits.max_rows.map(|m| m as u64 + 1)
    }

    /// Execute a SELECT plan to completion.
    pub fn execute_select(&self, plan: &SelectPlan) -> Result<ExecutedSelect, SqlError> {
        let mut stats = ScanStats::default();
        let programs = plan.programs.as_ref();
        // ------------------------------------------------------------------
        // Late-materialization fast path: a single base-table source with no
        // joins, residual, aggregation or sort.  The compiled filter runs on
        // the borrowed storage row and survivors are projected directly into
        // the output — rejected rows are never copied, and TOP-n stops the
        // scan without materialising anything extra.
        // ------------------------------------------------------------------
        if let Some(p) = programs {
            let streamable = plan.joins.is_empty()
                && plan.residual.is_none()
                && !plan.has_aggregates
                && plan.group_by.is_empty()
                && plan.order_by.is_empty()
                && plan.sources.len() == 1
                && matches!(plan.sources[0].kind, SourceKind::Table { .. });
            if streamable {
                if let Some(proj) = p.projections.as_deref() {
                    let scan = ScanPrograms {
                        filter: source_program(programs, 0),
                        project: Some(proj),
                        vectorized: plan.vectorized,
                        row_cap: self.accumulation_cap(plan),
                    };
                    let (rows, _schema) =
                        self.execute_source(&plan.sources[0], scan, &mut stats)?;
                    self.check_time()?;
                    return Ok(self.finish(plan, rows, stats));
                }
            }
        }
        // ------------------------------------------------------------------
        // FROM pipeline.
        // ------------------------------------------------------------------
        let (mut rows, mut schema) = if plan.sources.is_empty() {
            (vec![Vec::new()], RowSchema::default())
        } else {
            let scan = ScanPrograms {
                filter: source_program(programs, 0),
                project: None,
                vectorized: plan.vectorized,
                row_cap: self.accumulation_cap(plan),
            };
            self.execute_source(&plan.sources[0], scan, &mut stats)?
        };
        for (i, step) in plan.joins.iter().enumerate() {
            self.check_time()?;
            let inner = &plan.sources[i + 1];
            let (joined_rows, joined_schema) = self.execute_join(
                rows,
                &schema,
                inner,
                step,
                join_programs(programs, i, plan.vectorized),
                &mut stats,
            )?;
            rows = joined_rows;
            schema = joined_schema;
        }
        // ------------------------------------------------------------------
        // Residual filter.
        // ------------------------------------------------------------------
        if plan.residual.is_some() {
            let filter = RowFilter::new(
                programs.and_then(|p| p.residual.as_ref()),
                plan.residual.as_ref(),
            );
            let ctx = self.ctx(&schema);
            let mut kept = Vec::with_capacity(rows.len());
            let mut pending = 0u64;
            for row in rows {
                // Quiet: these rows were already counted by the scans and
                // joins that produced them; only check cancel/time/pace.
                self.tick_quiet(&mut pending)?;
                stats.predicates_evaluated += 1;
                if filter.accepts(&row, &ctx)? {
                    kept.push(row);
                }
            }
            rows = kept;
        }
        self.check_time()?;
        // ------------------------------------------------------------------
        // Aggregation or plain projection.
        // ------------------------------------------------------------------
        let mut projected: Vec<(Vec<Value>, Vec<Value>)> =
            if plan.has_aggregates || !plan.group_by.is_empty() {
                self.aggregate(plan, &schema, rows, programs)?
            } else {
                let ctx = self.ctx(&schema);
                let projections = zip_exprs(
                    programs.and_then(|p| p.projections.as_deref()),
                    plan.projections.iter().map(|(e, _)| e),
                );
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut proj = Vec::with_capacity(projections.len());
                    for p in &projections {
                        proj.push(p.eval(&row, &ctx)?);
                    }
                    // The projected row doubles the materialized state
                    // while both copies are alive.
                    self.charge_mem(row_charge(&proj))?;
                    out.push((row, proj));
                }
                out
            };
        // ------------------------------------------------------------------
        // ORDER BY.
        // ------------------------------------------------------------------
        if !plan.order_by.is_empty() {
            let ctx = self.ctx(&schema);
            let sort_programs = programs.and_then(|p| p.order_by.as_deref());
            let output_names: Vec<&str> =
                plan.projections.iter().map(|(_, n)| n.as_str()).collect();
            // (sort keys, (input row, projected row))
            type KeyedRow = (Vec<Value>, (Vec<Value>, Vec<Value>));
            let mut keyed: Vec<KeyedRow> = Vec::with_capacity(projected.len());
            for (row, proj) in projected {
                let mut keys = Vec::with_capacity(plan.order_by.len());
                match sort_programs {
                    Some(sort_keys) => {
                        for sk in sort_keys {
                            keys.push(match sk {
                                SortKey::Output(idx) => proj[*idx].clone(),
                                SortKey::Input(program) => program.eval(&row, &ctx)?,
                            });
                        }
                    }
                    None => {
                        for item in &plan.order_by {
                            // ORDER BY can name an output alias or any input
                            // column.
                            let key = match &item.expr {
                                Expr::Column {
                                    qualifier: None,
                                    name,
                                } if output_names.iter().any(|n| n.eq_ignore_ascii_case(name)) => {
                                    let idx = output_names
                                        .iter()
                                        .position(|n| n.eq_ignore_ascii_case(name))
                                        // skylint: allow(no-expect) the match guard just proved the name is present
                                        .expect("checked above");
                                    proj[idx].clone()
                                }
                                e => eval(e, &row, &ctx)?,
                            };
                            keys.push(key);
                        }
                    }
                }
                // Sort keys are the sort buffer's own footprint.
                self.charge_mem(row_charge(&keys))?;
                keyed.push((keys, (row, proj)));
            }
            keyed.sort_by(|a, b| {
                for (i, item) in plan.order_by.iter().enumerate() {
                    let ord = a.0[i].total_cmp(&b.0[i]);
                    let ord = if item.ascending { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            projected = keyed.into_iter().map(|(_, rp)| rp).collect();
        }
        let final_rows: Vec<Vec<Value>> = projected.into_iter().map(|(_, p)| p).collect();
        Ok(self.finish(plan, final_rows, stats))
    }

    /// The shared tail of every SELECT: DISTINCT, TOP, the row-budget
    /// truncation, and the result assembly.
    fn finish(
        &self,
        plan: &SelectPlan,
        mut final_rows: Vec<Vec<Value>>,
        mut stats: ScanStats,
    ) -> ExecutedSelect {
        if plan.distinct {
            // Hash-based dedupe preserving first-occurrence order.  Rows
            // move into the map (duplicates are simply dropped) and move
            // back out sorted by insertion rank — no clones at all.
            let mut seen: HashMap<Vec<Value>, usize> = HashMap::with_capacity(final_rows.len());
            for row in final_rows {
                let rank = seen.len();
                seen.entry(row).or_insert(rank);
            }
            let mut ordered: Vec<(Vec<Value>, usize)> = seen.into_iter().collect();
            ordered.sort_unstable_by_key(|(_, rank)| *rank);
            final_rows = ordered.into_iter().map(|(row, _)| row).collect();
        }
        if let Some(top) = plan.top {
            final_rows.truncate(top as usize);
        }
        let mut truncated = false;
        if let Some(max) = self.limits.max_rows {
            if final_rows.len() > max {
                final_rows.truncate(max);
                truncated = true;
            }
        }
        stats.rows_returned = final_rows.len() as u64;
        ExecutedSelect {
            result: ResultSet {
                columns: plan.projections.iter().map(|(_, n)| n.clone()).collect(),
                rows: final_rows,
                truncated,
            },
            stats,
        }
    }

    // ----------------------------------------------------------------------
    // Sources
    // ----------------------------------------------------------------------

    fn execute_source(
        &self,
        source: &SourcePlan,
        scan: ScanPrograms<'_>,
        stats: &mut ScanStats,
    ) -> Result<(Vec<Vec<Value>>, RowSchema), SqlError> {
        match &source.kind {
            SourceKind::Table { table, path } => self.scan_table(table, path, source, scan, stats),
            SourceKind::TableFunction { name, args } => {
                let tf = self
                    .functions
                    .table(name)
                    .ok_or_else(|| SqlError::UnknownFunction(name.clone()))?;
                let empty_schema = RowSchema::default();
                let ctx = self.ctx(&empty_schema);
                let arg_values: Vec<Value> = args
                    .iter()
                    .map(|a| eval(a, &[], &ctx))
                    .collect::<Result<_, _>>()?;
                let result = (tf.func)(self.db, &arg_values)?;
                let mut rows = result.rows;
                // Apply any pushed predicate over the TVF output.
                if source.pushed_predicate.is_some() {
                    let filter = RowFilter::new(scan.filter, source.pushed_predicate.as_ref());
                    let ctx = self.ctx(&source.schema);
                    rows = rows
                        .into_iter()
                        .filter_map(|r| match filter.accepts(&r, &ctx) {
                            Ok(true) => Some(Ok(r)),
                            Ok(false) => None,
                            Err(e) => Some(Err(e)),
                        })
                        .collect::<Result<_, _>>()?;
                }
                self.charge_mem(rows_charge(&rows))?;
                stats.rows_returned += rows.len() as u64;
                Ok((rows, source.schema.clone()))
            }
            SourceKind::Derived { plan } => {
                let executed = self.execute_select(plan)?;
                stats.merge(&executed.stats);
                let mut rows = executed.result.rows;
                if source.pushed_predicate.is_some() {
                    let filter = RowFilter::new(scan.filter, source.pushed_predicate.as_ref());
                    let ctx = self.ctx(&source.schema);
                    rows = rows
                        .into_iter()
                        .filter_map(|r| match filter.accepts(&r, &ctx) {
                            Ok(true) => Some(Ok(r)),
                            Ok(false) => None,
                            Err(e) => Some(Err(e)),
                        })
                        .collect::<Result<_, _>>()?;
                }
                Ok((rows, source.schema.clone()))
            }
        }
    }

    fn scan_table(
        &self,
        table: &str,
        path: &AccessPath,
        source: &SourcePlan,
        scan: ScanPrograms<'_>,
        stats: &mut ScanStats,
    ) -> Result<(Vec<Vec<Value>>, RowSchema), SqlError> {
        let t = self.db.table(table)?;
        let full_schema = heap_schema(self.db, &source.alias, table)?;
        // The planner's TOP-derived hint and the governor's accumulation
        // cap both bound the scan; the tighter one wins.
        let limit_hint = match (source.limit_hint, scan.row_cap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match path {
            AccessPath::HeapScan => {
                let outcome = self.scan_heap_segments(
                    t,
                    0,
                    t.segments().len(),
                    source,
                    scan,
                    &full_schema,
                    limit_hint,
                )?;
                outcome.merge_into(stats);
                Ok((outcome.rows, full_schema))
            }
            AccessPath::ParallelHeapScan { workers } => {
                let rows = self.parallel_heap_scan(
                    t,
                    &full_schema,
                    source,
                    scan,
                    *workers,
                    limit_hint,
                    stats,
                )?;
                Ok((rows, full_schema))
            }
            AccessPath::IndexSeek { index, bounds } => {
                let idx = self
                    .db
                    .index(table, index)
                    .ok_or_else(|| SqlError::Plan(format!("index {index} disappeared")))?;
                let empty = RowSchema::default();
                let ctx = self.ctx(&empty);
                let entries = if let Some(eq) = &bounds.equals {
                    // A prefix seek handles both single-column and composite
                    // indexes whose leading column carries the equality.
                    let key = eval(eq, &[], &ctx)?;
                    idx.seek_prefix(&key)
                        .into_iter()
                        .map(|(_, e)| e.row_id)
                        .collect::<Vec<_>>()
                } else {
                    let lo = match &bounds.lower {
                        Some((e, _)) => Some(IndexKey(vec![eval(e, &[], &ctx)?])),
                        None => None,
                    };
                    let hi = match &bounds.upper {
                        Some((e, _)) => Some(IndexKey(vec![
                            eval(e, &[], &ctx)?,
                            Value::str("\u{10FFFF}"),
                        ])),
                        None => None,
                    };
                    idx.seek_range(lo.as_ref(), hi.as_ref())
                        .into_iter()
                        .map(|(_, e)| e.row_id)
                        .collect::<Vec<_>>()
                };
                stats.index_seeks += 1;
                // Index traffic is charged per entry at the index's own
                // entry size; the gathered heap columns are charged to
                // `bytes_scanned` at their actual widths.
                let entry_bytes = if !idx.is_empty() {
                    (idx.bytes() / idx.len() as u64).max(1)
                } else {
                    1
                };
                let filter = RowFilter::new(scan.filter, source.pushed_predicate.as_ref());
                let has_filter = filter.is_some();
                let ctx = self.ctx(&full_schema);
                let mut out = Vec::new();
                let mut pending = 0u64;
                for row_id in entries {
                    self.tick(&mut pending)?;
                    // Gather only the referenced columns (see the join-side
                    // comment on `get_sparse`): unreferenced cells stay NULL
                    // and are never read downstream.
                    let fetched = match source.scan_columns.as_deref() {
                        Some(cols) => t.get_sparse(row_id, cols),
                        None => t.get(row_id),
                    };
                    let Some(row) = fetched else { continue };
                    stats.rows_from_index += 1;
                    stats.bytes_from_index += entry_bytes;
                    stats.bytes_scanned += gathered_bytes(&row, source.scan_columns.as_deref());
                    if has_filter {
                        stats.predicates_evaluated += 1;
                        if !filter.accepts(&row, &ctx)? {
                            continue;
                        }
                    }
                    let produced = self.emit(&row, scan.project, &ctx)?;
                    self.charge_mem(row_charge(&produced))?;
                    out.push(produced);
                    if limit_hint.is_some_and(|l| out.len() as u64 >= l) {
                        break;
                    }
                }
                self.flush_progress(&mut pending)?;
                Ok((out, full_schema))
            }
            AccessPath::CoveringIndexScan { index } => {
                let idx = self
                    .db
                    .index(table, index)
                    .ok_or_else(|| SqlError::Plan(format!("index {index} disappeared")))?;
                let schema = scan_schema(self.db, &source.alias, table, path)?;
                let filter = RowFilter::new(scan.filter, source.pushed_predicate.as_ref());
                let has_filter = filter.is_some();
                let ctx = self.ctx(&schema);
                let entry_bytes = if !idx.is_empty() {
                    (idx.bytes() / idx.len() as u64).max(1)
                } else {
                    1
                };
                let mut out = Vec::new();
                let mut pending = 0u64;
                // The covering entry is assembled into a scratch row once
                // per entry; the filter runs on the scratch before any
                // further copy is made.
                let mut scratch: Vec<Value> = Vec::new();
                for (key, entry) in idx.scan() {
                    self.tick(&mut pending)?;
                    stats.rows_from_index += 1;
                    stats.bytes_from_index += entry_bytes;
                    scratch.clear();
                    scratch.extend(key.0.iter().cloned());
                    scratch.extend(entry.included.iter().cloned());
                    if has_filter {
                        stats.predicates_evaluated += 1;
                        if !filter.accepts(&scratch, &ctx)? {
                            continue;
                        }
                    }
                    let produced = match scan.project {
                        Some(_) => self.emit(&scratch, scan.project, &ctx)?,
                        None => std::mem::take(&mut scratch),
                    };
                    self.charge_mem(row_charge(&produced))?;
                    out.push(produced);
                    if limit_hint.is_some_and(|l| out.len() as u64 >= l) {
                        break;
                    }
                }
                self.flush_progress(&mut pending)?;
                Ok((out, schema))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn parallel_heap_scan(
        &self,
        t: &skyserver_storage::Table,
        schema: &RowSchema,
        source: &SourcePlan,
        scan: ScanPrograms<'_>,
        workers: usize,
        limit_hint: Option<u64>,
        stats: &mut ScanStats,
    ) -> Result<Vec<Vec<Value>>, SqlError> {
        let workers = workers
            .min(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(2),
            )
            .max(1);
        // Partitions are segment-aligned, so each worker owns a whole
        // range of segments and prunes/scans them independently.
        let partitions = t.partition_row_ids(workers);
        let results: Vec<Result<HeapScanOutcome, SqlError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .iter()
                .map(|&(lo, hi)| {
                    scope.spawn(move || {
                        let seg_lo = lo / SEGMENT_ROWS;
                        let seg_hi = hi.div_ceil(SEGMENT_ROWS);
                        // Each worker reports to (and is cancelled or paced
                        // by) the same shared monitor.  Each may stop at the
                        // limit: the merged result still has at least
                        // `limit` rows whenever the table does.
                        self.scan_heap_segments(t, seg_lo, seg_hi, source, scan, schema, limit_hint)
                    })
                })
                .collect();
            handles
                .into_iter()
                // skylint: allow(no-expect) re-raising a worker panic on the coordinator is the correct propagation
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });
        let mut rows = Vec::new();
        for r in results {
            let outcome = r?;
            outcome.merge_into(stats);
            rows.extend(outcome.rows);
        }
        Ok(rows)
    }

    /// Scan the live rows of segments `seg_lo..seg_hi`, applying the pushed
    /// filter and (on the fast path) the output projection.
    ///
    /// This is the engine's one heap-scan loop, shared by the serial and
    /// parallel access paths.  Work proceeds segment by segment:
    ///
    /// 1. **Zone pruning** — if any [`crate::plan::ZoneConstraint`] proves
    ///    the segment's min/max cannot satisfy the pushed predicate, the
    ///    whole segment is skipped without touching its rows.
    /// 2. **Chunking** — surviving segments are processed in chunks of
    ///    [`BATCH_ROWS`] slots.  With a vectorized plan and a compiled (or
    ///    absent) filter, each chunk runs through the [`BatchProgram`]
    ///    kernels; otherwise rows are materialized and filtered one at a
    ///    time.  Either way progress, limit hints and byte accounting are
    ///    checked at chunk boundaries, so both modes report identical
    ///    counters.
    #[allow(clippy::too_many_arguments)]
    fn scan_heap_segments(
        &self,
        t: &skyserver_storage::Table,
        seg_lo: usize,
        seg_hi: usize,
        source: &SourcePlan,
        scan: ScanPrograms<'_>,
        schema: &RowSchema,
        limit_hint: Option<u64>,
    ) -> Result<HeapScanOutcome, SqlError> {
        let filter = RowFilter::new(scan.filter, source.pushed_predicate.as_ref());
        let has_filter = filter.is_some();
        let ctx = EvalContext {
            schema,
            variables: self.variables,
            functions: self.functions,
            aggregates: None,
        };
        // The batch kernels only run compiled programs: an interpreted
        // pushed predicate (compilation failed or disabled) forces the
        // row-at-a-time loop.
        let use_vector =
            scan.vectorized && (scan.filter.is_some() || source.pushed_predicate.is_none());
        let column_types: Vec<DataType> = t.schema().columns().iter().map(|c| c.ty).collect();
        let ncols = column_types.len();
        let program =
            use_vector.then(|| BatchProgram::build(scan.filter, scan.project, column_types));
        let mut scratch = BatchScratch::default();
        let mut row_scratch: Vec<Value> = Vec::with_capacity(ncols);
        let mut outcome = HeapScanOutcome::default();
        let mut pending = 0u64;
        let segments = t.segments();
        let seg_hi = seg_hi.min(segments.len());
        'segments: for seg in &segments[seg_lo.min(seg_hi)..seg_hi] {
            // Chaos hook: a failed segment read surfaces as a structured
            // storage error, never a lost worker.
            skyserver_storage::failpoints::check("storage.segment_read")
                .map_err(|m| SqlError::Storage(skyserver_storage::StorageError::ReadFailed(m)))?;
            if !source.zone_constraints.is_empty()
                && source.zone_constraints.iter().any(|zc| {
                    let col = seg.column(zc.ordinal);
                    !zc.zone_overlaps(col.zone_min(), col.zone_max())
                })
            {
                outcome.pruned += 1;
                continue;
            }
            // Charge scanned bytes at this segment's actual per-column
            // rate, restricted to the columns the query touches; the
            // full-row rate feeds the row-store simulation.
            let live = seg.live_rows() as u64;
            let full_bytes: u64 = (0..ncols).map(|c| seg.column(c).bytes()).sum();
            let col_bytes: u64 = match source.scan_columns.as_deref() {
                Some(cols) => cols.iter().map(|&c| seg.column(c).bytes()).sum(),
                None => full_bytes,
            };
            let per_row = |total: u64| {
                if total > 0 {
                    (total / live.max(1)).max(1)
                } else {
                    0
                }
            };
            let bytes_per_row = per_row(col_bytes);
            let logical_per_row = per_row(full_bytes);
            let slots = seg.slot_count();
            let mut base = 0usize;
            while base < slots {
                let end = (base + BATCH_ROWS).min(slots);
                let chunk_start = outcome.rows.len();
                let visited = match &program {
                    Some(program) => {
                        let visited = program.begin_chunk(seg, base, end, &mut scratch);
                        program.filter_chunk(seg, &mut scratch, &ctx)?;
                        program.emit_chunk(seg, &mut scratch, &ctx, &mut outcome.rows)?;
                        visited
                    }
                    None => {
                        let mut visited = 0u64;
                        for off in base..end {
                            if !seg.is_live(off) {
                                continue;
                            }
                            visited += 1;
                            row_scratch.clear();
                            for c in 0..ncols {
                                row_scratch.push(seg.value(off, c));
                            }
                            if has_filter && !filter.accepts(&row_scratch, &ctx)? {
                                continue;
                            }
                            outcome
                                .rows
                                .push(self.emit(&row_scratch, scan.project, &ctx)?);
                        }
                        visited
                    }
                };
                outcome.scanned += visited;
                outcome.batches += 1;
                if has_filter {
                    outcome.evaluated += visited;
                }
                outcome.bytes += visited.saturating_mul(bytes_per_row);
                outcome.logical_bytes += visited.saturating_mul(logical_per_row);
                // Charge the chunk's surviving rows against the memory
                // budget (chunk granularity keeps the atomics off the
                // per-row path).
                self.charge_mem(rows_charge(&outcome.rows[chunk_start..]))?;
                self.tick_rows(&mut pending, visited)?;
                if let Some(l) = limit_hint {
                    if outcome.rows.len() as u64 >= l {
                        outcome.rows.truncate(l as usize);
                        break 'segments;
                    }
                }
                base = end;
            }
        }
        self.flush_progress(&mut pending)?;
        Ok(outcome)
    }

    // ----------------------------------------------------------------------
    // Joins
    // ----------------------------------------------------------------------

    fn execute_join(
        &self,
        outer_rows: Vec<Vec<Value>>,
        outer_schema: &RowSchema,
        inner: &SourcePlan,
        step: &crate::plan::JoinStep,
        join: JoinPrograms<'_>,
        stats: &mut ScanStats,
    ) -> Result<(Vec<Vec<Value>>, RowSchema), SqlError> {
        let mut out = Vec::new();
        match &step.strategy {
            JoinStrategy::IndexLookup {
                index,
                outer_key,
                inner_column,
            } => {
                let SourceKind::Table { table, .. } = &inner.kind else {
                    return Err(SqlError::Plan(
                        "index-lookup join requires a base table inner side".into(),
                    ));
                };
                let t = self.db.table(table)?;
                let idx = self
                    .db
                    .index(table, index)
                    .ok_or_else(|| SqlError::Plan(format!("index {index} disappeared")))?;
                if !idx.def().key_columns[0].eq_ignore_ascii_case(inner_column) {
                    return Err(SqlError::Plan(format!(
                        "index {index} does not lead with {inner_column}"
                    )));
                }
                let inner_full_schema = heap_schema(self.db, &inner.alias, table)?;
                let combined_schema = outer_schema.join(&inner_full_schema);
                let outer_ctx = self.ctx(outer_schema);
                let inner_ctx = self.ctx(&inner_full_schema);
                let combined_ctx = self.ctx(&combined_schema);
                let key_program = match join.outer_key {
                    Some(p) => RowExpr::Compiled(p),
                    None => RowExpr::Interpreted(outer_key),
                };
                let inner_filter =
                    RowFilter::new(join.inner_filter, inner.pushed_predicate.as_ref());
                let has_inner_filter = inner_filter.is_some();
                let residual = RowFilter::new(join.residual, step.residual.as_ref());
                let has_residual = residual.is_some();
                let entry_bytes = if !idx.is_empty() {
                    (idx.bytes() / idx.len() as u64).max(1)
                } else {
                    1
                };
                let mut pending = 0u64;
                // Combined rows are assembled in a scratch buffer: the outer
                // prefix is written once per probe and only surviving rows
                // are cloned out, so rejected matches cost no allocation.
                let outer_len = outer_schema.len();
                let mut scratch: Vec<Value> = Vec::with_capacity(combined_schema.len());
                for outer_row in &outer_rows {
                    self.check_time()?;
                    // One tick per probe, even when it finds no matches —
                    // otherwise a join full of misses would never observe
                    // cancellation or pacing.
                    self.tick(&mut pending)?;
                    let key = key_program.eval(outer_row, &outer_ctx)?;
                    stats.index_seeks += 1;
                    // Prefix seek: composite indexes (run, camcol, field)
                    // still serve equality probes on their leading column.
                    let matches = idx.seek_prefix(&key);
                    let mut matched = false;
                    let mut primed = false;
                    for (_, entry) in matches {
                        self.tick(&mut pending)?;
                        // Late materialization on the probe side: only the
                        // columns the statement references on this alias are
                        // gathered; the rest stay NULL and are provably
                        // never read (`scan_columns` is the statement-wide
                        // union for the alias).  `gathered_bytes` charges
                        // the same referenced cells either way.
                        let fetched = match inner.scan_columns.as_deref() {
                            Some(cols) => t.get_sparse(entry.row_id, cols),
                            None => t.get(entry.row_id),
                        };
                        let Some(inner_row) = fetched else {
                            continue;
                        };
                        stats.rows_from_index += 1;
                        stats.bytes_from_index += entry_bytes;
                        stats.bytes_scanned +=
                            gathered_bytes(&inner_row, inner.scan_columns.as_deref());
                        if has_inner_filter {
                            stats.predicates_evaluated += 1;
                            if !inner_filter.accepts(&inner_row, &inner_ctx)? {
                                continue;
                            }
                        }
                        if !primed {
                            scratch.clear();
                            scratch.extend(outer_row.iter().cloned());
                            primed = true;
                        }
                        scratch.truncate(outer_len);
                        scratch.extend(inner_row);
                        if has_residual {
                            stats.predicates_evaluated += 1;
                            if !residual.accepts(&scratch, &combined_ctx)? {
                                continue;
                            }
                        }
                        matched = true;
                        self.charge_mem(row_charge(&scratch))?;
                        out.push(scratch.clone());
                    }
                    if !matched && step.kind == JoinKind::Left {
                        let mut combined = outer_row.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, inner_full_schema.len()));
                        self.charge_mem(row_charge(&combined))?;
                        out.push(combined);
                    }
                }
                self.flush_progress(&mut pending)?;
                // The inner side of an index-lookup join keeps its full heap
                // schema (all columns).
                Ok((out, combined_schema))
            }
            JoinStrategy::Hash {
                outer_keys,
                inner_keys,
            } => {
                let inner_scan = ScanPrograms {
                    filter: join.inner_filter,
                    project: None,
                    vectorized: join.vectorized,
                    row_cap: None,
                };
                let (inner_rows, inner_schema) = self.execute_source(inner, inner_scan, stats)?;
                let inner_ctx = self.ctx(&inner_schema);
                let (outer_programs, inner_programs) = match join.hash_keys {
                    Some((o, i)) => (Some(o.as_slice()), Some(i.as_slice())),
                    None => (None, None),
                };
                let build_keys = zip_exprs(inner_programs, inner_keys.iter());
                let probe_keys = zip_exprs(outer_programs, outer_keys.iter());
                // Hashed build side: equal keys hash equally across numeric
                // types (see the `Hash` impl on `Value`), floats key on
                // their total-order bits.
                let mut hash: HashMap<Vec<Value>, Vec<usize>> =
                    HashMap::with_capacity(inner_rows.len());
                for (i, row) in inner_rows.iter().enumerate() {
                    let key: Vec<Value> = build_keys
                        .iter()
                        .map(|k| k.eval(row, &inner_ctx))
                        .collect::<Result<_, _>>()?;
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    // The build table's keys are new memory (the rows
                    // themselves were charged when the inner scan
                    // materialized them).
                    self.charge_mem(row_charge(&key))?;
                    hash.entry(key).or_default().push(i);
                }
                let combined_schema = outer_schema.join(&inner_schema);
                let outer_ctx = self.ctx(outer_schema);
                let combined_ctx = self.ctx(&combined_schema);
                let residual = RowFilter::new(join.residual, step.residual.as_ref());
                let has_residual = residual.is_some();
                let mut pending = 0u64;
                // The probe key is built in a scratch buffer reused across
                // outer rows: lookups borrow it as a slice, so the per-probe
                // `Vec` allocation of the naive loop disappears.  Combined
                // rows use the same trick: the outer prefix is cloned once
                // per matching probe and residual-rejected rows never leave
                // the scratch buffer.
                let mut probe_key: Vec<Value> = Vec::with_capacity(probe_keys.len());
                let outer_len = outer_schema.len();
                let mut scratch: Vec<Value> = Vec::with_capacity(combined_schema.len());
                for outer_row in &outer_rows {
                    self.check_time()?;
                    // One tick per probe, matches or not (see above).
                    self.tick(&mut pending)?;
                    probe_key.clear();
                    for k in &probe_keys {
                        probe_key.push(k.eval(outer_row, &outer_ctx)?);
                    }
                    let mut matched = false;
                    if !probe_key.iter().any(Value::is_null) {
                        if let Some(bucket) = hash.get(probe_key.as_slice()) {
                            scratch.clear();
                            scratch.extend(outer_row.iter().cloned());
                            for &i in bucket {
                                self.tick(&mut pending)?;
                                stats.join_probes += 1;
                                scratch.truncate(outer_len);
                                scratch.extend(inner_rows[i].iter().cloned());
                                if has_residual {
                                    stats.predicates_evaluated += 1;
                                    if !residual.accepts(&scratch, &combined_ctx)? {
                                        continue;
                                    }
                                }
                                matched = true;
                                self.charge_mem(row_charge(&scratch))?;
                                out.push(scratch.clone());
                            }
                        }
                    }
                    if !matched && step.kind == JoinKind::Left {
                        let mut combined = outer_row.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, inner_schema.len()));
                        self.charge_mem(row_charge(&combined))?;
                        out.push(combined);
                    }
                }
                self.flush_progress(&mut pending)?;
                Ok((out, combined_schema))
            }
            JoinStrategy::NestedLoop => {
                let inner_scan = ScanPrograms {
                    filter: join.inner_filter,
                    project: None,
                    vectorized: join.vectorized,
                    row_cap: None,
                };
                let (inner_rows, inner_schema) = self.execute_source(inner, inner_scan, stats)?;
                let combined_schema = outer_schema.join(&inner_schema);
                let ctx = self.ctx(&combined_schema);
                let residual = RowFilter::new(join.residual, step.residual.as_ref());
                let has_residual = residual.is_some();
                let mut pending = 0u64;
                // The cross product dominates this strategy (the spatial
                // rewrite feeds it quadratically many candidate pairs), so
                // pair rows are assembled in a reused scratch buffer: the
                // outer prefix is cloned once per outer row and only pairs
                // that survive the residual are cloned into the output.
                let outer_len = outer_schema.len();
                let mut scratch: Vec<Value> = Vec::with_capacity(combined_schema.len());
                for outer_row in &outer_rows {
                    self.check_time()?;
                    // One tick per outer row so an empty inner side still
                    // observes cancellation and pacing.
                    self.tick(&mut pending)?;
                    let mut matched = false;
                    scratch.clear();
                    scratch.extend(outer_row.iter().cloned());
                    for inner_row in &inner_rows {
                        self.tick(&mut pending)?;
                        stats.join_probes += 1;
                        scratch.truncate(outer_len);
                        scratch.extend(inner_row.iter().cloned());
                        if has_residual {
                            stats.predicates_evaluated += 1;
                            if !residual.accepts(&scratch, &ctx)? {
                                continue;
                            }
                        }
                        matched = true;
                        self.charge_mem(row_charge(&scratch))?;
                        out.push(scratch.clone());
                    }
                    if !matched && step.kind == JoinKind::Left {
                        let mut combined = outer_row.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, inner_schema.len()));
                        self.charge_mem(row_charge(&combined))?;
                        out.push(combined);
                    }
                }
                self.flush_progress(&mut pending)?;
                Ok((out, combined_schema))
            }
        }
    }

    // ----------------------------------------------------------------------
    // Aggregation
    // ----------------------------------------------------------------------

    /// Group rows and evaluate aggregates.  Dispatches to the compiled
    /// variant when the finalizer produced programs for every piece, and to
    /// the interpreter otherwise; both produce groups in ascending key
    /// order.
    #[allow(clippy::type_complexity)]
    fn aggregate(
        &self,
        plan: &SelectPlan,
        schema: &RowSchema,
        rows: Vec<Vec<Value>>,
        programs: Option<&CompiledPrograms>,
    ) -> Result<Vec<(Vec<Value>, Vec<Value>)>, SqlError> {
        if let Some(p) = programs {
            if let (Some(group_by), Some(aggregates), Some(projections)) = (
                p.group_by.as_ref(),
                p.aggregates.as_ref(),
                p.projections.as_ref(),
            ) {
                if plan.having.is_none() || p.having.is_some() {
                    return self.aggregate_compiled(
                        plan,
                        schema,
                        rows,
                        group_by,
                        aggregates,
                        projections,
                        p.having.as_ref(),
                    );
                }
            }
        }
        self.aggregate_interpreted(plan, schema, rows)
    }

    /// Hash-grouped aggregation over compiled programs: the group key, each
    /// aggregate argument, HAVING and the projections run without any name
    /// resolution or per-row key formatting.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn aggregate_compiled(
        &self,
        plan: &SelectPlan,
        schema: &RowSchema,
        rows: Vec<Vec<Value>>,
        group_by: &[CompiledExpr],
        aggregates: &[CompiledAggregate],
        projections: &[CompiledExpr],
        having: Option<&CompiledExpr>,
    ) -> Result<Vec<(Vec<Value>, Vec<Value>)>, SqlError> {
        let ctx = self.ctx(schema);
        let mut groups: HashMap<Vec<Value>, Vec<Vec<Value>>> = HashMap::new();
        for row in rows {
            let key: Vec<Value> = group_by
                .iter()
                .map(|g| g.eval(&row, &ctx))
                .collect::<Result<_, _>>()?;
            // Rows move into the table (already charged); the keys are new.
            self.charge_mem(row_charge(&key))?;
            groups.entry(key).or_default().push(row);
        }
        // A grand aggregate over zero rows still produces one group.
        if groups.is_empty() && plan.group_by.is_empty() {
            groups.insert(Vec::new(), Vec::new());
        }
        // Ascending key order, exactly like the ordered map the interpreter
        // used to group with.
        let mut groups: Vec<(Vec<Value>, Vec<Vec<Value>>)> = groups.into_iter().collect();
        groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::with_capacity(groups.len());
        for (_key, group_rows) in groups {
            let mut agg_values: HashMap<String, Value> = HashMap::new();
            for agg in aggregates {
                let value = if agg.count_star {
                    Value::Int(group_rows.len() as i64)
                } else {
                    let arg = agg
                        .arg
                        .as_ref()
                        // skylint: allow(no-expect) invariant enforced by the plan verifier (count_star XOR arg)
                        .expect("non-count aggregates always compile with an argument");
                    let mut values = Vec::with_capacity(group_rows.len());
                    for row in &group_rows {
                        let v = arg.eval(row, &ctx)?;
                        if !v.is_null() {
                            values.push(v);
                        }
                    }
                    combine_aggregate(&agg.name, &agg.lower, values)?
                };
                agg_values.insert(agg.key.clone(), value);
            }
            let representative = group_rows
                .first()
                .cloned()
                .unwrap_or_else(|| vec![Value::Null; schema.len()]);
            let agg_ctx = EvalContext {
                schema,
                variables: self.variables,
                functions: self.functions,
                aggregates: Some(&agg_values),
            };
            if let Some(h) = having {
                if !h.eval(&representative, &agg_ctx)?.is_truthy() {
                    continue;
                }
            }
            let mut proj = Vec::with_capacity(projections.len());
            for p in projections {
                proj.push(p.eval(&representative, &agg_ctx)?);
            }
            self.charge_mem(row_charge(&representative) + row_charge(&proj))?;
            out.push((representative, proj));
        }
        Ok(out)
    }

    #[allow(clippy::type_complexity)]
    fn aggregate_interpreted(
        &self,
        plan: &SelectPlan,
        schema: &RowSchema,
        rows: Vec<Vec<Value>>,
    ) -> Result<Vec<(Vec<Value>, Vec<Value>)>, SqlError> {
        // Collect aggregate call expressions from projections and HAVING.
        let mut agg_exprs: Vec<Expr> = Vec::new();
        for (expr, _) in &plan.projections {
            collect_aggregates(expr, &mut agg_exprs);
        }
        if let Some(h) = &plan.having {
            collect_aggregates(h, &mut agg_exprs);
        }
        let ctx = self.ctx(schema);
        // Group rows (ascending key order via a final sort).
        let mut groups: HashMap<Vec<Value>, Vec<Vec<Value>>> = HashMap::new();
        for row in rows {
            let key: Vec<Value> = plan
                .group_by
                .iter()
                .map(|g| eval(g, &row, &ctx))
                .collect::<Result<_, _>>()?;
            // Rows move into the table (already charged); the keys are new.
            self.charge_mem(row_charge(&key))?;
            groups.entry(key).or_default().push(row);
        }
        // A grand aggregate over zero rows still produces one group.
        if groups.is_empty() && plan.group_by.is_empty() {
            groups.insert(Vec::new(), Vec::new());
        }
        let mut groups: Vec<(Vec<Value>, Vec<Vec<Value>>)> = groups.into_iter().collect();
        groups.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::with_capacity(groups.len());
        for (_key, group_rows) in groups {
            let mut agg_values: HashMap<String, Value> = HashMap::new();
            for agg in &agg_exprs {
                let Expr::Function { name, args } = agg else {
                    continue;
                };
                let value = self.eval_aggregate(name, args, &group_rows, &ctx)?;
                agg_values.insert(aggregate_key(agg), value);
            }
            let representative = group_rows
                .first()
                .cloned()
                .unwrap_or_else(|| vec![Value::Null; schema.len()]);
            let agg_ctx = EvalContext {
                schema,
                variables: self.variables,
                functions: self.functions,
                aggregates: Some(&agg_values),
            };
            if let Some(h) = &plan.having {
                if !eval(h, &representative, &agg_ctx)?.is_truthy() {
                    continue;
                }
            }
            let mut proj = Vec::with_capacity(plan.projections.len());
            for (expr, _) in &plan.projections {
                proj.push(eval(expr, &representative, &agg_ctx)?);
            }
            self.charge_mem(row_charge(&representative) + row_charge(&proj))?;
            out.push((representative, proj));
        }
        Ok(out)
    }

    fn eval_aggregate(
        &self,
        name: &str,
        args: &[Expr],
        group_rows: &[Vec<Value>],
        ctx: &EvalContext<'_>,
    ) -> Result<Value, SqlError> {
        let lower = name.to_ascii_lowercase();
        if lower == "count" && matches!(args.first(), Some(Expr::Star) | None) {
            return Ok(Value::Int(group_rows.len() as i64));
        }
        let arg = args
            .first()
            .ok_or_else(|| SqlError::Execution(format!("{name}() needs an argument")))?;
        let mut values = Vec::with_capacity(group_rows.len());
        for row in group_rows {
            let v = eval(arg, row, ctx)?;
            if !v.is_null() {
                values.push(v);
            }
        }
        combine_aggregate(name, &lower, values)
    }
}

/// Combine the non-NULL argument values of one group into the aggregate's
/// result.  Shared by the interpreted and compiled aggregation paths.
fn combine_aggregate(name: &str, lower: &str, values: Vec<Value>) -> Result<Value, SqlError> {
    match lower {
        "count" => Ok(Value::Int(values.len() as i64)),
        "min" => Ok(values
            .iter()
            .cloned()
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        "max" => Ok(values
            .iter()
            .cloned()
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null)),
        "sum" | "avg" | "stdev" | "var" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let nums: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
            if nums.len() != values.len() {
                return Err(SqlError::Execution(format!(
                    "{name}() over non-numeric values"
                )));
            }
            let sum: f64 = nums.iter().sum();
            let n = nums.len() as f64;
            match lower {
                "sum" => Ok(Value::Float(sum)),
                "avg" => Ok(Value::Float(sum / n)),
                _ => {
                    let mean = sum / n;
                    let var =
                        nums.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
                    if lower == "var" {
                        Ok(Value::Float(var))
                    } else {
                        Ok(Value::Float(var.sqrt()))
                    }
                }
            }
        }
        other => Err(SqlError::Execution(format!("unknown aggregate {other}"))),
    }
}
