//! Abstract syntax tree for the SkyServer SQL dialect.

use skyserver_storage::{DataType, Value};
use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStatement),
    Insert(InsertStatement),
    Update(UpdateStatement),
    Delete(DeleteStatement),
    CreateTable(CreateTableStatement),
    CreateIndex(CreateIndexStatement),
    CreateView(CreateViewStatement),
    DropTable {
        name: String,
    },
    /// `DECLARE @name type`
    Declare {
        name: String,
        ty: DataType,
    },
    /// `SET @name = expr`
    SetVariable {
        name: String,
        expr: Expr,
    },
}

/// `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    /// `TOP n`
    pub top: Option<u64>,
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    /// `INTO ##temp` target.
    pub into: Option<String>,
    pub from: Vec<FromItem>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr { expr: Expr, alias: Option<String> },
}

/// One entry of the FROM clause (the first has `join = None`).
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub source: TableSource,
    pub alias: Option<String>,
    /// How this item joins with everything to its left (None for the first
    /// item or comma-separated items, which behave like inner joins with the
    /// predicate living in WHERE).
    pub join: Option<JoinKind>,
    /// `ON` condition for explicit joins.
    pub on: Option<Expr>,
}

/// What a FROM item refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// A named table or view (possibly a `##temp`).
    Named(String),
    /// A table-valued function call, e.g. `fGetNearbyObjEq(185, -0.5, 1)`.
    Function { name: String, args: Vec<Expr> },
    /// A derived table `(SELECT ...)`.
    Derived(Box<SelectStatement>),
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub ascending: bool,
}

/// `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStatement {
    pub table: String,
    /// Explicit column list (empty = all columns in order).
    pub columns: Vec<String>,
    pub source: InsertSource,
}

/// Source of inserted rows.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Box<SelectStatement>),
}

/// `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStatement {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub selection: Option<Expr>,
}

/// `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStatement {
    pub table: String,
    pub selection: Option<Expr>,
}

/// `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStatement {
    pub name: String,
    pub columns: Vec<ColumnSpec>,
    pub primary_key: Vec<String>,
}

/// One column of a CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

/// `CREATE [UNIQUE] INDEX name ON table (cols) [INCLUDE (cols)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndexStatement {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub include: Vec<String>,
    pub unique: bool,
}

/// `CREATE VIEW name AS SELECT ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateViewStatement {
    pub name: String,
    pub query: SelectStatement,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified by a table alias.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// `@variable`.
    Variable(String),
    /// `*` (only valid inside `count(*)`).
    Star,
    /// Unary operator.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator.
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Function call: built-ins, aggregates and `dbo.`-prefixed UDFs.
    Function { name: String, args: Vec<Expr> },
    /// `expr BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr IN (a, b, c)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr LIKE pattern`.
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `CASE WHEN cond THEN val ... [ELSE val] END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        else_value: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast { expr: Box<Expr>, ty: DataType },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    BitAnd,
    BitOr,
}

impl BinaryOp {
    /// Is this a comparison operator (useful for sargability analysis)?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// The mirrored comparison (for `literal op column` normalisation).
    pub fn mirror(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => other,
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
        };
        f.write_str(s)
    }
}

impl Expr {
    /// Convenience constructor for unqualified column references.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Convenience constructor for integer literals.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Collect every column reference in the expression (qualifier, name).
    pub fn collect_columns(&self, out: &mut Vec<(Option<String>, String)>) {
        match self {
            Expr::Column { qualifier, name } => out.push((qualifier.clone(), name.clone())),
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::Like { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
            Expr::Case {
                branches,
                else_value,
            } => {
                for (c, v) in branches {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = else_value {
                    e.collect_columns(out);
                }
            }
            Expr::Cast { expr, .. } => expr.collect_columns(out),
            Expr::Literal(_) | Expr::Variable(_) | Expr::Star => {}
        }
    }

    /// Does this expression contain an aggregate function call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args } => {
                is_aggregate_name(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Case {
                branches,
                else_value,
            } => {
                branches
                    .iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_value
                        .as_ref()
                        .map(|e| e.contains_aggregate())
                        .unwrap_or(false)
            }
            Expr::Cast { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// Split an expression into its top-level AND-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } = e
            {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild an expression from conjuncts (None when the list is empty).
    pub fn from_conjuncts(conjuncts: Vec<Expr>) -> Option<Expr> {
        conjuncts.into_iter().reduce(|acc, e| Expr::Binary {
            left: Box::new(acc),
            op: BinaryOp::And,
            right: Box::new(e),
        })
    }
}

/// Aggregate function names recognised by the engine.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "count" | "sum" | "avg" | "min" | "max" | "stdev" | "var"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting_and_rebuilding() {
        let e = Expr::Binary {
            left: Box::new(Expr::Binary {
                left: Box::new(Expr::col("a")),
                op: BinaryOp::Gt,
                right: Box::new(Expr::int(1)),
            }),
            op: BinaryOp::And,
            right: Box::new(Expr::Binary {
                left: Box::new(Expr::col("b")),
                op: BinaryOp::Eq,
                right: Box::new(Expr::int(2)),
            }),
        };
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 2);
        let rebuilt = Expr::from_conjuncts(cs.into_iter().cloned().collect()).unwrap();
        assert_eq!(rebuilt, e);
        assert!(Expr::from_conjuncts(vec![]).is_none());
    }

    #[test]
    fn collect_columns_finds_nested_references() {
        let e = Expr::Function {
            name: "sqrt".into(),
            args: vec![Expr::Binary {
                left: Box::new(Expr::Column {
                    qualifier: Some("r".into()),
                    name: "rowv".into(),
                }),
                op: BinaryOp::Mul,
                right: Box::new(Expr::col("colv")),
            }],
        };
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], (Some("r".into()), "rowv".into()));
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "COUNT".into(),
            args: vec![Expr::Star],
        };
        assert!(agg.contains_aggregate());
        let plain = Expr::Function {
            name: "sqrt".into(),
            args: vec![Expr::col("x")],
        };
        assert!(!plain.contains_aggregate());
        let nested = Expr::Binary {
            left: Box::new(plain),
            op: BinaryOp::Add,
            right: Box::new(agg),
        };
        assert!(nested.contains_aggregate());
    }

    #[test]
    fn mirror_comparisons() {
        assert_eq!(BinaryOp::Lt.mirror(), BinaryOp::Gt);
        assert_eq!(BinaryOp::GtEq.mirror(), BinaryOp::LtEq);
        assert_eq!(BinaryOp::Eq.mirror(), BinaryOp::Eq);
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }
}
