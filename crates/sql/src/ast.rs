//! Abstract syntax tree for the SkyServer SQL dialect.

use skyserver_storage::{DataType, Value};
use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query (possibly with `INTO`).
    Select(SelectStatement),
    /// An `INSERT` statement.
    Insert(InsertStatement),
    /// An `UPDATE` statement.
    Update(UpdateStatement),
    /// A `DELETE` statement.
    Delete(DeleteStatement),
    /// A `CREATE TABLE` statement.
    CreateTable(CreateTableStatement),
    /// A `CREATE [UNIQUE] INDEX` statement.
    CreateIndex(CreateIndexStatement),
    /// A `CREATE VIEW` statement.
    CreateView(CreateViewStatement),
    /// `DROP TABLE name`.
    DropTable {
        /// The table to drop.
        name: String,
    },
    /// `DECLARE @name type`
    Declare {
        /// Variable name (without the `@`).
        name: String,
        /// Declared type.
        ty: DataType,
    },
    /// `SET @name = expr`
    SetVariable {
        /// Variable name (without the `@`).
        name: String,
        /// The value expression.
        expr: Expr,
    },
    /// `EXPLAIN VERIFY <select>`: plan the query and run the static plan
    /// verifier over it, reporting the check summary or the violations
    /// instead of executing.
    ExplainVerify(SelectStatement),
    /// `PUBLISH RELEASE drN`: atomically publish the current database state
    /// as an immutable named release (admin surface only).
    PublishRelease {
        /// The new release's name (`dr1`, `dr2`, ...).
        id: String,
    },
}

/// `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    /// `TOP n`
    pub top: Option<u64>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The select list.
    pub projections: Vec<SelectItem>,
    /// `INTO ##temp` target.
    pub into: Option<String>,
    /// The FROM clause, in join order.
    pub from: Vec<FromItem>,
    /// The WHERE predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
    /// `AS OF drN`: pin the whole statement to a published release
    /// snapshot instead of the live head database.
    pub as_of: Option<String>,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// The `AS` alias, if given.
        alias: Option<String>,
    },
}

/// One entry of the FROM clause (the first has `join = None`).
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// What is being scanned (table, view, TVF or derived table).
    pub source: TableSource,
    /// The `AS` alias, if given.
    pub alias: Option<String>,
    /// How this item joins with everything to its left (None for the first
    /// item or comma-separated items, which behave like inner joins with the
    /// predicate living in WHERE).
    pub join: Option<JoinKind>,
    /// `ON` condition for explicit joins.
    pub on: Option<Expr>,
}

/// What a FROM item refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// A named table or view (possibly a `##temp`).
    Named(String),
    /// A table-valued function call, e.g. `fGetNearbyObjEq(185, -0.5, 1)`.
    Function {
        /// Function name.
        name: String,
        /// Call arguments.
        args: Vec<Expr>,
    },
    /// A derived table `(SELECT ...)`.
    Derived(Box<SelectStatement>),
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
    /// `CROSS JOIN`.
    Cross,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// The sort key (an output alias or any input expression).
    pub expr: Expr,
    /// `ASC` (default) vs `DESC`.
    pub ascending: bool,
}

/// `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStatement {
    /// The target table.
    pub table: String,
    /// Explicit column list (empty = all columns in order).
    pub columns: Vec<String>,
    /// Where the rows come from.
    pub source: InsertSource,
}

/// Source of inserted rows.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (...), (...)` row literals.
    Values(Vec<Vec<Expr>>),
    /// `INSERT ... SELECT`.
    Select(Box<SelectStatement>),
}

/// `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStatement {
    /// The target table.
    pub table: String,
    /// `SET column = expr` pairs.
    pub assignments: Vec<(String, Expr)>,
    /// The WHERE predicate (None updates every row).
    pub selection: Option<Expr>,
}

/// `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStatement {
    /// The target table.
    pub table: String,
    /// The WHERE predicate (None deletes every row).
    pub selection: Option<Expr>,
}

/// `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStatement {
    /// The new table's name.
    pub name: String,
    /// Column definitions.
    pub columns: Vec<ColumnSpec>,
    /// `PRIMARY KEY (...)` columns (empty = none).
    pub primary_key: Vec<String>,
}

/// One column of a CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

/// `CREATE [UNIQUE] INDEX name ON table (cols) [INCLUDE (cols)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndexStatement {
    /// Index name.
    pub name: String,
    /// The indexed table.
    pub table: String,
    /// Key columns, in order.
    pub columns: Vec<String>,
    /// `INCLUDE` (covered, non-key) columns.
    pub include: Vec<String>,
    /// `UNIQUE` index?
    pub unique: bool,
}

/// `CREATE VIEW name AS SELECT ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateViewStatement {
    /// View name.
    pub name: String,
    /// The view body.
    pub query: SelectStatement,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified by a table alias.
    Column {
        /// The table alias, when written `alias.column`.
        qualifier: Option<String>,
        /// The column name.
        name: String,
    },
    /// `@variable`.
    Variable(String),
    /// `*` (only valid inside `count(*)`).
    Star,
    /// Unary operator.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operator.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call: built-ins, aggregates and `dbo.`-prefixed UDFs.
    Function {
        /// Function name as written.
        name: String,
        /// Call arguments.
        args: Vec<Expr>,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
    /// `expr IN (a, b, c)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The list members.
        list: Vec<Expr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// `expr LIKE pattern`.
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern (`%`/`_` wildcards).
        pattern: Box<Expr>,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// `CASE WHEN cond THEN val ... [ELSE val] END`.
    Case {
        /// `(condition, value)` branches, in order.
        branches: Vec<(Expr, Expr)>,
        /// The `ELSE` value, if given.
        else_value: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// The cast operand.
        expr: Box<Expr>,
        /// The target type.
        ty: DataType,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation (`-x`).
    Neg,
    /// Logical negation (`NOT x`).
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the operators themselves
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    BitAnd,
    BitOr,
}

impl BinaryOp {
    /// Is this a comparison operator (useful for sargability analysis)?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// The mirrored comparison (for `literal op column` normalisation).
    pub fn mirror(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => other,
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitOr => "|",
        };
        f.write_str(s)
    }
}

impl Expr {
    /// Convenience constructor for unqualified column references.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Convenience constructor for integer literals.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Collect every column reference in the expression (qualifier, name).
    pub fn collect_columns(&self, out: &mut Vec<(Option<String>, String)>) {
        match self {
            Expr::Column { qualifier, name } => out.push((qualifier.clone(), name.clone())),
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::Like { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
            Expr::Case {
                branches,
                else_value,
            } => {
                for (c, v) in branches {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = else_value {
                    e.collect_columns(out);
                }
            }
            Expr::Cast { expr, .. } => expr.collect_columns(out),
            Expr::Literal(_) | Expr::Variable(_) | Expr::Star => {}
        }
    }

    /// Does this expression contain an aggregate function call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args } => {
                is_aggregate_name(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Case {
                branches,
                else_value,
            } => {
                branches
                    .iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_value
                        .as_ref()
                        .map(|e| e.contains_aggregate())
                        .unwrap_or(false)
            }
            Expr::Cast { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// Split an expression into its top-level AND-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } = e
            {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild an expression from conjuncts (None when the list is empty).
    pub fn from_conjuncts(conjuncts: Vec<Expr>) -> Option<Expr> {
        conjuncts.into_iter().reduce(|acc, e| Expr::Binary {
            left: Box::new(acc),
            op: BinaryOp::And,
            right: Box::new(e),
        })
    }
}

/// Aggregate function names recognised by the engine.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "count" | "sum" | "avg" | "min" | "max" | "stdev" | "var"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting_and_rebuilding() {
        let e = Expr::Binary {
            left: Box::new(Expr::Binary {
                left: Box::new(Expr::col("a")),
                op: BinaryOp::Gt,
                right: Box::new(Expr::int(1)),
            }),
            op: BinaryOp::And,
            right: Box::new(Expr::Binary {
                left: Box::new(Expr::col("b")),
                op: BinaryOp::Eq,
                right: Box::new(Expr::int(2)),
            }),
        };
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 2);
        let rebuilt = Expr::from_conjuncts(cs.into_iter().cloned().collect()).unwrap();
        assert_eq!(rebuilt, e);
        assert!(Expr::from_conjuncts(vec![]).is_none());
    }

    #[test]
    fn collect_columns_finds_nested_references() {
        let e = Expr::Function {
            name: "sqrt".into(),
            args: vec![Expr::Binary {
                left: Box::new(Expr::Column {
                    qualifier: Some("r".into()),
                    name: "rowv".into(),
                }),
                op: BinaryOp::Mul,
                right: Box::new(Expr::col("colv")),
            }],
        };
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], (Some("r".into()), "rowv".into()));
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "COUNT".into(),
            args: vec![Expr::Star],
        };
        assert!(agg.contains_aggregate());
        let plain = Expr::Function {
            name: "sqrt".into(),
            args: vec![Expr::col("x")],
        };
        assert!(!plain.contains_aggregate());
        let nested = Expr::Binary {
            left: Box::new(plain),
            op: BinaryOp::Add,
            right: Box::new(agg),
        };
        assert!(nested.contains_aggregate());
    }

    #[test]
    fn mirror_comparisons() {
        assert_eq!(BinaryOp::Lt.mirror(), BinaryOp::Gt);
        assert_eq!(BinaryOp::GtEq.mirror(), BinaryOp::LtEq);
        assert_eq!(BinaryOp::Eq.mirror(), BinaryOp::Eq);
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }
}
