//! Cooperative query monitoring: cancellation, progress and pacing.
//!
//! The public SkyServer had two defences against expensive ad-hoc SQL: the
//! interactive limits (1,000 rows / 30 seconds, §4) and — operationally —
//! a batch tier where long scans run *outside* the interactive pool
//! (CasJobs).  Both need a way to observe and stop a query that is already
//! running.  A [`QueryMonitor`] is that hook: the executor checks it at
//! row-batch granularity (every [`MONITOR_BATCH`] rows or probes), so a
//! running scan can
//!
//! * be **cancelled** mid-flight ([`QueryMonitor::cancel`] makes the
//!   executor return [`crate::SqlError::Cancelled`] at the next batch
//!   boundary),
//! * report **progress** ([`QueryMonitor::rows_processed`] counts rows
//!   scanned and join probes, the job tier's progress bar), and
//! * be **paced** ([`QueryMonitor::set_pace`] inserts a short sleep per
//!   batch, so a background batch scan yields CPU to interactive queries
//!   instead of competing with them at full speed).
//!
//! The monitor is all atomics: one instance is shared between the executing
//! thread(s) — including parallel-scan workers — and any number of
//! observers, with no locks on the hot path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many rows/probes the executor processes between monitor checks.
///
/// Small enough that cancellation lands within milliseconds on any
/// realistic scan, large enough that the per-row cost is one local counter
/// increment.
pub const MONITOR_BATCH: u64 = 256;

/// A shared cancellation/progress/pacing handle for one running query.
///
/// Create one per query, hand a reference to the executor (via
/// [`crate::SqlEngine::execute_read_with`]) and keep a clone of the
/// surrounding `Arc` to observe or cancel from other threads.
///
/// Beyond cancel/progress/pace, the monitor carries the two resource
/// signals the governor propagates into a running query:
///
/// * a **deadline** ([`QueryMonitor::set_deadline`]) checked at every
///   [`MONITOR_BATCH`] tick — the web tier derives one per request so
///   interactive, API and batch paths all share a single expiry mechanism;
/// * a **memory gauge** ([`QueryMonitor::bytes_in_use`] /
///   [`QueryMonitor::peak_bytes`]) fed by the executor's accumulation
///   points, so an observer can see how much a query is holding.
#[derive(Debug)]
pub struct QueryMonitor {
    cancelled: AtomicBool,
    rows_processed: AtomicU64,
    pace_micros: AtomicU64,
    bytes_in_use: AtomicU64,
    peak_bytes: AtomicU64,
    /// Micros from `created` to the deadline; 0 = no deadline set.
    deadline_at_micros: AtomicU64,
    created: Instant,
}

impl Default for QueryMonitor {
    fn default() -> QueryMonitor {
        QueryMonitor::new()
    }
}

impl QueryMonitor {
    /// A fresh monitor: not cancelled, zero progress, no pacing, no
    /// deadline, empty memory gauge.
    pub fn new() -> QueryMonitor {
        QueryMonitor {
            cancelled: AtomicBool::new(false),
            rows_processed: AtomicU64::new(0),
            pace_micros: AtomicU64::new(0),
            bytes_in_use: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
            deadline_at_micros: AtomicU64::new(0),
            created: Instant::now(),
        }
    }

    /// Ask the running query to stop.  The executor notices at the next
    /// row-batch boundary and returns [`crate::SqlError::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`QueryMonitor::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Rows scanned plus join probes processed so far — the progress
    /// number a job status page shows.
    pub fn rows_processed(&self) -> u64 {
        self.rows_processed.load(Ordering::Relaxed)
    }

    /// Record `n` more processed rows (called by the executor).
    pub fn add_rows(&self, n: u64) {
        self.rows_processed.fetch_add(n, Ordering::Relaxed);
    }

    /// Throttle the query: sleep this long after every [`MONITOR_BATCH`]
    /// rows.  Zero (the default) disables pacing.  The batch tier uses
    /// this so background scans cede CPU to interactive traffic.
    pub fn set_pace(&self, pace: Duration) {
        self.pace_micros
            .store(pace.as_micros() as u64, Ordering::Relaxed);
    }

    /// The current pacing sleep (zero = none).
    pub fn pace(&self) -> Duration {
        Duration::from_micros(self.pace_micros.load(Ordering::Relaxed))
    }

    /// Set an absolute deadline `budget` from now.  The executor checks it
    /// at every [`MONITOR_BATCH`] tick and raises the wall-clock limit
    /// error ([`crate::SqlError::LimitExceeded`]) once it passes.  A zero
    /// budget expires immediately; calling again moves the deadline.
    pub fn set_deadline(&self, budget: Duration) {
        // Store micros-from-created; saturate at 1 so "deadline at the
        // creation instant" is still distinguishable from "none".
        let at = self
            .created
            .elapsed()
            .saturating_add(budget)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        self.deadline_at_micros.store(at.max(1), Ordering::Relaxed);
    }

    /// Remove the deadline (queries then run on [`crate::QueryLimits`]'
    /// `max_seconds` alone, if set).
    pub fn clear_deadline(&self) {
        self.deadline_at_micros.store(0, Ordering::Relaxed);
    }

    /// Has a deadline been set and already passed?
    pub fn deadline_expired(&self) -> bool {
        let at = self.deadline_at_micros.load(Ordering::Relaxed);
        at != 0 && self.created.elapsed().as_micros() as u64 >= at
    }

    /// Time remaining until the deadline (`None` when no deadline is set;
    /// zero once expired).
    pub fn deadline_remaining(&self) -> Option<Duration> {
        let at = self.deadline_at_micros.load(Ordering::Relaxed);
        if at == 0 {
            return None;
        }
        let elapsed = self.created.elapsed().as_micros() as u64;
        Some(Duration::from_micros(at.saturating_sub(elapsed)))
    }

    /// Charge `n` bytes to the query's memory gauge (called by the
    /// executor's accumulation points) and track the high-water mark.
    pub fn charge_bytes(&self, n: u64) {
        let now = self.bytes_in_use.fetch_add(n, Ordering::Relaxed) + n;
        self.peak_bytes.fetch_max(now, Ordering::Relaxed);
    }

    /// Release `n` previously charged bytes (end of query, or a buffer
    /// handed off/dropped).
    pub fn release_bytes(&self, n: u64) {
        // Saturating: a release that races a reset must not wrap the gauge.
        let _ = self
            .bytes_in_use
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Bytes the query is holding right now across its accumulation
    /// points.
    pub fn bytes_in_use(&self) -> u64 {
        self.bytes_in_use.load(Ordering::Relaxed)
    }

    /// The high-water mark of [`QueryMonitor::bytes_in_use`] over the
    /// query's lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_starts_clean_and_accumulates() {
        let m = QueryMonitor::new();
        assert!(!m.is_cancelled());
        assert_eq!(m.rows_processed(), 0);
        assert_eq!(m.pace(), Duration::ZERO);
        m.add_rows(100);
        m.add_rows(56);
        assert_eq!(m.rows_processed(), 156);
        m.cancel();
        assert!(m.is_cancelled());
    }

    #[test]
    fn pace_round_trips() {
        let m = QueryMonitor::new();
        m.set_pace(Duration::from_micros(750));
        assert_eq!(m.pace(), Duration::from_micros(750));
        m.set_pace(Duration::ZERO);
        assert_eq!(m.pace(), Duration::ZERO);
    }

    #[test]
    fn monitor_is_shareable_across_threads() {
        let m = std::sync::Arc::new(QueryMonitor::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                scope.spawn(move || m.add_rows(1000));
            }
        });
        assert_eq!(m.rows_processed(), 4000);
    }

    #[test]
    fn deadline_expires_and_clears() {
        let m = QueryMonitor::new();
        assert!(!m.deadline_expired());
        assert!(m.deadline_remaining().is_none());
        m.set_deadline(Duration::from_secs(3600));
        assert!(!m.deadline_expired());
        assert!(m.deadline_remaining().unwrap() > Duration::from_secs(3000));
        m.set_deadline(Duration::ZERO);
        assert!(m.deadline_expired());
        assert_eq!(m.deadline_remaining(), Some(Duration::ZERO));
        m.clear_deadline();
        assert!(!m.deadline_expired());
    }

    #[test]
    fn memory_gauge_tracks_peak_and_saturates() {
        let m = QueryMonitor::new();
        m.charge_bytes(1000);
        m.charge_bytes(500);
        assert_eq!(m.bytes_in_use(), 1500);
        assert_eq!(m.peak_bytes(), 1500);
        m.release_bytes(1200);
        assert_eq!(m.bytes_in_use(), 300);
        assert_eq!(m.peak_bytes(), 1500, "peak survives releases");
        m.release_bytes(10_000);
        assert_eq!(m.bytes_in_use(), 0, "release saturates at zero");
    }
}
