//! Cooperative query monitoring: cancellation, progress and pacing.
//!
//! The public SkyServer had two defences against expensive ad-hoc SQL: the
//! interactive limits (1,000 rows / 30 seconds, §4) and — operationally —
//! a batch tier where long scans run *outside* the interactive pool
//! (CasJobs).  Both need a way to observe and stop a query that is already
//! running.  A [`QueryMonitor`] is that hook: the executor checks it at
//! row-batch granularity (every [`MONITOR_BATCH`] rows or probes), so a
//! running scan can
//!
//! * be **cancelled** mid-flight ([`QueryMonitor::cancel`] makes the
//!   executor return [`crate::SqlError::Cancelled`] at the next batch
//!   boundary),
//! * report **progress** ([`QueryMonitor::rows_processed`] counts rows
//!   scanned and join probes, the job tier's progress bar), and
//! * be **paced** ([`QueryMonitor::set_pace`] inserts a short sleep per
//!   batch, so a background batch scan yields CPU to interactive queries
//!   instead of competing with them at full speed).
//!
//! The monitor is all atomics: one instance is shared between the executing
//! thread(s) — including parallel-scan workers — and any number of
//! observers, with no locks on the hot path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// How many rows/probes the executor processes between monitor checks.
///
/// Small enough that cancellation lands within milliseconds on any
/// realistic scan, large enough that the per-row cost is one local counter
/// increment.
pub const MONITOR_BATCH: u64 = 256;

/// A shared cancellation/progress/pacing handle for one running query.
///
/// Create one per query, hand a reference to the executor (via
/// [`crate::SqlEngine::execute_read_with`]) and keep a clone of the
/// surrounding `Arc` to observe or cancel from other threads.
#[derive(Debug, Default)]
pub struct QueryMonitor {
    cancelled: AtomicBool,
    rows_processed: AtomicU64,
    pace_micros: AtomicU64,
}

impl QueryMonitor {
    /// A fresh monitor: not cancelled, zero progress, no pacing.
    pub fn new() -> QueryMonitor {
        QueryMonitor::default()
    }

    /// Ask the running query to stop.  The executor notices at the next
    /// row-batch boundary and returns [`crate::SqlError::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`QueryMonitor::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Rows scanned plus join probes processed so far — the progress
    /// number a job status page shows.
    pub fn rows_processed(&self) -> u64 {
        self.rows_processed.load(Ordering::Relaxed)
    }

    /// Record `n` more processed rows (called by the executor).
    pub fn add_rows(&self, n: u64) {
        self.rows_processed.fetch_add(n, Ordering::Relaxed);
    }

    /// Throttle the query: sleep this long after every [`MONITOR_BATCH`]
    /// rows.  Zero (the default) disables pacing.  The batch tier uses
    /// this so background scans cede CPU to interactive traffic.
    pub fn set_pace(&self, pace: Duration) {
        self.pace_micros
            .store(pace.as_micros() as u64, Ordering::Relaxed);
    }

    /// The current pacing sleep (zero = none).
    pub fn pace(&self) -> Duration {
        Duration::from_micros(self.pace_micros.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_starts_clean_and_accumulates() {
        let m = QueryMonitor::new();
        assert!(!m.is_cancelled());
        assert_eq!(m.rows_processed(), 0);
        assert_eq!(m.pace(), Duration::ZERO);
        m.add_rows(100);
        m.add_rows(56);
        assert_eq!(m.rows_processed(), 156);
        m.cancel();
        assert!(m.is_cancelled());
    }

    #[test]
    fn pace_round_trips() {
        let m = QueryMonitor::new();
        m.set_pace(Duration::from_micros(750));
        assert_eq!(m.pace(), Duration::from_micros(750));
        m.set_pace(Duration::ZERO);
        assert_eq!(m.pace(), Duration::ZERO);
    }

    #[test]
    fn monitor_is_shareable_across_threads() {
        let m = std::sync::Arc::new(QueryMonitor::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                scope.spawn(move || m.add_rows(1000));
            }
        });
        assert_eq!(m.rows_processed(), 4000);
    }
}
