//! Post-finalization plan annotation: zone-map constraints and scan-column
//! sets.
//!
//! Runs unconditionally after `super::finalize` — before (and independent
//! of) expression-program compilation — so the interpreted and compiled
//! executors prune segments and account bytes *identically* and the
//! stats-equivalence tests stay meaningful.
//!
//! Two annotations are produced per base-table source:
//!
//! * **Zone constraints** ([`ZoneConstraint`]): value intervals the pushed
//!   predicate implies for individual columns.  Heap scans compare them
//!   against the per-segment min/max zone maps the columnar storage layer
//!   maintains and skip whole segments without touching a row.
//! * **Scan columns**: the set of storage ordinals the query references on
//!   the source anywhere in the plan.  Byte accounting charges only those
//!   columns — the honest counterpart of late materialization.
//!
//! # Soundness of zone pruning
//!
//! Constraints are extracted only when **every** conjunct of the pushed
//! predicate is *total*: its evaluation can never raise an execution error
//! (no arithmetic, casts, functions or variables).  Under that condition a
//! segment may be skipped when any constraint's interval is disjoint from
//! the column's `[zone_min, zone_max]`:
//!
//! * a live row whose (non-NULL) constrained column lies outside the
//!   interval makes that conjunct FALSE, so the AND rejects the row;
//! * a NULL column value makes the conjunct NULL, and a NULL conjunct makes
//!   the whole AND non-TRUE — rejected as well;
//! * totality guarantees no conjunct can error, so skipping rows cannot
//!   suppress an error the row-at-a-time path would have reported.
//!
//! The interval comparison uses [`Value::total_cmp`] — the same ordering
//! `=`, `<`, `BETWEEN` etc. are defined with — so "outside the interval"
//! and "conjunct is FALSE/NULL" agree even across Int/Float mixes.  LIKE
//! conjuncts are total (they never error) but contribute no interval: the
//! engine's LIKE is case-insensitive while string zones order byte-wise.

use crate::ast::{BinaryOp, Expr};
use crate::plan::{SelectPlan, SourceKind, ZoneConstraint};
use skyserver_storage::{DataType, Database, TableSchema, Value};
use std::cmp::Ordering;
use std::collections::BTreeSet;

/// Annotate every base-table source of `plan` with zone constraints and
/// scan columns.  Derived sub-plans were annotated by their own
/// `plan_select` run and are left untouched.
pub fn annotate(plan: &mut SelectPlan, db: &Database) {
    // Collect every column reference in the plan once (the scan-column
    // union is per-alias, over the whole statement).
    let mut refs: Vec<(Option<String>, String)> = Vec::new();
    collect_plan_columns(plan, &mut refs);

    for source in &mut plan.sources {
        let SourceKind::Table { table, .. } = &source.kind else {
            continue;
        };
        let Ok(t) = db.table(table) else { continue };
        let schema = t.schema().clone();
        source.scan_columns = Some(scan_columns(&refs, &source.alias, &schema));
        if let Some(pred) = &source.pushed_predicate {
            source.zone_constraints = zone_constraints(pred, &source.alias, &schema);
        }
    }
}

/// Union of storage ordinals referenced on `alias`, sorted.  Unqualified
/// names are charged to every source that has such a column (conservative
/// over-count; identical in both execution modes).
fn scan_columns(
    refs: &[(Option<String>, String)],
    alias: &str,
    schema: &TableSchema,
) -> Vec<usize> {
    let mut out = BTreeSet::new();
    for (qualifier, name) in refs {
        let ours = match qualifier {
            Some(q) => q.eq_ignore_ascii_case(alias),
            None => true,
        };
        if !ours {
            continue;
        }
        if let Some(ordinal) = schema.column_index(name) {
            out.insert(ordinal);
        }
    }
    out.into_iter().collect()
}

/// Every column reference in every expression of the plan (excluding
/// derived sub-plans, which reference their own aliases).
fn collect_plan_columns(plan: &SelectPlan, out: &mut Vec<(Option<String>, String)>) {
    for source in &plan.sources {
        if let Some(p) = &source.pushed_predicate {
            p.collect_columns(out);
        }
        if let SourceKind::TableFunction { args, .. } = &source.kind {
            for a in args {
                a.collect_columns(out);
            }
        }
    }
    for step in &plan.joins {
        match &step.strategy {
            crate::plan::JoinStrategy::IndexLookup { outer_key, .. } => {
                outer_key.collect_columns(out);
            }
            crate::plan::JoinStrategy::Hash {
                outer_keys,
                inner_keys,
            } => {
                for k in outer_keys.iter().chain(inner_keys) {
                    k.collect_columns(out);
                }
            }
            crate::plan::JoinStrategy::NestedLoop => {}
        }
        if let Some(r) = &step.residual {
            r.collect_columns(out);
        }
    }
    if let Some(r) = &plan.residual {
        r.collect_columns(out);
    }
    for (e, _) in &plan.projections {
        e.collect_columns(out);
    }
    for g in &plan.group_by {
        g.collect_columns(out);
    }
    if let Some(h) = &plan.having {
        h.collect_columns(out);
    }
    for o in &plan.order_by {
        o.expr.collect_columns(out);
    }
}

/// Extract zone constraints from a pushed predicate, or nothing when any
/// conjunct is non-total.
pub(crate) fn zone_constraints(
    pred: &Expr,
    alias: &str,
    schema: &TableSchema,
) -> Vec<ZoneConstraint> {
    let conjuncts = pred.conjuncts();
    if !conjuncts.iter().all(|c| is_total(c, alias, schema)) {
        return Vec::new();
    }
    let mut out: Vec<ZoneConstraint> = Vec::new();
    for c in &conjuncts {
        if let Some(constraint) = extract(c, alias, schema) {
            match out.iter_mut().find(|z| z.ordinal == constraint.ordinal) {
                Some(existing) => intersect(existing, constraint),
                None => out.push(constraint),
            }
        }
    }
    out
}

/// Tighten `into` with a second interval on the same column.
fn intersect(into: &mut ZoneConstraint, other: ZoneConstraint) {
    into.low = stricter(into.low.take(), other.low, Ordering::Greater);
    into.high = stricter(into.high.take(), other.high, Ordering::Less);
}

fn stricter(
    a: Option<(Value, bool)>,
    b: Option<(Value, bool)>,
    prefer: Ordering,
) -> Option<(Value, bool)> {
    match (a, b) {
        (Some((av, ai)), Some((bv, bi))) => match av.total_cmp(&bv) {
            o if o == prefer => Some((av, ai)),
            Ordering::Equal => Some((av, ai && bi)),
            _ => Some((bv, bi)),
        },
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

/// A literal constant, looking through arithmetic negation of numerics.
fn const_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Unary {
            op: crate::ast::UnaryOp::Neg,
            expr,
        } => match const_value(expr)? {
            Value::Int(i) => Some(Value::Int(i.wrapping_neg())),
            Value::Float(f) => Some(Value::Float(-f)),
            Value::Null => Some(Value::Null),
            _ => None,
        },
        _ => None,
    }
}

/// A bare reference to one of this source's columns; returns its storage
/// ordinal.
fn source_column(e: &Expr, alias: &str, schema: &TableSchema) -> Option<usize> {
    let Expr::Column { qualifier, name } = e else {
        return None;
    };
    if let Some(q) = qualifier {
        if !q.eq_ignore_ascii_case(alias) {
            return None;
        }
    }
    schema.column_index(name)
}

/// `col & mask` / `col | mask` over a numeric/bool column — total because
/// `as_i64` cannot fail on those types and NULL short-circuits first.
fn is_flags_expr(e: &Expr, alias: &str, schema: &TableSchema) -> bool {
    let Expr::Binary { left, op, right } = e else {
        return false;
    };
    if !matches!(op, BinaryOp::BitAnd | BinaryOp::BitOr) {
        return false;
    }
    let (col, konst) = match (
        source_column(left, alias, schema),
        source_column(right, alias, schema),
    ) {
        (Some(c), None) => (c, right),
        (None, Some(c)) => (c, left),
        _ => return false,
    };
    let numeric_col = matches!(
        schema.columns()[col].ty,
        DataType::Int | DataType::Float | DataType::Bool
    );
    let int_const = matches!(
        const_value(konst),
        Some(Value::Int(_) | Value::Float(_) | Value::Bool(_) | Value::Null)
    );
    numeric_col && int_const
}

/// An operand whose evaluation can never error: a constant, one of this
/// source's columns, or the flags idiom.
fn total_operand(e: &Expr, alias: &str, schema: &TableSchema) -> bool {
    const_value(e).is_some()
        || source_column(e, alias, schema).is_some()
        || is_flags_expr(e, alias, schema)
}

/// Can this conjunct's evaluation ever raise an execution error?
pub(crate) fn is_total(e: &Expr, alias: &str, schema: &TableSchema) -> bool {
    match e {
        Expr::Binary { left, op, right } if op.is_comparison() => {
            total_operand(left, alias, schema) && total_operand(right, alias, schema)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            total_operand(expr, alias, schema)
                && const_value(low).is_some()
                && const_value(high).is_some()
        }
        Expr::InList { expr, list, .. } => {
            total_operand(expr, alias, schema) && list.iter().all(|i| const_value(i).is_some())
        }
        Expr::IsNull { expr, .. } => total_operand(expr, alias, schema),
        Expr::Like { expr, pattern, .. } => {
            total_operand(expr, alias, schema)
                && matches!(const_value(pattern), Some(Value::Str(_)))
        }
        _ => const_value(e).is_some(),
    }
}

/// The interval one (total) conjunct implies, if any.
fn extract(e: &Expr, alias: &str, schema: &TableSchema) -> Option<ZoneConstraint> {
    let make = |ordinal: usize, low, high| {
        Some(ZoneConstraint {
            ordinal,
            column: schema.columns()[ordinal].name.clone(),
            low,
            high,
        })
    };
    match e {
        Expr::Binary { left, op, right } if op.is_comparison() => {
            // Normalize to `col op const`.
            let (ordinal, op, v) = match (source_column(left, alias, schema), const_value(right)) {
                (Some(c), Some(v)) => (c, *op, v),
                _ => match (const_value(left), source_column(right, alias, schema)) {
                    (Some(v), Some(c)) => (c, op.mirror(), v),
                    _ => return None,
                },
            };
            if v.is_null() {
                return None;
            }
            match op {
                BinaryOp::Eq => make(ordinal, Some((v.clone(), true)), Some((v, true))),
                BinaryOp::Lt => make(ordinal, None, Some((v, false))),
                BinaryOp::LtEq => make(ordinal, None, Some((v, true))),
                BinaryOp::Gt => make(ordinal, Some((v, false)), None),
                BinaryOp::GtEq => make(ordinal, Some((v, true)), None),
                _ => None,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let ordinal = source_column(expr, alias, schema)?;
            let lo = const_value(low)?;
            let hi = const_value(high)?;
            if lo.is_null() || hi.is_null() {
                return None;
            }
            make(ordinal, Some((lo, true)), Some((hi, true)))
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let ordinal = source_column(expr, alias, schema)?;
            let values: Vec<Value> = list.iter().filter_map(const_value).collect();
            if values.len() != list.len() || values.iter().any(Value::is_null) || values.is_empty()
            {
                return None;
            }
            let lo = values
                .iter()
                .min_by(|a, b| a.total_cmp(b))
                .cloned()
                .expect("non-empty");
            let hi = values
                .iter()
                .max_by(|a, b| a.total_cmp(b))
                .cloned()
                .expect("non-empty");
            make(ordinal, Some((lo, true)), Some((hi, true)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver_storage::ColumnDef;

    fn schema() -> TableSchema {
        TableSchema::new(vec![
            ColumnDef::new("objID", DataType::Int),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("flags", DataType::Int),
        ])
    }

    fn parse_where(sql: &str) -> Expr {
        let stmt = crate::parser::parse_select(&format!("select 1 from t where {sql}")).unwrap();
        stmt.selection.unwrap()
    }

    fn constraints(sql: &str) -> Vec<ZoneConstraint> {
        zone_constraints(&parse_where(sql), "t", &schema())
    }

    #[test]
    fn range_conjuncts_intersect() {
        let z = constraints("ra >= 180 and ra < 190 and ra > 181");
        assert_eq!(z.len(), 1);
        assert_eq!(z[0].column, "ra");
        assert_eq!(z[0].low, Some((Value::Int(181), false)));
        assert_eq!(z[0].high, Some((Value::Int(190), false)));
    }

    #[test]
    fn equality_and_between_and_in() {
        let z = constraints("objID = 7");
        assert_eq!(z[0].low, Some((Value::Int(7), true)));
        assert_eq!(z[0].high, Some((Value::Int(7), true)));

        let z = constraints("ra between 1 and 2");
        assert_eq!(z[0].low, Some((Value::Int(1), true)));
        assert_eq!(z[0].high, Some((Value::Int(2), true)));

        let z = constraints("objID in (5, 3, 9)");
        assert_eq!(z[0].low, Some((Value::Int(3), true)));
        assert_eq!(z[0].high, Some((Value::Int(9), true)));
    }

    #[test]
    fn non_total_conjunct_blocks_everything() {
        // sqrt() may error on unexpected input; one non-total conjunct
        // disables extraction for the whole predicate.
        assert!(constraints("ra > 180 and sqrt(ra) < 14").is_empty());
        // Variables are unknown at plan time.
        assert!(constraints("ra > 180 and flags = @saturated").is_empty());
        // Arithmetic can divide by zero.
        assert!(constraints("ra > 180 and objID / 2 = 1").is_empty());
    }

    #[test]
    fn total_companions_do_not_block() {
        let z = constraints("ra > 180 and (flags & 64) = 0 and name like 'NGC%'");
        assert_eq!(z.len(), 1);
        assert_eq!(z[0].column, "ra");
    }

    #[test]
    fn zone_overlap_logic() {
        let z = &constraints("ra >= 10 and ra < 20")[0];
        let v = |i: i64| Value::Int(i);
        assert!(z.zone_overlaps(Some(&v(0)), Some(&v(15))));
        assert!(z.zone_overlaps(Some(&v(15)), Some(&v(100))));
        assert!(!z.zone_overlaps(Some(&v(0)), Some(&v(9))));
        // Exclusive upper bound: a segment whose whole zone is [20, 30]
        // cannot contain ra < 20.
        assert!(!z.zone_overlaps(Some(&v(20)), Some(&v(30))));
        // Inclusive lower bound: zone [5, 10] still qualifies.
        assert!(z.zone_overlaps(Some(&v(5)), Some(&v(10))));
        // All-NULL column: no zone, nothing to satisfy a bound.
        assert!(!z.zone_overlaps(None, None));
    }

    #[test]
    fn negated_shapes_are_total_but_unbounded() {
        for sql in [
            "objID not in (1, 2)",
            "ra not between 1 and 2",
            "objID <> 5",
            "name is not null",
        ] {
            let pred = parse_where(sql);
            assert!(is_total(&pred, "t", &schema()), "{sql}");
            assert!(constraints(sql).is_empty(), "{sql}");
        }
    }
}
