//! Parallel-scan fallback — the Figure 11 plan shape.  When a predicate is
//! neither sargable nor covered, the paper's answer is brute force: "a
//! parallel sequential scan" of the heap.  This rule upgrades heap scans of
//! large tables to an explicit parallel scan whose worker fan-out the
//! executor honours, so `EXPLAIN` shows the choice instead of it being a
//! hidden runtime heuristic.

use super::RewriteRule;
use crate::error::SqlError;
use crate::plan::{AccessPath, SourceKind};
use crate::planner::binder::{LogicalPlan, PlanContext};

/// The `parallel_scan_fallback` rule: large unindexed heap scans fan out
/// over worker threads (the Figure 11 brute-force path).
pub struct ParallelScanFallback;

/// Upper bound on scan fan-out (matches the executor's historical cap).
const MAX_SCAN_WORKERS: usize = 8;

impl RewriteRule for ParallelScanFallback {
    fn name(&self) -> &'static str {
        "parallel_scan_fallback"
    }

    fn apply(&self, plan: &mut LogicalPlan, ctx: &PlanContext<'_>) -> Result<bool, SqlError> {
        // The plan *requests* the maximum fan-out; the executor clamps it to
        // the cores actually present at run time.  A fixed request keeps
        // plans and EXPLAIN output identical across machines (snapshots
        // would otherwise differ between a laptop and CI).
        let workers = MAX_SCAN_WORKERS;
        let mut fired = false;
        for source in &mut plan.sources {
            let SourceKind::Table { table, path } = &mut source.kind else {
                continue;
            };
            if *path != AccessPath::HeapScan {
                continue;
            }
            let t = ctx.db.table(table)?;
            if t.row_count() >= ctx.parallel_scan_threshold {
                *path = AccessPath::ParallelHeapScan { workers };
                fired = true;
            }
        }
        Ok(fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::binder::PlanContext;
    use crate::planner::rules::testkit::{bind_only, registry, test_db};

    fn low_threshold_ctx<'a>(
        db: &'a skyserver_storage::Database,
        funcs: &'a crate::functions::FunctionRegistry,
    ) -> PlanContext<'a> {
        PlanContext {
            db,
            functions: funcs,
            parallel_scan_threshold: 5,
            cost_based_ordering: true,
        }
    }

    #[test]
    fn big_table_heap_scan_goes_parallel() {
        let db = test_db(); // 10 rows > threshold 5
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select * from photoObj where ra + dec > 100");
        assert!(ParallelScanFallback
            .apply(&mut plan, &low_threshold_ctx(&db, &funcs))
            .unwrap());
        match &plan.sources[0].kind {
            SourceKind::Table { path, .. } => {
                assert!(matches!(path, AccessPath::ParallelHeapScan { workers } if *workers >= 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn small_tables_stay_serial() {
        let db = test_db(); // 10 rows < default threshold
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select * from photoObj where ra + dec > 100");
        let ctx = PlanContext {
            db: &db,
            functions: &funcs,
            parallel_scan_threshold: crate::planner::PARALLEL_SCAN_THRESHOLD,
            cost_based_ordering: true,
        };
        assert!(!ParallelScanFallback.apply(&mut plan, &ctx).unwrap());
        match &plan.sources[0].kind {
            SourceKind::Table { path, .. } => assert_eq!(path, &AccessPath::HeapScan),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn index_paths_are_never_downgraded() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select ra from photoObj where objID = 5");
        crate::planner::rules::predicate_pushdown::PredicatePushdown
            .apply(&mut plan, &low_threshold_ctx(&db, &funcs))
            .unwrap();
        crate::planner::rules::index_seek::IndexSeekSelection
            .apply(&mut plan, &low_threshold_ctx(&db, &funcs))
            .unwrap();
        assert!(!ParallelScanFallback
            .apply(&mut plan, &low_threshold_ctx(&db, &funcs))
            .unwrap());
        match &plan.sources[0].kind {
            SourceKind::Table { path, .. } => {
                assert!(matches!(path, AccessPath::IndexSeek { .. }));
            }
            other => panic!("{other:?}"),
        }
    }
}
