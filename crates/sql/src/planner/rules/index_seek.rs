//! Access-path selection, part 1: sargable predicates on a B-tree index's
//! leading column turn the heap scan into an index seek.  Equality bounds
//! beat closed ranges beat half-open ranges, mirroring what the paper's
//! discussion of SQL Server's optimizer implies for the 20 queries.
//! Runs after pushdown so each source's own predicates are in place.

use super::RewriteRule;
use crate::ast::{BinaryOp, Expr};
use crate::error::SqlError;
use crate::plan::{AccessPath, IndexBounds, SourceKind};
use crate::planner::binder::{LogicalPlan, PlanContext};

/// The `index_seek` rule: turns sargable single-table predicates into
/// B-tree seeks on a matching index.
pub struct IndexSeekSelection;

impl RewriteRule for IndexSeekSelection {
    fn name(&self) -> &'static str {
        "index_seek"
    }

    fn apply(&self, plan: &mut LogicalPlan, ctx: &PlanContext<'_>) -> Result<bool, SqlError> {
        let mut fired = false;
        for source in &mut plan.sources {
            let SourceKind::Table { table, path } = &mut source.kind else {
                continue;
            };
            if *path != AccessPath::HeapScan {
                continue;
            }
            let sargable = extract_sargable(&source.pushed);
            if sargable.is_empty() {
                continue;
            }
            let mut best: Option<(u32, AccessPath)> = None;
            for idx in ctx.db.indexes_for(table) {
                let leading = idx.def().leading_column();
                let mut bounds = IndexBounds {
                    column: leading.to_string(),
                    ..Default::default()
                };
                for s in &sargable {
                    if !s.column.eq_ignore_ascii_case(leading) {
                        continue;
                    }
                    match s.kind {
                        SargKind::Eq => bounds.equals = Some(s.value.clone()),
                        SargKind::GtEq => bounds.lower = Some((s.value.clone(), true)),
                        SargKind::Gt => bounds.lower = Some((s.value.clone(), false)),
                        SargKind::LtEq => bounds.upper = Some((s.value.clone(), true)),
                        SargKind::Lt => bounds.upper = Some((s.value.clone(), false)),
                    }
                }
                let score = if bounds.equals.is_some() {
                    3
                } else if bounds.lower.is_some() && bounds.upper.is_some() {
                    2
                } else if !bounds.is_unbounded() {
                    1
                } else {
                    0
                };
                if score > 0 && best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                    best = Some((
                        score,
                        AccessPath::IndexSeek {
                            index: idx.def().name.clone(),
                            bounds,
                        },
                    ));
                }
            }
            if let Some((_, chosen)) = best {
                *path = chosen;
                fired = true;
            }
        }
        Ok(fired)
    }
}

/// The sargable comparison shapes the rule recognises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the comparison operators themselves
pub enum SargKind {
    Eq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

/// One `column <op> constant-expression` bound.
pub struct Sarg {
    /// The bounded column.
    pub column: String,
    /// The comparison shape.
    pub kind: SargKind,
    /// The constant side of the comparison.
    pub value: Expr,
}

/// Extract sargable `column op constant` conjuncts (BETWEEN counts as a
/// closed range).  "Constant" means no column references — variables and
/// scalar function calls are fine, they evaluate once at seek time.
pub fn extract_sargable(conjuncts: &[Expr]) -> Vec<Sarg> {
    let mut out = Vec::new();
    let is_const = |e: &Expr| {
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        cols.is_empty() && !matches!(e, Expr::Star)
    };
    for c in conjuncts {
        match c {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                let (col, value, op) = match (&**left, &**right) {
                    (Expr::Column { name, .. }, v) if is_const(v) => (name.clone(), v.clone(), *op),
                    (v, Expr::Column { name, .. }) if is_const(v) => {
                        (name.clone(), v.clone(), op.mirror())
                    }
                    _ => continue,
                };
                let kind = match op {
                    BinaryOp::Eq => SargKind::Eq,
                    BinaryOp::Lt => SargKind::Lt,
                    BinaryOp::LtEq => SargKind::LtEq,
                    BinaryOp::Gt => SargKind::Gt,
                    BinaryOp::GtEq => SargKind::GtEq,
                    _ => continue,
                };
                out.push(Sarg {
                    column: col,
                    kind,
                    value,
                });
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                if let Expr::Column { name, .. } = &**expr {
                    if is_const(low) && is_const(high) {
                        out.push(Sarg {
                            column: name.clone(),
                            kind: SargKind::GtEq,
                            value: (**low).clone(),
                        });
                        out.push(Sarg {
                            column: name.clone(),
                            kind: SargKind::LtEq,
                            value: (**high).clone(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::rules::predicate_pushdown::PredicatePushdown;
    use crate::planner::rules::testkit::{bind_only, ctx, registry, test_db};

    fn pushed_plan(sql: &str) -> (skyserver_storage::Database, LogicalPlan) {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, sql);
        PredicatePushdown
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        (db, plan)
    }

    fn path(plan: &LogicalPlan) -> &AccessPath {
        match &plan.sources[0].kind {
            SourceKind::Table { path, .. } => path,
            other => panic!("expected a table source, got {other:?}"),
        }
    }

    #[test]
    fn equality_on_pk_becomes_index_seek() {
        let (db, mut plan) = pushed_plan("select ra from photoObj where objID = 5");
        assert_eq!(path(&plan), &AccessPath::HeapScan, "before: heap scan");
        let funcs = registry();
        assert!(IndexSeekSelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
        match path(&plan) {
            AccessPath::IndexSeek { index, bounds } => {
                assert_eq!(index, "pk_photoObj");
                assert!(bounds.equals.is_some());
            }
            other => panic!("expected index seek, got {other:?}"),
        }
    }

    #[test]
    fn between_becomes_a_closed_range_seek() {
        let (db, mut plan) =
            pushed_plan("select ra, dec from photoObj where htmID between 1000 and 1005");
        let funcs = registry();
        assert!(IndexSeekSelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
        match path(&plan) {
            AccessPath::IndexSeek { index, bounds } => {
                assert_eq!(index, "ix_htm");
                assert!(bounds.lower.is_some() && bounds.upper.is_some());
            }
            other => panic!("expected index seek, got {other:?}"),
        }
    }

    #[test]
    fn equality_beats_range_when_both_apply() {
        let (db, mut plan) = pushed_plan("select ra from photoObj where htmID > 100 and objID = 3");
        let funcs = registry();
        assert!(IndexSeekSelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
        match path(&plan) {
            AccessPath::IndexSeek { index, .. } => assert_eq!(index, "pk_photoObj"),
            other => panic!("expected index seek, got {other:?}"),
        }
    }

    #[test]
    fn non_sargable_predicates_leave_the_heap_scan() {
        let (db, mut plan) = pushed_plan("select objID from photoObj where type * 2 = 6");
        let funcs = registry();
        assert!(!IndexSeekSelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
        assert_eq!(path(&plan), &AccessPath::HeapScan);
    }
}
