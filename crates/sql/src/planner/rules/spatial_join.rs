//! Join-order rewrite for the Figure 10 plan shape: a spatial table-valued
//! function (`fGetNearbyObjEq`, `spHTM_Cover` wrappers) or a small derived
//! table produces few rows, so it should *drive* a nested-loop join that
//! probes the big photo table's B-tree — not sit on the inner side of a
//! scan.  The rule reorders inner-join sources: table functions first, then
//! derived tables, then indexed tables, heap scans last.  Reordering is only
//! legal when every join is inner/comma.

use super::RewriteRule;
use crate::error::SqlError;
use crate::plan::{AccessPath, SourceKind};
use crate::planner::binder::{LogicalPlan, PlanContext};

/// The `spatial_join_rewrite` rule: reorders a table-valued function (or
/// the smaller side) to drive the join — the Figure 10 plan shape.
pub struct SpatialJoinRewrite;

impl RewriteRule for SpatialJoinRewrite {
    fn name(&self) -> &'static str {
        "spatial_join_rewrite"
    }

    fn apply(&self, plan: &mut LogicalPlan, _ctx: &PlanContext<'_>) -> Result<bool, SqlError> {
        if !plan.only_inner || plan.sources.len() < 2 {
            return Ok(false);
        }
        let before: Vec<String> = plan.sources.iter().map(|s| s.alias.clone()).collect();
        plan.sources.sort_by_key(|s| source_priority(&s.kind));
        let after: Vec<String> = plan.sources.iter().map(|s| s.alias.clone()).collect();
        Ok(before != after)
    }
}

/// Priority used to order inner-join sources: drive with TVFs and derived
/// tables, then selective index access, finish with (parallel) heap scans.
pub fn source_priority(kind: &SourceKind) -> u8 {
    match kind {
        SourceKind::TableFunction { .. } => 0,
        SourceKind::Derived { .. } => 1,
        SourceKind::Table { path, .. } => match path {
            AccessPath::IndexSeek { bounds, .. } if bounds.equals.is_some() => 2,
            AccessPath::IndexSeek { .. } => 3,
            AccessPath::CoveringIndexScan { .. } => 4,
            AccessPath::HeapScan | AccessPath::ParallelHeapScan { .. } => 5,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::rules::testkit::{bind_only, ctx, registry, test_db};

    #[test]
    fn table_function_moves_to_the_driving_position() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select G.objID, GN.distance from photoObj as G \
             join fGetNearbyObjEq(185, -0.5, 1) as GN on G.objID = GN.objID",
        );
        assert_eq!(plan.sources[0].alias, "G", "before: syntactic order");

        assert!(SpatialJoinRewrite
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
        assert_eq!(plan.sources[0].alias, "GN", "after: the TVF drives");
        assert!(matches!(
            plan.sources[0].kind,
            SourceKind::TableFunction { .. }
        ));
    }

    #[test]
    fn already_ordered_plans_do_not_fire() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select G.objID from fGetNearbyObjEq(185, -0.5, 1) as GN \
             join photoObj as G on G.objID = GN.objID",
        );
        assert!(!SpatialJoinRewrite
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
        assert_eq!(plan.sources[0].alias, "GN");
    }

    #[test]
    fn outer_joins_are_never_reordered() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select G.objID from photoObj as G \
             left join fGetNearbyObjEq(185, -0.5, 1) as GN on G.objID = GN.objID",
        );
        assert!(!SpatialJoinRewrite
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
        assert_eq!(plan.sources[0].alias, "G", "outer join order is semantic");
    }

    #[test]
    fn single_source_plans_do_not_fire() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select objID from photoObj");
        assert!(!SpatialJoinRewrite
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
    }
}
