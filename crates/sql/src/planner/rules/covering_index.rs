//! Access-path selection, part 2: the tag-table replacement.  When no seek
//! applies but some index *covers* every column the query needs from a
//! table, scanning that index reads a 10-100x smaller column subset than the
//! heap (§9.1.2's tag tables, realised as covering indices).  The narrowest
//! covering index wins, and the source's schema shrinks to the covered
//! columns.

use super::RewriteRule;
use crate::ast::SelectItem;
use crate::error::SqlError;
use crate::expr::RowSchema;
use crate::plan::{AccessPath, SourceKind};
use crate::planner::binder::{LogicalPlan, PlanContext};

/// The `covering_index` rule: answers a query from an index that covers
/// every referenced column — the paper's 10-100x smaller "tag tables".
pub struct CoveringIndexSelection;

impl RewriteRule for CoveringIndexSelection {
    fn name(&self) -> &'static str {
        "covering_index"
    }

    fn apply(&self, plan: &mut LogicalPlan, ctx: &PlanContext<'_>) -> Result<bool, SqlError> {
        let needed = needed_columns(plan);
        let mut fired = false;
        for source in &mut plan.sources {
            let SourceKind::Table { table, path } = &mut source.kind else {
                continue;
            };
            if *path != AccessPath::HeapScan {
                continue;
            }
            let needed_for_alias: Vec<&str> = needed
                .iter()
                .filter(|(a, _)| a.eq_ignore_ascii_case(&source.alias))
                .map(|(_, c)| c.as_str())
                .collect();
            if needed_for_alias.is_empty() {
                continue;
            }
            let mut best: Option<(usize, String)> = None;
            for idx in ctx.db.indexes_for(table) {
                if idx.def().covers(&needed_for_alias) {
                    let width = idx.def().covered_columns().len();
                    if best.as_ref().map(|(w, _)| width < *w).unwrap_or(true) {
                        best = Some((width, idx.def().name.clone()));
                    }
                }
            }
            if let Some((_, index)) = best {
                let idx = ctx
                    .db
                    .index(table, &index)
                    .expect("covering index chosen by the rule must exist");
                let cols: Vec<&str> = idx.def().covered_columns();
                source.schema = RowSchema::for_table(Some(&source.alias), &cols);
                *path = AccessPath::CoveringIndexScan { index };
                fired = true;
            }
        }
        Ok(fired)
    }
}

/// Every `(alias, column)` pair the query references anywhere: projections,
/// all conjuncts (consumed or not), ORDER BY, GROUP BY and HAVING.  A bare
/// `*` claims every column of every source, which correctly defeats
/// covering-index selection.
pub fn needed_columns(plan: &LogicalPlan) -> Vec<(String, String)> {
    let alias_schemas = plan.alias_schemas();
    let mut refs: Vec<(Option<String>, String)> = Vec::new();
    for p in &plan.select_items {
        match p {
            SelectItem::Expr { expr, .. } => expr.collect_columns(&mut refs),
            SelectItem::Wildcard => {
                for (alias, schema) in &alias_schemas {
                    for (_, name) in schema.columns() {
                        refs.push((Some(alias.clone()), name.clone()));
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                for (alias, schema) in &alias_schemas {
                    if alias.eq_ignore_ascii_case(q) {
                        for (_, name) in schema.columns() {
                            refs.push((Some(alias.clone()), name.clone()));
                        }
                    }
                }
            }
        }
    }
    for c in &plan.conjuncts {
        c.expr.collect_columns(&mut refs);
    }
    for s in &plan.sources {
        for e in s.pushed.iter().chain(&s.outer_on) {
            e.collect_columns(&mut refs);
        }
    }
    for o in &plan.order_by {
        o.expr.collect_columns(&mut refs);
    }
    for g in &plan.group_by {
        g.collect_columns(&mut refs);
    }
    if let Some(h) = &plan.having {
        h.collect_columns(&mut refs);
    }
    // Resolve unqualified references to their alias.
    let mut out = Vec::new();
    for (q, name) in refs {
        match q {
            Some(q) => out.push((q, name)),
            None => {
                for (alias, schema) in &alias_schemas {
                    if schema.can_resolve(None, &name) {
                        out.push((alias.clone(), name.clone()));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::rules::predicate_pushdown::PredicatePushdown;
    use crate::planner::rules::testkit::{bind_only, ctx, registry, test_db};

    #[test]
    fn covered_query_scans_the_index_and_narrows_the_schema() {
        let db = test_db();
        let funcs = registry();
        // `type * 2 = 6` is not sargable, but type/modelMag_r/objID are all
        // covered by ix_type_mag.
        let mut plan = bind_only(
            &db,
            &funcs,
            "select objID, modelMag_r from photoObj where type * 2 = 6",
        );
        PredicatePushdown
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        let before_width = plan.sources[0].schema.len();

        assert!(CoveringIndexSelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
        match &plan.sources[0].kind {
            SourceKind::Table { path, .. } => assert_eq!(
                path,
                &AccessPath::CoveringIndexScan {
                    index: "ix_type_mag".into()
                }
            ),
            other => panic!("{other:?}"),
        }
        assert!(
            plan.sources[0].schema.len() < before_width,
            "schema must shrink to the covered column subset"
        );
    }

    #[test]
    fn select_star_defeats_covering() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select * from photoObj where type * 2 = 6");
        PredicatePushdown
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        assert!(!CoveringIndexSelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
        match &plan.sources[0].kind {
            SourceKind::Table { path, .. } => assert_eq!(path, &AccessPath::HeapScan),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn existing_index_seek_is_left_alone() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select objID from photoObj where objID = 1");
        PredicatePushdown
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        crate::planner::rules::index_seek::IndexSeekSelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        assert!(!CoveringIndexSelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
    }
}
