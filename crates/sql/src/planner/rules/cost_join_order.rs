//! Cost-based join ordering and access-path costing.
//!
//! Runs after the syntactic rewrites (pushdown, index selection, the
//! Figure-10 spatial sort) and before join-strategy selection.  Two passes:
//!
//! 1. **Join ordering** — a greedy search over the inner-join sources
//!    (≤ 6 relations): the driver is the source with the smallest estimated
//!    output, then the search repeatedly appends the relation that
//!    minimizes the estimated intermediate result, using NDV-containment
//!    selectivity for the join conjuncts that become evaluable.  Relations
//!    with no connecting conjunct pay a cross-product penalty, so connected
//!    subgraphs are exhausted first.  Because the driver side is the probe
//!    side of every index-lookup and the accumulated side of every hash
//!    build, this ordering *is* the build-vs-probe decision.
//! 2. **Access-path costing** — an `IndexSeek` whose estimated matching
//!    fraction exceeds `SEEK_DEMOTION_FRACTION` (35 %) is demoted back to a heap
//!    scan: beyond that point the per-row B-tree fetch costs more than the
//!    zone-pruned vectorized scan.  Equality seeks on unique indexes are
//!    never demoted.
//!
//! Plans containing table-valued functions keep the order the spatial rule
//! chose: TVFs have no statistics, and the Figure-10 shape (TVF drives
//! index lookups) is the paper's intended plan.
//!
//! The whole rule is gated on `PlanContext::cost_based_ordering`
//! ([`crate::SqlEngine::set_cost_based_ordering`] is the escape hatch and
//! the bench baseline).

use super::RewriteRule;
use crate::ast::Expr;
use crate::error::SqlError;
use crate::plan::{AccessPath, SourceKind};
use crate::planner::binder::{LogicalPlan, PlanContext};
use crate::planner::stats;
use std::collections::HashSet;

/// Join-order search is bounded to this many relations (greedy stays
/// linear-ish; the documented queries join at most 3).
const MAX_RELATIONS: usize = 6;

/// Estimated matching fraction above which an index seek is costed worse
/// than a zone-pruned heap scan and demoted.
const SEEK_DEMOTION_FRACTION: f64 = 0.35;

/// Tables smaller than this are never re-costed (either path is trivially
/// cheap, and stable plans beat micro-costing).
const MIN_DEMOTION_ROWS: f64 = 512.0;

/// Multiplier applied to candidate orders that would form a cross product.
const CROSS_PRODUCT_PENALTY: f64 = 1e6;

/// The `cost_join_order` rule; see the module docs.
pub struct CostBasedJoinOrder;

impl RewriteRule for CostBasedJoinOrder {
    fn name(&self) -> &'static str {
        "cost_join_order"
    }

    fn apply(&self, plan: &mut LogicalPlan, ctx: &PlanContext<'_>) -> Result<bool, SqlError> {
        if !ctx.cost_based_ordering {
            return Ok(false);
        }
        let mut changed = reorder_sources(plan, ctx);
        changed |= demote_expensive_seeks(plan, ctx);
        Ok(changed)
    }
}

/// Greedy join-order search.  Returns true iff the source order changed.
fn reorder_sources(plan: &mut LogicalPlan, ctx: &PlanContext<'_>) -> bool {
    let n = plan.sources.len();
    if !plan.only_inner || !plan.joins.is_empty() || !(2..=MAX_RELATIONS).contains(&n) {
        return false;
    }
    if plan
        .sources
        .iter()
        .any(|s| matches!(s.kind, SourceKind::TableFunction { .. }))
    {
        return false;
    }

    let ests: Vec<f64> = plan
        .sources
        .iter()
        .map(|s| stats::estimate_logical_source(ctx.db, s).max(1.0))
        .collect();
    let aliases = stats::alias_tables(&plan.sources);
    // The join graph: unconsumed multi-alias conjuncts with their
    // (lowercased) alias footprints.
    let edges: Vec<(HashSet<String>, &Expr)> = plan
        .conjuncts
        .iter()
        .filter(|c| !c.consumed && c.aliases.len() >= 2)
        .map(|c| {
            (
                c.aliases.iter().map(|a| a.to_ascii_lowercase()).collect(),
                &c.expr,
            )
        })
        .collect();

    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut chosen: HashSet<String> = HashSet::new();

    // Driver: smallest estimated output (first wins ties, so equal-size
    // sides keep their syntactic order).
    let mut best = 0;
    for (ri, &si) in remaining.iter().enumerate() {
        if ests[si] < ests[remaining[best]] {
            best = ri;
        }
    }
    let driver = remaining.remove(best);
    chosen.insert(plan.sources[driver].alias.to_ascii_lowercase());
    order.push(driver);
    let mut running = ests[driver];

    while !remaining.is_empty() {
        let mut best_ri = 0;
        let mut best_cost = f64::INFINITY;
        let mut best_result = f64::INFINITY;
        for (ri, &si) in remaining.iter().enumerate() {
            let cand = plan.sources[si].alias.to_ascii_lowercase();
            let mut sel = 1.0;
            let mut connected = false;
            for (footprint, expr) in &edges {
                if !footprint.contains(&cand) {
                    continue;
                }
                let ready = footprint.iter().all(|a| a == &cand || chosen.contains(a));
                if ready {
                    connected = true;
                    sel *= stats::join_conjunct_selectivity(ctx.db, &aliases, expr);
                }
            }
            let result = running * ests[si] * sel;
            let cost = if connected {
                result
            } else {
                result * CROSS_PRODUCT_PENALTY
            };
            if cost < best_cost {
                best_cost = cost;
                best_result = result;
                best_ri = ri;
            }
        }
        let next = remaining.remove(best_ri);
        chosen.insert(plan.sources[next].alias.to_ascii_lowercase());
        order.push(next);
        running = best_result.max(1.0);
    }

    if order.iter().enumerate().all(|(i, &si)| i == si) {
        return false;
    }
    let mut slots: Vec<Option<crate::planner::binder::LogicalSource>> =
        plan.sources.drain(..).map(Some).collect();
    plan.sources = order.iter().filter_map(|&si| slots[si].take()).collect();
    // The new driver owns no join step; inner positions default to INNER
    // in finalization (the gate above proved every join is inner/comma).
    plan.sources[0].join_kind = None;
    true
}

/// Demote index seeks whose estimated matching fraction makes them worse
/// than a heap scan.  The pushed predicate stays on the source, so the scan
/// still filters (and regains zone-map pruning from the annotation pass).
fn demote_expensive_seeks(plan: &mut LogicalPlan, ctx: &PlanContext<'_>) -> bool {
    let mut changed = false;
    for i in 0..plan.sources.len() {
        let (table, index, has_eq) = match &plan.sources[i].kind {
            SourceKind::Table {
                table,
                path: AccessPath::IndexSeek { index, bounds },
            } => (table.clone(), index.clone(), bounds.equals.is_some()),
            _ => continue,
        };
        if has_eq {
            let unique = ctx
                .db
                .index(&table, &index)
                .is_some_and(|idx| idx.def().unique);
            if unique {
                continue;
            }
        }
        let base = ctx
            .db
            .table(&table)
            .map(|t| t.row_count() as f64)
            .unwrap_or(0.0);
        if base < MIN_DEMOTION_ROWS {
            continue;
        }
        let est = stats::estimate_logical_source(ctx.db, &plan.sources[i]);
        if est / base <= SEEK_DEMOTION_FRACTION {
            continue;
        }
        if let SourceKind::Table { path, .. } = &mut plan.sources[i].kind {
            *path = AccessPath::HeapScan;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::rules::testkit::{bind_only, ctx, registry, test_db};
    use crate::planner::rules::{
        covering_index, index_seek, predicate_pushdown, spatial_join, view_merge,
    };

    fn run_through_cost(db: &skyserver_storage::Database, sql: &str) -> (LogicalPlan, bool) {
        let functions = registry();
        let mut plan = bind_only(db, &functions, sql);
        let context = ctx(db, &functions);
        for rule in [
            Box::new(view_merge::ViewMerge) as Box<dyn RewriteRule>,
            Box::new(predicate_pushdown::PredicatePushdown),
            Box::new(index_seek::IndexSeekSelection),
            Box::new(covering_index::CoveringIndexSelection),
            Box::new(spatial_join::SpatialJoinRewrite),
        ] {
            rule.apply(&mut plan, &context).unwrap();
        }
        let fired = CostBasedJoinOrder.apply(&mut plan, &context).unwrap();
        (plan, fired)
    }

    #[test]
    fn filtered_side_becomes_the_driver() {
        let mut db = test_db();
        db.analyze_all();
        // Both sides are heap scans (ra is not an index leading column), so
        // the syntactic spatial sort cannot rank them — but the histogram
        // says the ra filter keeps ~1 of a's 10 rows.  The rule must flip
        // the order so the filtered side drives.
        let (plan, fired) = run_through_cost(
            &db,
            "select a.objID from photoObj b, photoObj a \
             where a.ra < 180.5 and a.htmID = b.htmID",
        );
        assert!(fired, "rule should fire on a beneficial reorder");
        assert_eq!(plan.sources[0].alias, "a");
        assert_eq!(plan.sources[1].alias, "b");
        assert!(plan.sources[0].join_kind.is_none());
    }

    #[test]
    fn already_optimal_order_leaves_the_plan_alone() {
        let mut db = test_db();
        db.analyze_all();
        let (plan, fired) = run_through_cost(
            &db,
            "select a.objID from photoObj a, photoObj b \
             where a.objID = 3 and a.htmID = b.htmID",
        );
        assert!(!fired, "no change: the filtered side already drives");
        assert_eq!(plan.sources[0].alias, "a");
    }

    #[test]
    fn escape_hatch_disables_the_rule() {
        let mut db = test_db();
        db.analyze_all();
        let functions = registry();
        let mut plan = bind_only(
            &db,
            &functions,
            "select a.objID from photoObj b, photoObj a \
             where a.objID = 3 and a.htmID = b.htmID",
        );
        let mut context = ctx(&db, &functions);
        context.cost_based_ordering = false;
        let fired = CostBasedJoinOrder.apply(&mut plan, &context).unwrap();
        assert!(!fired);
        assert_eq!(plan.sources[0].alias, "b", "syntactic order preserved");
    }

    #[test]
    fn outer_joins_are_never_reordered() {
        let mut db = test_db();
        db.analyze_all();
        let (plan, _) = run_through_cost(
            &db,
            "select a.objID from photoObj b left join photoObj a on a.htmID = b.htmID \
             where a.objID = 3",
        );
        assert_eq!(plan.sources[0].alias, "b", "left join pins the order");
    }
}
