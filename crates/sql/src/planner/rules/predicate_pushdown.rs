//! Predicate pushdown: conjuncts that reference exactly one source move out
//! of the global filter and into that source's scan, where the storage layer
//! evaluates them row-by-row during the sequential read or index probe.
//! Runs after [`super::view_merge`] so merged view qualifiers get pushed
//! like any user predicate.

use super::RewriteRule;
use crate::error::SqlError;
use crate::planner::binder::{LogicalPlan, PlanContext};

/// The `predicate_pushdown` rule: moves single-table conjuncts into the
/// scan that produces their rows.
pub struct PredicatePushdown;

impl RewriteRule for PredicatePushdown {
    fn name(&self) -> &'static str {
        "predicate_pushdown"
    }

    fn apply(&self, plan: &mut LogicalPlan, _ctx: &PlanContext<'_>) -> Result<bool, SqlError> {
        let mut fired = false;
        // WHERE predicates on the NULL-extended side of an outer join must
        // filter *after* the join (they see the NULL rows), so they stay in
        // the global residual.
        let nullable = plan.nullable_aliases();
        // Split borrows: collect placements first, then mutate sources.
        let mut placements: Vec<(usize, crate::ast::Expr)> = Vec::new();
        for conjunct in &mut plan.conjuncts {
            if conjunct.consumed || conjunct.aliases.len() != 1 {
                continue;
            }
            let alias = conjunct.aliases.iter().next().expect("len checked");
            if nullable.contains(&alias.to_ascii_lowercase()) {
                continue;
            }
            if let Some(idx) = plan
                .sources
                .iter()
                .position(|s| s.alias.eq_ignore_ascii_case(alias))
            {
                placements.push((idx, conjunct.expr.clone()));
                conjunct.consumed = true;
                fired = true;
            }
        }
        for (idx, expr) in placements {
            plan.sources[idx].pushed.push(expr);
        }
        Ok(fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::rules::testkit::{bind_only, ctx, registry, test_db};

    #[test]
    fn single_alias_conjuncts_move_into_the_scan() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select r.objID from photoObj r, photoObj g \
             where r.type = 3 and g.type = 6 and r.ra = g.ra",
        );
        assert!(plan.sources.iter().all(|s| s.pushed.is_empty()));

        let fired = PredicatePushdown
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        assert!(fired);
        // One conjunct pushed into each source; the join conjunct stays.
        assert_eq!(plan.sources[0].pushed.len(), 1);
        assert_eq!(plan.sources[1].pushed.len(), 1);
        let unconsumed: Vec<_> = plan.conjuncts.iter().filter(|c| !c.consumed).collect();
        assert_eq!(unconsumed.len(), 1, "the r.ra = g.ra join conjunct");
        assert_eq!(unconsumed[0].aliases.len(), 2);
    }

    #[test]
    fn constant_conjuncts_are_not_pushed() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select objID from photoObj where 1 = 1");
        let fired = PredicatePushdown
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        assert!(!fired);
        assert!(plan.sources[0].pushed.is_empty());
        assert!(!plan.conjuncts[0].consumed);
    }

    #[test]
    fn merged_view_qualifiers_get_pushed_too() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select objID from Galaxy where modelMag_r < 19",
        );
        super::super::view_merge::ViewMerge
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        let fired = PredicatePushdown
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        assert!(fired);
        // User predicate + the view's two qualifiers, all on the one source.
        assert_eq!(plan.sources[0].pushed.len(), 3);
        assert!(plan.conjuncts.iter().all(|c| c.consumed));
    }
}
