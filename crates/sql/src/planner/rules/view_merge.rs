//! View merging — the paper's "views as sub-classing" (§9.1.3).
//!
//! `Galaxy` / `Star` / `PhotoPrimary` are defined as `SELECT * FROM photoObj
//! WHERE <qualifiers>`; a query against such a view should "map down to the
//! base photoObj table with the additional qualifiers", not materialise the
//! view.  The binder analyses every view definition once (`merge_chain`)
//! and stores the collapsed `base WHERE qualifiers` result on the source;
//! this rule applies it — rewriting the materialised derived table into a
//! direct base-table access with the requalified view qualifiers attached
//! to the scan itself.
//!
//! The qualifiers go straight into `source.pushed`, **not** the WHERE
//! conjunct pool: they are part of the source's definition, so they must
//! filter the scan even when the view sits on the NULL-extended side of an
//! outer join (where WHERE-pool predicates must wait until after the join).

use super::RewriteRule;
use crate::ast::{Expr, SelectItem, SelectStatement, TableSource};
use crate::error::SqlError;
use crate::expr::RowSchema;
use crate::plan::{AccessPath, SourceKind};
use crate::planner::binder::{LogicalPlan, MergedView, PlanContext, SourceOrigin};
use skyserver_storage::Database;

/// The `view_merge` rule: collapses simple view chains onto their base
/// table, folding the views' qualifiers into the scan (§9.1.3).
pub struct ViewMerge;

impl RewriteRule for ViewMerge {
    fn name(&self) -> &'static str {
        "view_merge"
    }

    fn apply(&self, plan: &mut LogicalPlan, ctx: &PlanContext<'_>) -> Result<bool, SqlError> {
        let mut fired = false;
        for source in &mut plan.sources {
            let SourceOrigin::View {
                merged: Some(merged),
                ..
            } = &source.origin
            else {
                continue;
            };
            let mut predicates = merged.predicates.clone();
            for p in &mut predicates {
                requalify(p, &source.alias);
            }
            let table = ctx.db.table(&merged.base)?;
            let cols = table.schema().column_names();
            source.schema = RowSchema::for_table(Some(&source.alias), &cols);
            source.kind = SourceKind::Table {
                table: merged.base.clone(),
                path: AccessPath::HeapScan,
            };
            source.pushed.extend(predicates);
            fired = true;
        }
        Ok(fired)
    }
}

/// Follow a view definition of the shape `SELECT * FROM base [WHERE pred]`
/// (possibly via further such views) down to a base table, accumulating the
/// predicates innermost-first.  Returns `None` when the definition is too
/// complex to merge (the source then stays a materialised derived table).
/// Called by the binder exactly once per view reference; the result rides
/// on [`SourceOrigin::View`].
pub(crate) fn merge_chain(
    view: &SelectStatement,
    db: &Database,
) -> Result<Option<MergedView>, SqlError> {
    let simple = view.from.len() == 1
        && view.projections.len() == 1
        && matches!(view.projections[0], SelectItem::Wildcard)
        && view.group_by.is_empty()
        && view.order_by.is_empty()
        && view.top.is_none()
        && !view.distinct
        && view.into.is_none();
    if !simple {
        return Ok(None);
    }
    let TableSource::Named(base) = &view.from[0].source else {
        return Ok(None);
    };
    let predicates: Vec<Expr> = view
        .selection
        .as_ref()
        .map(|p| p.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();
    if db.has_table(base) {
        return Ok(Some(MergedView {
            base: base.clone(),
            predicates,
        }));
    }
    if let Some(inner_view) = db.view(base) {
        let inner_select = crate::parser::parse_select(&inner_view.sql)?;
        if let Some(mut inner) = merge_chain(&inner_select, db)? {
            inner.predicates.extend(predicates);
            return Ok(Some(inner));
        }
    }
    Ok(None)
}

/// Qualify every column reference of a merged view predicate with the outer
/// alias (the view body referenced its own base table or nothing).
fn requalify(expr: &mut Expr, alias: &str) {
    match expr {
        Expr::Column { qualifier, .. } => {
            *qualifier = Some(alias.to_string());
        }
        Expr::Unary { expr, .. } => requalify(expr, alias),
        Expr::Binary { left, right, .. } => {
            requalify(left, alias);
            requalify(right, alias);
        }
        Expr::Function { args, .. } => {
            for a in args {
                requalify(a, alias);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            requalify(expr, alias);
            requalify(low, alias);
            requalify(high, alias);
        }
        Expr::InList { expr, list, .. } => {
            requalify(expr, alias);
            for e in list {
                requalify(e, alias);
            }
        }
        Expr::IsNull { expr, .. } => requalify(expr, alias),
        Expr::Like { expr, pattern, .. } => {
            requalify(expr, alias);
            requalify(pattern, alias);
        }
        Expr::Case {
            branches,
            else_value,
        } => {
            for (c, v) in branches {
                requalify(c, alias);
                requalify(v, alias);
            }
            if let Some(e) = else_value {
                requalify(e, alias);
            }
        }
        Expr::Cast { expr, .. } => requalify(expr, alias),
        Expr::Literal(_) | Expr::Variable(_) | Expr::Star => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::rules::testkit::{bind_only, ctx, registry, test_db};

    #[test]
    fn simple_view_collapses_to_base_table() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select objID from Galaxy where modelMag_r < 19",
        );
        // Before: the binder bound the view as a (correct but naive)
        // derived table over the base; the rule collapses it.
        assert!(matches!(plan.sources[0].kind, SourceKind::Derived { .. }));
        assert!(plan.sources[0].pushed.is_empty());

        let fired = ViewMerge.apply(&mut plan, &ctx(&db, &funcs)).unwrap();
        assert!(fired);
        // After: direct base-table access with the view's two qualifiers
        // attached to the scan itself (not the WHERE pool, so outer joins
        // over views keep their semantics).
        match &plan.sources[0].kind {
            SourceKind::Table { table, path } => {
                assert_eq!(table, "photoObj");
                assert_eq!(path, &AccessPath::HeapScan);
            }
            other => panic!("expected merged base table, got {other:?}"),
        }
        assert_eq!(plan.sources[0].pushed.len(), 2);
        // The qualifiers are requalified with the outer alias.
        for p in &plan.sources[0].pushed {
            let mut cols = Vec::new();
            p.collect_columns(&mut cols);
            assert!(cols.iter().all(|(q, _)| q.as_deref() == Some("Galaxy")));
        }
    }

    #[test]
    fn stacked_views_merge_through_both_layers() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select objID from BrightGalaxy");
        let fired = ViewMerge.apply(&mut plan, &ctx(&db, &funcs)).unwrap();
        assert!(fired);
        match &plan.sources[0].kind {
            SourceKind::Table { table, .. } => assert_eq!(table, "photoObj"),
            other => panic!("expected merged base table, got {other:?}"),
        }
        // Galaxy contributes two qualifiers, BrightGalaxy one more.
        assert_eq!(plan.sources[0].pushed.len(), 3);
    }

    #[test]
    fn view_on_nullable_side_of_left_join_keeps_qualifiers_in_the_scan() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select p.objID from photoObj p left join Galaxy g on p.objID = g.objID",
        );
        let fired = ViewMerge.apply(&mut plan, &ctx(&db, &funcs)).unwrap();
        assert!(fired);
        // The qualifiers filter the Galaxy scan before the outer join; they
        // must not surface as WHERE-pool conjuncts, which would run after
        // NULL-extension and wrongly drop the preserved rows.
        assert_eq!(plan.sources[1].pushed.len(), 2);
        assert!(plan.conjuncts.is_empty());
    }

    #[test]
    fn complex_views_stay_materialised() {
        let mut db = test_db();
        let funcs = registry();
        db.create_view("Brightest", "select top 5 * from photoObj", "top-n view")
            .unwrap();
        let mut plan = bind_only(&db, &funcs, "select objID from Brightest");
        assert!(
            matches!(plan.sources[0].kind, SourceKind::Derived { .. }),
            "a TOP view cannot be merged, so it must bind as a derived table"
        );
        let fired = ViewMerge.apply(&mut plan, &ctx(&db, &funcs)).unwrap();
        assert!(!fired);
        assert!(matches!(plan.sources[0].kind, SourceKind::Derived { .. }));
    }

    #[test]
    fn does_not_fire_without_views() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select objID from photoObj where objID = 1");
        let before = plan.clone();
        let fired = ViewMerge.apply(&mut plan, &ctx(&db, &funcs)).unwrap();
        assert!(!fired);
        assert_eq!(plan, before, "a non-firing rule must not change the plan");
    }
}
