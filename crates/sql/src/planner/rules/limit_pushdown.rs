//! Limit pushdown: `SELECT TOP n` with no stage that could need more than
//! `n` rows (no sort, no aggregation, no DISTINCT, no joins, no residual
//! filter left) grants the single scan a row budget so it stops reading the
//! heap or index early.  The public SkyServer's 1,000-row cap (§4) makes
//! this shape common: browsing queries touch a few pages instead of the
//! whole table.

use super::RewriteRule;
use crate::error::SqlError;
use crate::planner::binder::{LogicalPlan, PlanContext};

/// The `limit_pushdown` rule: a `TOP n` without sort/aggregate/distinct
/// grants the driving base-table scan a limit hint so it stops early.
pub struct LimitPushdown;

impl RewriteRule for LimitPushdown {
    fn name(&self) -> &'static str {
        "limit_pushdown"
    }

    fn apply(&self, plan: &mut LogicalPlan, _ctx: &PlanContext<'_>) -> Result<bool, SqlError> {
        let Some(top) = plan.top else {
            return Ok(false);
        };
        let single_source = plan.sources.len() == 1;
        let reorders_or_reduces = !plan.order_by.is_empty()
            || plan.has_aggregates
            || !plan.group_by.is_empty()
            || plan.having.is_some()
            || plan.distinct;
        let residual_left = plan.conjuncts.iter().any(|c| !c.consumed);
        if !single_source || reorders_or_reduces || residual_left {
            return Ok(false);
        }
        // Only base-table scans honour the hint in the executor; granting it
        // to table functions or derived tables would make EXPLAIN advertise
        // an early-stop that never happens.
        if !matches!(plan.sources[0].kind, crate::plan::SourceKind::Table { .. }) {
            return Ok(false);
        }
        plan.sources[0].limit_hint = Some(top);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::rules::predicate_pushdown::PredicatePushdown;
    use crate::planner::rules::testkit::{bind_only, ctx, registry, test_db};

    #[test]
    fn bare_top_pushes_a_row_budget_into_the_scan() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select top 3 objID from photoObj");
        assert_eq!(plan.sources[0].limit_hint, None);
        assert!(LimitPushdown.apply(&mut plan, &ctx(&db, &funcs)).unwrap());
        assert_eq!(plan.sources[0].limit_hint, Some(3));
    }

    #[test]
    fn top_with_pushed_predicate_still_qualifies() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select top 3 objID from photoObj where type = 3",
        );
        PredicatePushdown
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        assert!(LimitPushdown.apply(&mut plan, &ctx(&db, &funcs)).unwrap());
        assert_eq!(plan.sources[0].limit_hint, Some(3));
    }

    #[test]
    fn order_by_blocks_the_pushdown() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select top 3 objID from photoObj order by objID",
        );
        assert!(!LimitPushdown.apply(&mut plan, &ctx(&db, &funcs)).unwrap());
        assert_eq!(plan.sources[0].limit_hint, None);
    }

    #[test]
    fn unplaced_residual_blocks_the_pushdown() {
        let db = test_db();
        let funcs = registry();
        // Without running pushdown first, the predicate is still a global
        // residual, so an early stop would be wrong.
        let mut plan = bind_only(
            &db,
            &funcs,
            "select top 3 objID from photoObj where type = 3",
        );
        assert!(!LimitPushdown.apply(&mut plan, &ctx(&db, &funcs)).unwrap());
    }

    #[test]
    fn aggregates_block_the_pushdown() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(&db, &funcs, "select top 3 count(*) from photoObj");
        assert!(!LimitPushdown.apply(&mut plan, &ctx(&db, &funcs)).unwrap());
    }

    #[test]
    fn non_table_sources_are_not_granted_a_hint() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select top 3 objID from (select objID from photoObj) d",
        );
        assert!(!LimitPushdown.apply(&mut plan, &ctx(&db, &funcs)).unwrap());
        assert_eq!(plan.sources[0].limit_hint, None);
        let mut plan = bind_only(
            &db,
            &funcs,
            "select top 3 objID from fGetNearbyObjEq(1, 2, 3)",
        );
        assert!(!LimitPushdown.apply(&mut plan, &ctx(&db, &funcs)).unwrap());
    }
}
