//! The optimizer: an ordered pipeline of named rewrite rules.
//!
//! Each rule is a [`RewriteRule`]: a pure structural rewrite over the
//! [`LogicalPlan`] that reports whether it
//! changed anything.  The planner runs the default pipeline in order and
//! records which rules fired; `EXPLAIN` prints that list, which is how the
//! reproduction shows *why* a query got its Figure-10 (table-function
//! nested-loop join) or Figure-11 (parallel scan) shape.
//!
//! The design follows the `PlanRewriter` idiom common in Rust query engines:
//! rules are small, independent, and unit-tested in isolation — running a
//! prefix of the pipeline is a valid (just less optimized) plan at every
//! step.
//!
//! | order | rule | paper hook |
//! |-------|------|------------|
//! | 1 | [`view_merge::ViewMerge`] | §9.1.3 views-as-subclasses |
//! | 2 | [`predicate_pushdown::PredicatePushdown`] | single-table qualifiers move into scans |
//! | 3 | [`index_seek::IndexSeekSelection`] | sargable predicates → B-tree seeks |
//! | 4 | [`covering_index::CoveringIndexSelection`] | tag-table replacement (10-100x less IO) |
//! | 5 | [`spatial_join::SpatialJoinRewrite`] | Figure 10 TVF-driven join order |
//! | 6 | [`cost_join_order::CostBasedJoinOrder`] | statistics-driven join order + access-path costing |
//! | 7 | [`join_strategy::JoinStrategySelection`] | index-lookup / hash / nested-loop choice |
//! | 8 | [`parallel_scan::ParallelScanFallback`] | Figure 11 parallel sequential scan |
//! | 9 | [`limit_pushdown::LimitPushdown`] | TOP n stops the scan early |

use super::binder::{LogicalPlan, PlanContext};
use crate::error::SqlError;

pub mod cost_join_order;
pub mod covering_index;
pub mod index_seek;
pub mod join_strategy;
pub mod limit_pushdown;
pub mod parallel_scan;
pub mod predicate_pushdown;
pub mod spatial_join;
pub mod view_merge;

/// One named rewrite pass over the logical plan.
pub trait RewriteRule {
    /// Stable name reported by `EXPLAIN` when the rule fires.
    fn name(&self) -> &'static str;

    /// Rewrite the plan in place; return `Ok(true)` iff the plan changed.
    fn apply(&self, plan: &mut LogicalPlan, ctx: &PlanContext<'_>) -> Result<bool, SqlError>;
}

/// The default rule pipeline, in application order.
pub fn default_pipeline() -> Vec<Box<dyn RewriteRule>> {
    vec![
        Box::new(view_merge::ViewMerge),
        Box::new(predicate_pushdown::PredicatePushdown),
        Box::new(index_seek::IndexSeekSelection),
        Box::new(covering_index::CoveringIndexSelection),
        Box::new(spatial_join::SpatialJoinRewrite),
        Box::new(cost_join_order::CostBasedJoinOrder),
        Box::new(join_strategy::JoinStrategySelection),
        Box::new(parallel_scan::ParallelScanFallback),
        Box::new(limit_pushdown::LimitPushdown),
    ]
}

/// Run a pipeline over a plan, recording fired rules on the plan itself.
pub fn run_pipeline(
    plan: &mut LogicalPlan,
    ctx: &PlanContext<'_>,
    rules: &[Box<dyn RewriteRule>],
) -> Result<(), SqlError> {
    for rule in rules {
        if rule.apply(plan, ctx)? {
            plan.rules_fired.push(rule.name());
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testkit {
    //! Shared fixtures for the per-rule test modules.

    use crate::functions::FunctionRegistry;
    use crate::parser::parse_select;
    use crate::planner::binder::{bind, LogicalPlan, PlanContext};
    use crate::planner::Planner;
    use skyserver_storage::{ColumnDef, DataType, Database, IndexDef, TableSchema, Value};

    /// The photoObj-like test database the monolithic planner's tests used.
    pub fn test_db() -> Database {
        let mut db = Database::new("test");
        let schema = TableSchema::new(vec![
            ColumnDef::new("objID", DataType::Int),
            ColumnDef::new("htmID", DataType::Int),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
            ColumnDef::new("type", DataType::Int),
            ColumnDef::new("flags", DataType::Int),
            ColumnDef::new("modelMag_r", DataType::Float),
        ])
        .with_primary_key(&["objID"]);
        db.create_table("photoObj", schema).unwrap();
        db.create_index(IndexDef::new("pk_photoObj", "photoObj", &["objID"]).unique())
            .unwrap();
        db.create_index(IndexDef::new("ix_htm", "photoObj", &["htmID"]).include(&["ra", "dec"]))
            .unwrap();
        db.create_index(
            IndexDef::new("ix_type_mag", "photoObj", &["type"]).include(&["modelMag_r", "objID"]),
        )
        .unwrap();
        db.create_view(
            "Galaxy",
            "select * from photoObj where type = 3 and (flags & 256) > 0",
            "primary galaxies",
        )
        .unwrap();
        db.create_view(
            "Primaries",
            "select * from photoObj where (flags & 256) > 0",
            "primary",
        )
        .unwrap();
        db.create_view(
            "BrightGalaxy",
            "select * from Galaxy where modelMag_r < 20",
            "bright primary galaxies (stacked view)",
        )
        .unwrap();
        for i in 0..10i64 {
            db.insert(
                "photoObj",
                vec![
                    Value::Int(i),
                    Value::Int(1000 + i),
                    Value::Float(180.0 + i as f64),
                    Value::Float(0.0),
                    Value::Int(if i % 2 == 0 { 3 } else { 6 }),
                    Value::Int(256),
                    Value::Float(18.0),
                ],
            )
            .unwrap();
        }
        db
    }

    pub fn registry() -> FunctionRegistry {
        let mut f = FunctionRegistry::new();
        f.register_table("fGetNearbyObjEq", &["objID", "distance"], |_db, _args| {
            Ok(crate::result::ResultSet::empty(vec![
                "objID".into(),
                "distance".into(),
            ]))
        });
        f
    }

    /// Bind `sql` without running any rules: the "before" plan.
    pub fn bind_only(db: &Database, functions: &FunctionRegistry, sql: &str) -> LogicalPlan {
        let ctx = PlanContext {
            db,
            functions,
            parallel_scan_threshold: crate::planner::PARALLEL_SCAN_THRESHOLD,
            cost_based_ordering: true,
        };
        let planner = Planner::new(db, functions);
        bind(&parse_select(sql).unwrap(), &ctx, &|s| {
            planner.plan_select(s)
        })
        .unwrap()
    }

    /// A context with the default parallel threshold.
    pub fn ctx<'a>(db: &'a Database, functions: &'a FunctionRegistry) -> PlanContext<'a> {
        PlanContext {
            db,
            functions,
            parallel_scan_threshold: crate::planner::PARALLEL_SCAN_THRESHOLD,
            cost_based_ordering: true,
        }
    }
}
