//! Join-strategy selection: build the [`JoinStep`] chain that connects the
//! (already ordered) sources.  For each step the rule pulls in the conjuncts
//! that become evaluable once that source joins, detects equi-join pairs,
//! and picks the cheapest algorithm:
//!
//! * **index-lookup nested loop** when the inner side is a base table with a
//!   B-tree leading on an equi-join column (the Figure 10 probe),
//! * **hash join** for equi-joins without a usable index (self-joins),
//! * **plain nested loop** otherwise.
//!
//! Outer-join ON conjuncts (which the binder kept with their source, since
//! they must not filter globally) are folded into that step's residual here.

use super::RewriteRule;
use crate::ast::{BinaryOp, Expr, JoinKind};
use crate::error::SqlError;
use crate::expr::RowSchema;
use crate::plan::{JoinStep, JoinStrategy, SourceKind};
use crate::planner::binder::{LogicalPlan, LogicalSource, PlanContext};
use std::collections::HashSet;

/// The `join_strategy` rule: picks index-lookup, hash or nested-loop for
/// every join step based on the available indexes and key shapes.
pub struct JoinStrategySelection;

impl RewriteRule for JoinStrategySelection {
    fn name(&self) -> &'static str {
        "join_strategy"
    }

    fn apply(&self, plan: &mut LogicalPlan, ctx: &PlanContext<'_>) -> Result<bool, SqlError> {
        if plan.sources.len() < 2 {
            return Ok(false);
        }
        let mut joins = Vec::with_capacity(plan.sources.len() - 1);
        // WHERE conjuncts touching a NULL-extended alias must filter after
        // *all* joins (global residual), not inside a step, or NULL-extended
        // rows would be produced/eliminated incorrectly.
        let nullable = plan.nullable_aliases();
        let mut available: HashSet<String> = HashSet::new();
        available.insert(plan.sources[0].alias.to_ascii_lowercase());
        for i in 1..plan.sources.len() {
            available.insert(plan.sources[i].alias.to_ascii_lowercase());
            // Conjuncts that become evaluable once this source is joined.
            let mut step_conjuncts: Vec<Expr> = Vec::new();
            for c in &mut plan.conjuncts {
                if c.consumed || c.aliases.len() == 1 {
                    continue;
                }
                if c.aliases
                    .iter()
                    .any(|a| nullable.contains(&a.to_ascii_lowercase()))
                {
                    continue;
                }
                let ready = c
                    .aliases
                    .iter()
                    .all(|a| available.contains(&a.to_ascii_lowercase()));
                if ready {
                    step_conjuncts.push(c.expr.clone());
                    c.consumed = true;
                }
            }
            // Outer-join ON conjuncts always belong to their own step.
            step_conjuncts.extend(plan.sources[i].outer_on.iter().cloned());
            let outer_schema: RowSchema = plan.sources[..i]
                .iter()
                .map(|s| s.schema.clone())
                .reduce(|a, b| a.join(&b))
                .unwrap_or_default();
            let kind = plan.sources[i].join_kind.unwrap_or(JoinKind::Inner);
            joins.push(choose_strategy(
                ctx,
                &plan.sources[i],
                &outer_schema,
                kind,
                step_conjuncts,
            ));
        }
        plan.joins = joins;
        Ok(true)
    }
}

fn choose_strategy(
    ctx: &PlanContext<'_>,
    inner: &LogicalSource,
    outer_schema: &RowSchema,
    kind: JoinKind,
    step_conjuncts: Vec<Expr>,
) -> JoinStep {
    // Find equi-join conjuncts: inner.column = outer-only expression.
    let mut equi: Vec<(String, Expr)> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for c in &step_conjuncts {
        if let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        {
            if let Some((col, outer)) =
                equi_join_sides(left, right, &inner.alias, &inner.schema, outer_schema)
            {
                equi.push((col, outer));
                // The conjunct stays in the residual as well: a harmless
                // re-check that keeps outer-join semantics simple.
            }
        }
        residual.push(c.clone());
    }
    let strategy = if let SourceKind::Table { table, .. } = &inner.kind {
        // Prefer an index lookup on an equi-join column.
        let mut lookup = None;
        'outer: for (col, outer) in &equi {
            for idx in ctx.db.indexes_for(table) {
                if idx.def().leading_column().eq_ignore_ascii_case(col) {
                    lookup = Some(JoinStrategy::IndexLookup {
                        index: idx.def().name.clone(),
                        outer_key: outer.clone(),
                        inner_column: col.clone(),
                    });
                    break 'outer;
                }
            }
        }
        lookup.unwrap_or_else(|| hash_or_nested(&equi, &inner.alias))
    } else {
        hash_or_nested(&equi, &inner.alias)
    };
    JoinStep {
        kind,
        strategy,
        residual: Expr::from_conjuncts(residual),
        est_rows: None,
    }
}

fn hash_or_nested(equi: &[(String, Expr)], inner_alias: &str) -> JoinStrategy {
    if equi.is_empty() {
        JoinStrategy::NestedLoop
    } else {
        JoinStrategy::Hash {
            outer_keys: equi.iter().map(|(_, o)| o.clone()).collect(),
            inner_keys: equi
                .iter()
                .map(|(c, _)| Expr::Column {
                    qualifier: Some(inner_alias.to_string()),
                    name: c.clone(),
                })
                .collect(),
        }
    }
}

/// If `left = right` is an equi-join between the inner source and the outer
/// side, return `(inner column name, outer expression)`.
fn equi_join_sides(
    left: &Expr,
    right: &Expr,
    inner_alias: &str,
    inner_schema: &RowSchema,
    outer_schema: &RowSchema,
) -> Option<(String, Expr)> {
    let is_inner_col = |e: &Expr| -> Option<String> {
        if let Expr::Column { qualifier, name } = e {
            let matches_alias = qualifier
                .as_deref()
                .map(|q| q.eq_ignore_ascii_case(inner_alias))
                .unwrap_or_else(|| inner_schema.can_resolve(None, name));
            if matches_alias && inner_schema.can_resolve(qualifier.as_deref(), name) {
                return Some(name.clone());
            }
        }
        None
    };
    let is_outer_expr = |e: &Expr| -> bool {
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        !cols.is_empty()
            && cols
                .iter()
                .all(|(q, n)| outer_schema.can_resolve(q.as_deref(), n))
    };
    if let Some(col) = is_inner_col(left) {
        if is_outer_expr(right) {
            return Some((col, right.clone()));
        }
    }
    if let Some(col) = is_inner_col(right) {
        if is_outer_expr(left) {
            return Some((col, left.clone()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::rules::predicate_pushdown::PredicatePushdown;
    use crate::planner::rules::spatial_join::SpatialJoinRewrite;
    use crate::planner::rules::testkit::{bind_only, ctx, registry, test_db};

    #[test]
    fn equi_join_onto_indexed_table_uses_index_lookup() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select G.objID, GN.distance from photoObj as G \
             join fGetNearbyObjEq(185, -0.5, 1) as GN on G.objID = GN.objID",
        );
        PredicatePushdown
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        SpatialJoinRewrite
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        assert!(plan.joins.is_empty(), "before: no join steps yet");

        assert!(JoinStrategySelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap());
        assert_eq!(plan.joins.len(), 1);
        match &plan.joins[0].strategy {
            JoinStrategy::IndexLookup {
                index,
                inner_column,
                ..
            } => {
                assert_eq!(index, "pk_photoObj");
                assert_eq!(inner_column, "objID");
            }
            other => panic!("expected index-lookup join, got {other:?}"),
        }
    }

    #[test]
    fn self_join_without_index_hashes() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select r.objID, g.objID from photoObj r, photoObj g \
             where r.ra = g.ra and r.objID <> g.objID",
        );
        PredicatePushdown
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        JoinStrategySelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        assert_eq!(plan.joins.len(), 1);
        assert!(matches!(plan.joins[0].strategy, JoinStrategy::Hash { .. }));
        // Both join conjuncts were folded into the step.
        assert!(plan
            .conjuncts
            .iter()
            .all(|c| c.consumed || c.aliases.len() == 1));
    }

    #[test]
    fn cross_join_without_conjuncts_nested_loops() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select r.objID from photoObj r, fGetNearbyObjEq(1, 2, 3) n",
        );
        JoinStrategySelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        assert!(matches!(plan.joins[0].strategy, JoinStrategy::NestedLoop));
        assert!(plan.joins[0].residual.is_none());
    }

    #[test]
    fn outer_join_on_conjuncts_stay_with_their_step() {
        let db = test_db();
        let funcs = registry();
        let mut plan = bind_only(
            &db,
            &funcs,
            "select G.objID from photoObj as G \
             left join fGetNearbyObjEq(185, -0.5, 1) as GN on G.objID = GN.objID",
        );
        JoinStrategySelection
            .apply(&mut plan, &ctx(&db, &funcs))
            .unwrap();
        assert_eq!(plan.joins.len(), 1);
        assert_eq!(plan.joins[0].kind, JoinKind::Left);
        assert!(
            plan.joins[0].residual.is_some(),
            "the ON predicate must filter the step, not the whole result"
        );
    }
}
