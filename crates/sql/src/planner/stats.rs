//! Cardinality estimation: the selectivity model over the storage layer's
//! table statistics ([`skyserver_storage::TableStats`]).
//!
//! Two consumers:
//!
//! * the cost-based join-ordering rule
//!   ([`super::rules::cost_join_order`]) calls the `estimate_*` helpers
//!   while it searches join orders over the logical plan, and
//! * [`annotate_estimates`] stamps `est_rows` onto every node of the final
//!   physical plan, which `EXPLAIN` prints and the cardinality-accuracy
//!   harness pins against actual row counts.
//!
//! The model is deliberately classical (System-R style): attribute-value
//! independence between conjuncts, uniformity inside histogram buckets, and
//! NDV-based containment for equi-joins
//! (`|L ⋈ R| = |L|·|R| / max(ndv_L, ndv_R)`).  Unknown shapes fall back to
//! fixed default selectivities rather than failing.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::plan::{JoinStrategy, SelectPlan, SourceKind, SourcePlan};
use crate::planner::binder::LogicalSource;
use skyserver_storage::{ColumnStats, Database, Value};
use std::collections::HashMap;

/// Default selectivity for an equality whose column has no statistics.
const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Default selectivity for a range/unknown predicate (System R's 1/3).
const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Selectivity of a `LIKE 'prefix%'` predicate.
const LIKE_PREFIX_SELECTIVITY: f64 = 0.1;
/// Selectivity of a non-prefix LIKE (`%needle%`).
const LIKE_CONTAINS_SELECTIVITY: f64 = 0.25;
/// Selectivity of an opaque boolean function call (cone/HTM spatial
/// predicates and friends).
const FUNCTION_SELECTIVITY: f64 = 0.1;
/// Assumed output of a table-valued function (no statistics exist; the
/// spatial TVFs return small neighbourhoods by construction).
pub(crate) const TVF_DEFAULT_ROWS: f64 = 64.0;
/// Assumed output of a derived table whose inner plan carries no estimate.
const DERIVED_DEFAULT_ROWS: f64 = 256.0;

// ---------------------------------------------------------------------------
// Column-level lookups
// ---------------------------------------------------------------------------

/// Column statistics for `table.column`, if collected.
fn column_stats<'a>(db: &'a Database, table: &str, column: &str) -> Option<&'a ColumnStats> {
    let stats = db.table_stats(table)?;
    let t = db.table(table).ok()?;
    let ordinal = t
        .schema()
        .column_names()
        .iter()
        .position(|c| c.eq_ignore_ascii_case(column))?;
    stats.column(ordinal)
}

/// Live row count of a base table (always read fresh; statistics may be
/// stale after single-row DML).
fn live_rows(db: &Database, table: &str) -> f64 {
    db.table(table).map(|t| t.row_count() as f64).unwrap_or(0.0)
}

/// Distinct-count estimate for a column, with index- and heuristic
/// fallbacks when no statistics were collected.
pub(crate) fn column_ndv(db: &Database, table: &str, column: &str) -> f64 {
    if let Some(cs) = column_stats(db, table, column) {
        return (cs.ndv as f64).max(1.0);
    }
    let rows = live_rows(db, table);
    // A unique index leading on the column proves NDV == row count.
    let unique = db
        .indexes_for(table)
        .iter()
        .any(|i| i.def().unique && i.def().leading_column().eq_ignore_ascii_case(column));
    if unique {
        return rows.max(1.0);
    }
    (rows / 10.0).max(1.0)
}

/// Fraction of a column's non-null values strictly below `bound`, from the
/// histogram when present, min/max interpolation otherwise.
fn fraction_below(cs: &ColumnStats, bound: f64) -> f64 {
    if let Some(h) = &cs.histogram {
        return h.fraction_below(bound);
    }
    match (cs.min.as_f64(), cs.max.as_f64()) {
        (Some(lo), Some(hi)) if hi > lo => ((bound - lo) / (hi - lo)).clamp(0.0, 1.0),
        (Some(lo), Some(_)) => {
            if bound > lo {
                1.0
            } else {
                0.0
            }
        }
        _ => DEFAULT_RANGE_SELECTIVITY,
    }
}

/// A literal (or nothing) — variables and arithmetic are opaque at plan
/// time, so only literal bounds feed the histogram model.
fn literal_value(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Literal(v) => Some(v),
        _ => None,
    }
}

/// `column op literal` (possibly mirrored) over the given table.
fn column_vs_literal<'a>(
    left: &'a Expr,
    op: BinaryOp,
    right: &'a Expr,
) -> Option<(&'a str, BinaryOp, &'a Value)> {
    if let (Expr::Column { name, .. }, Some(v)) = (left, literal_value(right)) {
        return Some((name.as_str(), op, v));
    }
    if let (Some(v), Expr::Column { name, .. }) = (literal_value(left), right) {
        return Some((name.as_str(), op.mirror(), v));
    }
    None
}

// ---------------------------------------------------------------------------
// Single-table predicate selectivity
// ---------------------------------------------------------------------------

/// Selectivity of a pushed predicate over one base table's rows.
pub(crate) fn predicate_selectivity(db: &Database, table: &str, expr: &Expr) -> f64 {
    let s = match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => predicate_selectivity(db, table, left) * predicate_selectivity(db, table, right),
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => {
            let a = predicate_selectivity(db, table, left);
            let b = predicate_selectivity(db, table, right);
            a + b - a * b
        }
        Expr::Binary { left, op, right } if op.is_comparison() => {
            comparison_selectivity(db, table, left, *op, right)
        }
        Expr::Binary { .. } => DEFAULT_RANGE_SELECTIVITY,
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => 1.0 - predicate_selectivity(db, table, expr),
        Expr::Between {
            expr: inner,
            low,
            high,
            negated,
        } => {
            let s = between_selectivity(db, table, inner, low, high);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::InList {
            expr: inner,
            list,
            negated,
        } => {
            let eq = match inner.as_ref() {
                Expr::Column { name, .. } => 1.0 / column_ndv(db, table, name),
                _ => DEFAULT_EQ_SELECTIVITY,
            };
            let s = (eq * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::IsNull {
            expr: inner,
            negated,
        } => {
            let s = match inner.as_ref() {
                Expr::Column { name, .. } => null_fraction(db, table, name),
                _ => DEFAULT_EQ_SELECTIVITY,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::Like {
            pattern, negated, ..
        } => {
            let s = match literal_value(pattern).and_then(Value::as_str) {
                Some(p) if !p.starts_with(['%', '_']) => LIKE_PREFIX_SELECTIVITY,
                _ => LIKE_CONTAINS_SELECTIVITY,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::Function { .. } => FUNCTION_SELECTIVITY,
        _ => DEFAULT_RANGE_SELECTIVITY,
    };
    s.clamp(0.0, 1.0)
}

fn null_fraction(db: &Database, table: &str, column: &str) -> f64 {
    match (column_stats(db, table, column), db.table_stats(table)) {
        (Some(cs), Some(ts)) if ts.row_count > 0 => {
            (cs.null_count as f64 / ts.row_count as f64).clamp(0.0, 1.0)
        }
        _ => DEFAULT_EQ_SELECTIVITY,
    }
}

fn comparison_selectivity(
    db: &Database,
    table: &str,
    left: &Expr,
    op: BinaryOp,
    right: &Expr,
) -> f64 {
    let Some((column, op, value)) = column_vs_literal(left, op, right) else {
        return match op {
            BinaryOp::Eq => DEFAULT_EQ_SELECTIVITY,
            _ => DEFAULT_RANGE_SELECTIVITY,
        };
    };
    match op {
        BinaryOp::Eq => 1.0 / column_ndv(db, table, column),
        BinaryOp::NotEq => 1.0 - 1.0 / column_ndv(db, table, column),
        BinaryOp::Lt | BinaryOp::LtEq => match (column_stats(db, table, column), value.as_f64()) {
            (Some(cs), Some(v)) => fraction_below(cs, v),
            _ => DEFAULT_RANGE_SELECTIVITY,
        },
        BinaryOp::Gt | BinaryOp::GtEq => match (column_stats(db, table, column), value.as_f64()) {
            (Some(cs), Some(v)) => 1.0 - fraction_below(cs, v),
            _ => DEFAULT_RANGE_SELECTIVITY,
        },
        _ => DEFAULT_RANGE_SELECTIVITY,
    }
}

fn between_selectivity(db: &Database, table: &str, inner: &Expr, low: &Expr, high: &Expr) -> f64 {
    let (Expr::Column { name, .. }, Some(lo), Some(hi)) = (
        inner,
        literal_value(low).and_then(Value::as_f64),
        literal_value(high).and_then(Value::as_f64),
    ) else {
        return DEFAULT_RANGE_SELECTIVITY * 0.75;
    };
    match column_stats(db, table, name) {
        Some(cs) => (fraction_below(cs, hi) - fraction_below(cs, lo)).clamp(0.0, 1.0),
        None => DEFAULT_RANGE_SELECTIVITY * 0.75,
    }
}

// ---------------------------------------------------------------------------
// Source-level estimates
// ---------------------------------------------------------------------------

/// Estimated output rows of a base-table access: live rows × the
/// selectivity of every pushed conjunct.
fn table_estimate(db: &Database, table: &str, pushed: &[&Expr]) -> f64 {
    let base = live_rows(db, table);
    let sel: f64 = pushed
        .iter()
        .map(|e| predicate_selectivity(db, table, e))
        .product();
    (base * sel).min(base)
}

/// Estimated output rows of a still-logical source (used by the join-order
/// search before the physical plan exists).
pub(crate) fn estimate_logical_source(db: &Database, source: &LogicalSource) -> f64 {
    match &source.kind {
        SourceKind::Table { table, .. } => {
            let pushed: Vec<&Expr> = source.pushed.iter().collect();
            table_estimate(db, table, &pushed)
        }
        SourceKind::TableFunction { .. } => TVF_DEFAULT_ROWS,
        SourceKind::Derived { plan } => plan
            .est_rows
            .map(|n| n as f64)
            .unwrap_or(DERIVED_DEFAULT_ROWS),
    }
}

/// Estimated output rows of a physical source.
fn estimate_physical_source(db: &Database, source: &SourcePlan) -> f64 {
    match &source.kind {
        SourceKind::Table { table, .. } => {
            let pushed: Vec<&Expr> = source.pushed_predicate.iter().collect();
            table_estimate(db, table, &pushed)
        }
        SourceKind::TableFunction { .. } => TVF_DEFAULT_ROWS,
        SourceKind::Derived { plan } => plan
            .est_rows
            .map(|n| n as f64)
            .unwrap_or(DERIVED_DEFAULT_ROWS),
    }
}

// ---------------------------------------------------------------------------
// Join selectivity
// ---------------------------------------------------------------------------

/// Maps a lowercase alias to the base table backing it (functions and
/// derived tables are absent: they have no column statistics).
pub(crate) type AliasTables = HashMap<String, String>;

/// Build the alias → base-table map for a set of logical sources.
pub(crate) fn alias_tables(sources: &[LogicalSource]) -> AliasTables {
    sources
        .iter()
        .filter_map(|s| match &s.kind {
            SourceKind::Table { table, .. } => Some((s.alias.to_ascii_lowercase(), table.clone())),
            _ => None,
        })
        .collect()
}

/// NDV of a join-key expression: a plain column resolves through its
/// alias's base table, anything else is opaque.
fn key_ndv(db: &Database, aliases: &AliasTables, key: &Expr) -> Option<f64> {
    if let Expr::Column {
        qualifier: Some(q),
        name,
    } = key
    {
        if let Some(table) = aliases.get(&q.to_ascii_lowercase()) {
            return Some(column_ndv(db, table, name));
        }
    }
    None
}

/// Selectivity of one join conjunct over the cross product of its sides.
/// Column-to-column equalities use NDV containment; everything else falls
/// back to the single-table model's defaults.
pub(crate) fn join_conjunct_selectivity(db: &Database, aliases: &AliasTables, expr: &Expr) -> f64 {
    let s = match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            join_conjunct_selectivity(db, aliases, left)
                * join_conjunct_selectivity(db, aliases, right)
        }
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => {
            let a = join_conjunct_selectivity(db, aliases, left);
            let b = join_conjunct_selectivity(db, aliases, right);
            a + b - a * b
        }
        Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } => match (key_ndv(db, aliases, left), key_ndv(db, aliases, right)) {
            (Some(l), Some(r)) => 1.0 / l.max(r).max(1.0),
            (Some(n), None) | (None, Some(n)) => 1.0 / n.max(1.0),
            (None, None) => DEFAULT_EQ_SELECTIVITY,
        },
        Expr::Binary { op, .. } if op.is_comparison() => DEFAULT_RANGE_SELECTIVITY,
        Expr::Function { .. } => FUNCTION_SELECTIVITY,
        _ => DEFAULT_RANGE_SELECTIVITY,
    };
    s.clamp(0.0, 1.0)
}

// ---------------------------------------------------------------------------
// Physical-plan annotation
// ---------------------------------------------------------------------------

/// Round an estimate for display: at least one row whenever the input is
/// non-empty, never negative.
fn to_rows(est: f64) -> u64 {
    if est <= 0.0 {
        return 0;
    }
    est.round().max(1.0) as u64
}

/// Stamp `est_rows` onto every source, join step and the plan itself.
/// Runs unconditionally after finalization (even with cost-based ordering
/// disabled) so `EXPLAIN` always shows the model's cardinalities.
pub fn annotate_estimates(plan: &mut SelectPlan, db: &Database) {
    // Derived sub-plans were planned (and annotated) by their own
    // `plan_select` pass; only the enclosing plan is walked here.
    let aliases: AliasTables = plan
        .sources
        .iter()
        .filter_map(|s| match &s.kind {
            SourceKind::Table { table, .. } => Some((s.alias.to_ascii_lowercase(), table.clone())),
            _ => None,
        })
        .collect();

    let mut running = 0.0;
    for (i, source) in plan.sources.iter_mut().enumerate() {
        let est = estimate_physical_source(db, source);
        source.est_rows = Some(to_rows(est));
        if i == 0 {
            running = est;
        }
    }
    for (i, step) in plan.joins.iter_mut().enumerate() {
        let inner_est = plan.sources[i + 1].est_rows.unwrap_or(0) as f64;
        // The strategy's key equalities are re-checked in the residual, so
        // the residual alone carries the step's full selectivity (no
        // double counting).
        let sel = match (&step.residual, &step.strategy) {
            (Some(r), _) => join_conjunct_selectivity(db, &aliases, r),
            (None, JoinStrategy::IndexLookup { .. } | JoinStrategy::Hash { .. }) => {
                DEFAULT_EQ_SELECTIVITY
            }
            (None, JoinStrategy::NestedLoop) => 1.0,
        };
        running = running * inner_est * sel;
        step.est_rows = Some(to_rows(running));
    }
    if let Some(residual) = &plan.residual {
        running *= join_conjunct_selectivity(db, &aliases, residual);
    }
    // Post-join stages that change the output cardinality.
    if plan.has_aggregates && plan.group_by.is_empty() {
        running = 1.0;
    }
    if let Some(top) = plan.top {
        running = running.min(top as f64);
    }
    plan.est_rows = Some(to_rows(running));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::rules::testkit;

    #[test]
    fn equality_on_pk_estimates_one_row() {
        let db = testkit::test_db();
        // 10 rows, objID unique: eq selectivity is 1/10.
        let sel = predicate_selectivity(
            &db,
            "photoObj",
            &Expr::Binary {
                left: Box::new(Expr::col("objID")),
                op: BinaryOp::Eq,
                right: Box::new(Expr::int(3)),
            },
        );
        assert!((sel - 0.1).abs() < 1e-9, "selectivity {sel}");
    }

    #[test]
    fn ndv_falls_back_to_unique_index_then_heuristic() {
        let db = testkit::test_db();
        // No ANALYZE has run on the testkit db: objID has a unique index.
        assert_eq!(column_ndv(&db, "photoObj", "objID"), 10.0);
        // Non-indexed column: rows/10 floor.
        assert_eq!(column_ndv(&db, "photoObj", "flags"), 1.0);
    }

    #[test]
    fn analyze_sharpens_range_estimates() {
        let mut db = testkit::test_db();
        db.analyze_all();
        // ra is uniform over [180, 189]: ra < 184.5 is ~half the rows.
        let sel = predicate_selectivity(
            &db,
            "photoObj",
            &Expr::Binary {
                left: Box::new(Expr::col("ra")),
                op: BinaryOp::Lt,
                right: Box::new(Expr::Literal(Value::Float(184.5))),
            },
        );
        assert!(
            (0.3..=0.7).contains(&sel),
            "range selectivity {sel} not near 0.5"
        );
    }

    #[test]
    fn conjunction_multiplies_and_clamps() {
        let mut db = testkit::test_db();
        db.analyze_all();
        let both = predicate_selectivity(
            &db,
            "photoObj",
            &Expr::Binary {
                left: Box::new(Expr::Binary {
                    left: Box::new(Expr::col("type")),
                    op: BinaryOp::Eq,
                    right: Box::new(Expr::int(3)),
                }),
                op: BinaryOp::And,
                right: Box::new(Expr::Binary {
                    left: Box::new(Expr::col("type")),
                    op: BinaryOp::Eq,
                    right: Box::new(Expr::int(6)),
                }),
            },
        );
        let one = predicate_selectivity(
            &db,
            "photoObj",
            &Expr::Binary {
                left: Box::new(Expr::col("type")),
                op: BinaryOp::Eq,
                right: Box::new(Expr::int(3)),
            },
        );
        assert!(both < one, "AND must be more selective than one conjunct");
        assert!((0.0..=1.0).contains(&both));
    }
}
