//! The query planner / optimizer.
//!
//! Planning is a three-stage pipeline:
//!
//! 1. **Bind** ([`binder`]): resolve FROM names against the database and
//!    function registry, plan nested selects, and classify every WHERE / ON
//!    conjunct by the aliases it references.  The bound plan is naive — all
//!    tables are heap scans, views are materialised derived tables, no
//!    predicate has moved.
//! 2. **Rewrite** ([`rules`]): run the ordered rule pipeline.  Each named
//!    rule performs one of the rewrites the paper attributes to SQL Server's
//!    optimizer — view merging (§9.1.3), predicate pushdown, index-seek and
//!    covering-index selection, the Figure 10 table-function join rewrite,
//!    join-strategy choice, the Figure 11 parallel-scan fallback and TOP-n
//!    limit pushdown — and records whether it fired.
//! 3. **Finalize** (this module): expand projections against the final
//!    source order, assemble residual filters and emit the physical
//!    [`SelectPlan`] with the list of fired rules, which `EXPLAIN` reports.

pub mod annotate;
pub mod binder;
pub mod rules;
pub mod stats;

use crate::ast::{Expr, JoinKind, SelectItem, SelectStatement};
use crate::error::SqlError;
use crate::exec::compile::{
    collect_aggregates, compile, CompiledAggregate, CompiledExpr, CompiledPrograms, SortKey,
};
use crate::expr::RowSchema;
use crate::functions::FunctionRegistry;
use crate::plan::{JoinStep, JoinStrategy, SelectPlan, SourceKind, SourcePlan};
use binder::{LogicalPlan, PlanContext};
use skyserver_storage::Database;

/// Minimum table size before the parallel-scan rule fans a heap scan out
/// over worker threads.
pub const PARALLEL_SCAN_THRESHOLD: usize = 65_536;

/// Plans SELECT statements against a database + function registry.
pub struct Planner<'a> {
    /// The database planned against (tables, views, indexes, stats).
    pub db: &'a Database,
    /// Registered scalar and table-valued functions.
    pub functions: &'a FunctionRegistry,
    parallel_scan_threshold: usize,
    compile_expressions: bool,
    vectorized: bool,
    verify: bool,
    cost_based_ordering: bool,
    release: Option<String>,
    known_releases: Option<Vec<String>>,
}

impl<'a> Planner<'a> {
    /// Create a planner with the default rule pipeline.
    pub fn new(db: &'a Database, functions: &'a FunctionRegistry) -> Self {
        Planner {
            db,
            functions,
            parallel_scan_threshold: PARALLEL_SCAN_THRESHOLD,
            compile_expressions: true,
            vectorized: true,
            verify: cfg!(debug_assertions),
            cost_based_ordering: true,
            release: None,
            known_releases: None,
        }
    }

    /// Override the parallel-scan threshold (tests and benchmarks).
    pub fn with_parallel_scan_threshold(mut self, threshold: usize) -> Self {
        self.parallel_scan_threshold = threshold;
        self
    }

    /// Enable or disable expression-program compilation at finalization.
    /// Disabling it makes the executor fall back to the tree-walking
    /// interpreter everywhere — the recorded baseline `sql_bench` compares
    /// against.
    pub fn with_expression_compilation(mut self, compile: bool) -> Self {
        self.compile_expressions = compile;
        self
    }

    /// Enable or disable the vectorized batch pipeline for heap scans.
    /// Disabled, compiled plans evaluate row-at-a-time — the intermediate
    /// rung of the interpreted / compiled / vectorized equivalence tests.
    pub fn with_vectorized(mut self, vectorized: bool) -> Self {
        self.vectorized = vectorized;
        self
    }

    /// Enable or disable the post-finalization plan verifier
    /// ([`crate::verify::verify_plan`]).  On by default in debug builds
    /// (every test-planned statement is verified); release builds opt in
    /// via [`crate::SqlEngine::set_plan_verification`].
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Enable or disable the statistics-driven join-ordering rule.  Off,
    /// joins keep their syntactic order — the baseline `sql_bench` measures
    /// the optimizer against.
    pub fn with_cost_based_ordering(mut self, enabled: bool) -> Self {
        self.cost_based_ordering = enabled;
        self
    }

    /// Pin plans to a published release snapshot.  The caller (the engine)
    /// has already resolved `db` to that release's database; the planner
    /// stamps the name into the plan so EXPLAIN and the verifier see it.
    pub fn with_release(mut self, release: Option<String>) -> Self {
        self.release = release;
        self
    }

    /// Provide the catalog's published release names so the plan verifier
    /// can check that a pinned release actually exists.  `None` (the
    /// default) skips the check — standalone planner tests have no catalog.
    pub fn with_known_releases(mut self, releases: Vec<String>) -> Self {
        self.known_releases = Some(releases);
        self
    }

    fn context(&self) -> PlanContext<'a> {
        PlanContext {
            db: self.db,
            functions: self.functions,
            parallel_scan_threshold: self.parallel_scan_threshold,
            cost_based_ordering: self.cost_based_ordering,
        }
    }

    /// Plan a SELECT statement: bind, run the rule pipeline, finalize.
    pub fn plan_select(&self, stmt: &SelectStatement) -> Result<SelectPlan, SqlError> {
        // A statement-level `AS OF` must agree with the release the planner
        // (and therefore `self.db`) is already pinned to; a nested select
        // cannot hop to a different snapshot mid-plan.
        let release = match (&stmt.as_of, &self.release) {
            (Some(a), Some(r)) if !a.eq_ignore_ascii_case(r) => {
                return Err(SqlError::Plan(format!(
                    "conflicting AS OF releases in one statement: {a} vs {r}"
                )))
            }
            (Some(a), _) => Some(a.clone()),
            (None, r) => r.clone(),
        };
        let ctx = self.context();
        let mut logical = binder::bind(stmt, &ctx, &|nested| self.plan_select(nested))?;
        let pipeline = rules::default_pipeline();
        rules::run_pipeline(&mut logical, &ctx, &pipeline)?;
        let mut plan = finalize(logical)?;
        plan.release = release;
        // Zone constraints and scan columns are computed regardless of the
        // execution mode so all three executors (interpreted, compiled,
        // vectorized) prune and count identically.
        annotate::annotate(&mut plan, self.db);
        // Estimated cardinalities are annotated unconditionally: EXPLAIN
        // shows est_rows even when cost-based ordering is off.
        stats::annotate_estimates(&mut plan, self.db);
        if self.compile_expressions {
            plan.programs = build_programs(&plan, &ctx);
            plan.vectorized = self.vectorized;
        }
        if self.verify {
            let report = crate::verify::verify_plan_with_releases(
                &plan,
                self.db,
                self.known_releases.as_deref(),
            );
            if !report.is_clean() {
                return Err(SqlError::Plan(format!(
                    "plan verification failed: {}",
                    report.render_violations()
                )));
            }
        }
        Ok(plan)
    }
}

/// Turn the rewritten logical plan into the physical [`SelectPlan`].
fn finalize(logical: LogicalPlan) -> Result<SelectPlan, SqlError> {
    let LogicalPlan {
        sources,
        conjuncts,
        joins,
        fromless,
        selection,
        select_items,
        group_by,
        having,
        has_aggregates,
        order_by,
        top,
        distinct,
        into,
        rules_fired,
        ..
    } = logical;

    // When the join-strategy rule did not run (unit tests exercising rule
    // prefixes), fall back to nested loops with everything in the residual.
    let joins: Vec<JoinStep> = if joins.len() == sources.len().saturating_sub(1) {
        joins
    } else {
        sources
            .iter()
            .skip(1)
            .map(|s| JoinStep {
                kind: s.join_kind.unwrap_or(JoinKind::Inner),
                strategy: JoinStrategy::NestedLoop,
                residual: Expr::from_conjuncts(s.outer_on.clone()),
                est_rows: None,
            })
            .collect()
    };

    let mut residual_conjuncts: Vec<Expr> = conjuncts
        .into_iter()
        .filter(|c| !c.consumed)
        .map(|c| c.expr)
        .collect();
    if fromless {
        if let Some(w) = selection {
            residual_conjuncts.push(w);
        }
    }

    let input_schema: RowSchema = sources
        .iter()
        .map(|s| s.schema.clone())
        .reduce(|a, b| a.join(&b))
        .unwrap_or_default();
    let projections = expand_projections(&select_items, &input_schema)?;

    let physical_sources: Vec<SourcePlan> = sources
        .into_iter()
        .map(|s| SourcePlan {
            alias: s.alias,
            kind: s.kind,
            pushed_predicate: Expr::from_conjuncts(s.pushed),
            schema: s.schema,
            limit_hint: s.limit_hint,
            zone_constraints: Vec::new(),
            scan_columns: None,
            est_rows: None,
        })
        .collect();

    Ok(SelectPlan {
        sources: physical_sources,
        joins,
        residual: Expr::from_conjuncts(residual_conjuncts),
        projections,
        select_items,
        group_by,
        having,
        has_aggregates,
        order_by,
        top,
        distinct,
        into,
        input_schema,
        rules_fired,
        programs: None,
        vectorized: false,
        est_rows: None,
        release: None,
    })
}

/// The schema [`crate::executor::Executor::execute_source`] materializes a
/// source with: heap/parallel/seek scans produce all table columns, covering
/// scans the covered subset, table functions and derived tables their bound
/// schema.  Program compilation resolves ordinals through the executor's own
/// schema-derivation helpers ([`crate::executor::scan_schema`]), so the two
/// sides cannot drift apart.
pub(crate) fn exec_source_schema(source: &SourcePlan, db: &Database) -> Option<RowSchema> {
    match &source.kind {
        SourceKind::Table { table, path } => {
            crate::executor::scan_schema(db, &source.alias, table, path).ok()
        }
        _ => Some(source.schema.clone()),
    }
}

/// The full heap schema of a base-table source — what the executor uses for
/// the inner side of an index-lookup join (it fetches whole heap rows by
/// RowId there, regardless of the source's chosen access path).
pub(crate) fn full_table_schema(source: &SourcePlan, db: &Database) -> Option<RowSchema> {
    match &source.kind {
        SourceKind::Table { table, .. } => {
            crate::executor::heap_schema(db, &source.alias, table).ok()
        }
        _ => None,
    }
}

/// Compile every hot expression of a finalized plan into ordinal-resolved
/// programs (the tentpole of the compiled execution path).  Any slot whose
/// compilation fails — e.g. a projection naming an unknown column, which
/// only errors at execution time — stays `None` and the executor interprets
/// that expression instead, so compilation can never change results.
fn build_programs(plan: &SelectPlan, ctx: &PlanContext<'_>) -> Option<CompiledPrograms> {
    let db = ctx.db;
    let funcs = ctx.functions;
    let mut programs = CompiledPrograms::default();

    // Reconstruct the executor's runtime schemas: per-source predicate
    // schemas, the accumulated (combined) schema before/after each join.
    let mut pred_schemas: Vec<RowSchema> = Vec::with_capacity(plan.sources.len());
    let mut combined = if plan.sources.is_empty() {
        RowSchema::default()
    } else {
        let s = exec_source_schema(&plan.sources[0], db)?;
        pred_schemas.push(s.clone());
        s
    };
    let mut outer_schemas: Vec<RowSchema> = Vec::with_capacity(plan.joins.len());
    let mut combined_after: Vec<RowSchema> = Vec::with_capacity(plan.joins.len());
    for (i, step) in plan.joins.iter().enumerate() {
        let inner = &plan.sources[i + 1];
        outer_schemas.push(combined.clone());
        let inner_schema = match &step.strategy {
            // Index-lookup joins fetch whole heap rows from the inner table.
            JoinStrategy::IndexLookup { .. } => full_table_schema(inner, db)?,
            _ => exec_source_schema(inner, db)?,
        };
        pred_schemas.push(inner_schema.clone());
        combined = combined.join(&inner_schema);
        combined_after.push(combined.clone());
    }

    for (i, source) in plan.sources.iter().enumerate() {
        programs.source_predicates.push(
            source
                .pushed_predicate
                .as_ref()
                .and_then(|p| compile(p, &pred_schemas[i], funcs).ok()),
        );
    }
    for (i, step) in plan.joins.iter().enumerate() {
        let (outer_key, hash_keys) = match &step.strategy {
            JoinStrategy::IndexLookup { outer_key, .. } => {
                (compile(outer_key, &outer_schemas[i], funcs).ok(), None)
            }
            JoinStrategy::Hash {
                outer_keys,
                inner_keys,
            } => {
                let outer: Option<Vec<CompiledExpr>> = outer_keys
                    .iter()
                    .map(|k| compile(k, &outer_schemas[i], funcs).ok())
                    .collect();
                let inner: Option<Vec<CompiledExpr>> = inner_keys
                    .iter()
                    .map(|k| compile(k, &pred_schemas[i + 1], funcs).ok())
                    .collect();
                (None, outer.zip(inner))
            }
            JoinStrategy::NestedLoop => (None, None),
        };
        programs.join_outer_keys.push(outer_key);
        programs.join_hash_keys.push(hash_keys);
        programs.join_residuals.push(
            step.residual
                .as_ref()
                .and_then(|r| compile(r, &combined_after[i], funcs).ok()),
        );
    }
    programs.residual = plan
        .residual
        .as_ref()
        .and_then(|r| compile(r, &combined, funcs).ok());
    programs.projections = plan
        .projections
        .iter()
        .map(|(e, _)| compile(e, &combined, funcs).ok())
        .collect();
    programs.group_by = plan
        .group_by
        .iter()
        .map(|g| compile(g, &combined, funcs).ok())
        .collect();
    programs.having = plan
        .having
        .as_ref()
        .and_then(|h| compile(h, &combined, funcs).ok());

    if plan.has_aggregates || !plan.group_by.is_empty() {
        let mut agg_exprs: Vec<Expr> = Vec::new();
        for (expr, _) in &plan.projections {
            collect_aggregates(expr, &mut agg_exprs);
        }
        if let Some(h) = &plan.having {
            collect_aggregates(h, &mut agg_exprs);
        }
        programs.aggregates = agg_exprs
            .iter()
            .map(|agg| {
                let Expr::Function { name, args } = agg else {
                    return None;
                };
                let lower = name.to_ascii_lowercase();
                let count_star =
                    lower == "count" && matches!(args.first(), Some(Expr::Star) | None);
                let arg = if count_star {
                    None
                } else {
                    Some(compile(args.first()?, &combined, funcs).ok()?)
                };
                Some(CompiledAggregate {
                    key: crate::expr::aggregate_key(agg),
                    name: name.clone(),
                    lower,
                    count_star,
                    arg,
                })
            })
            .collect();
    }

    if !plan.order_by.is_empty() {
        let output_names: Vec<&str> = plan.projections.iter().map(|(_, n)| n.as_str()).collect();
        programs.order_by = plan
            .order_by
            .iter()
            .map(|item| match &item.expr {
                Expr::Column {
                    qualifier: None,
                    name,
                } if output_names.iter().any(|n| n.eq_ignore_ascii_case(name)) => {
                    let idx = output_names
                        .iter()
                        .position(|n| n.eq_ignore_ascii_case(name))
                        .expect("checked above");
                    Some(SortKey::Output(idx))
                }
                e => compile(e, &combined, funcs).ok().map(SortKey::Input),
            })
            .collect();
    }

    Some(programs)
}

/// Expand the select list against the combined input schema.
fn expand_projections(
    items: &[SelectItem],
    schema: &RowSchema,
) -> Result<Vec<(Expr, String)>, SqlError> {
    let mut out = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (q, name) in schema.columns() {
                    out.push((
                        Expr::Column {
                            qualifier: q.clone(),
                            name: name.clone(),
                        },
                        name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut found = false;
                for (cq, name) in schema.columns() {
                    if cq
                        .as_deref()
                        .map(|c| c.eq_ignore_ascii_case(q))
                        .unwrap_or(false)
                    {
                        found = true;
                        out.push((
                            Expr::Column {
                                qualifier: cq.clone(),
                                name: name.clone(),
                            },
                            name.clone(),
                        ));
                    }
                }
                if !found {
                    return Err(SqlError::Plan(format!("unknown alias {q} in {q}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

fn default_name(expr: &Expr, index: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.split('.').next_back().unwrap_or(name).to_string(),
        _ => format!("col{}", index + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::rules::testkit::{registry, test_db};
    use super::*;
    use crate::parser::parse_select;
    use crate::plan::{AccessPath, PlanClass, SourceKind};

    fn plan(db: &Database, sql: &str) -> SelectPlan {
        let funcs = registry();
        let planner = Planner::new(db, &funcs);
        planner.plan_select(&parse_select(sql).unwrap()).unwrap()
    }

    #[test]
    fn equality_on_pk_becomes_index_seek() {
        let db = test_db();
        let p = plan(&db, "select ra from photoObj where objID = 5");
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => match path {
                AccessPath::IndexSeek { index, bounds } => {
                    assert_eq!(index, "pk_photoObj");
                    assert!(bounds.equals.is_some());
                }
                other => panic!("expected index seek, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
        assert_eq!(p.plan_class(), PlanClass::IndexSeek);
        assert_eq!(p.rules_fired, vec!["predicate_pushdown", "index_seek"]);
    }

    #[test]
    fn range_on_htm_becomes_index_seek() {
        let db = test_db();
        let p = plan(
            &db,
            "select ra, dec from photoObj where htmID between 1000 and 1005",
        );
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => match path {
                AccessPath::IndexSeek { index, bounds } => {
                    assert_eq!(index, "ix_htm");
                    assert!(bounds.lower.is_some() && bounds.upper.is_some());
                }
                other => panic!("expected index seek, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn covering_index_used_when_no_sarg() {
        let db = test_db();
        // type is not sargable here (expression), but the query touches only
        // type/modelMag_r/objID which ix_type_mag covers.
        let p = plan(
            &db,
            "select objID, modelMag_r from photoObj where type * 2 = 6",
        );
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => {
                assert_eq!(
                    path,
                    &AccessPath::CoveringIndexScan {
                        index: "ix_type_mag".into()
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(p.rules_fired.contains(&"covering_index"));
    }

    #[test]
    fn full_scan_when_nothing_helps() {
        let db = test_db();
        let p = plan(&db, "select * from photoObj where ra + dec > 100");
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => assert_eq!(path, &AccessPath::HeapScan),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.plan_class(), PlanClass::Scan);
    }

    #[test]
    fn view_merges_to_base_table_with_extra_predicates() {
        let db = test_db();
        let p = plan(&db, "select objID from Galaxy where modelMag_r < 19");
        assert_eq!(p.sources.len(), 1);
        match &p.sources[0].kind {
            SourceKind::Table { table, .. } => assert_eq!(table, "photoObj"),
            other => panic!("expected merged view, got {other:?}"),
        }
        // Both the view predicate and the user predicate are pushed.
        let pushed = p.sources[0].pushed_predicate.as_ref().unwrap();
        let n = pushed.conjuncts().len();
        assert_eq!(n, 3, "type=3, flags check, modelMag_r<19");
        assert!(p.rules_fired.contains(&"view_merge"));
    }

    #[test]
    fn tvf_drives_index_lookup_join() {
        let db = test_db();
        let p = plan(
            &db,
            "select G.objID, GN.distance from Galaxy as G \
             join fGetNearbyObjEq(185, -0.5, 1) as GN on G.objID = GN.objID \
             where (G.flags & 64) = 0 order by distance",
        );
        // The TVF should be the driving source.
        assert!(matches!(
            p.sources[0].kind,
            SourceKind::TableFunction { .. }
        ));
        assert_eq!(p.joins.len(), 1);
        match &p.joins[0].strategy {
            JoinStrategy::IndexLookup { index, .. } => assert_eq!(index, "pk_photoObj"),
            other => panic!("expected index lookup join, got {other:?}"),
        }
        let rendered = p.render();
        assert!(rendered.contains("TableFunction(fGetNearbyObjEq"));
        assert!(rendered.contains("index lookup pk_photoObj"));
        // The Figure 10 shape comes from these rules in this order (the
        // Galaxy view's `type = 3` qualifier is sargable on ix_type_mag, so
        // the seek rule fires for the photo side too).
        assert_eq!(
            p.rules_fired,
            vec![
                "view_merge",
                "predicate_pushdown",
                "index_seek",
                "spatial_join_rewrite",
                "join_strategy",
            ]
        );
    }

    #[test]
    fn self_join_uses_hash_strategy_without_index() {
        let db = test_db();
        let p = plan(
            &db,
            "select r.objID, g.objID from photoObj r, photoObj g \
             where r.ra = g.ra and r.objID <> g.objID",
        );
        assert_eq!(p.sources.len(), 2);
        assert_eq!(p.joins.len(), 1);
        assert!(matches!(p.joins[0].strategy, JoinStrategy::Hash { .. }));
    }

    #[test]
    fn projections_expand_wildcards() {
        let db = test_db();
        let p = plan(&db, "select * from photoObj");
        assert_eq!(p.projections.len(), 7);
        let p2 = plan(&db, "select p.* from photoObj p");
        assert_eq!(p2.projections.len(), 7);
    }

    #[test]
    fn aggregates_detected() {
        let db = test_db();
        let p = plan(&db, "select count(*) from photoObj where type = 3");
        assert!(p.has_aggregates);
        let p2 = plan(
            &db,
            "select type, avg(modelMag_r) from photoObj group by type",
        );
        assert!(p2.has_aggregates);
        assert_eq!(p2.group_by.len(), 1);
    }

    #[test]
    fn errors_for_unknown_names() {
        let db = test_db();
        let funcs = registry();
        let planner = Planner::new(&db, &funcs);
        assert!(planner
            .plan_select(&parse_select("select * from noSuchTable").unwrap())
            .is_err());
        assert!(
            planner
                .plan_select(&parse_select("select noSuchColumn from photoObj").unwrap())
                .is_ok(),
            "projection binding happens at execution"
        );
        assert!(planner
            .plan_select(&parse_select("select * from photoObj where noSuchColumn = 1").unwrap())
            .is_err());
        assert!(planner
            .plan_select(&parse_select("select * from fNoSuchTvf(1)").unwrap())
            .is_err());
    }

    #[test]
    fn parallel_scan_threshold_is_honoured() {
        let db = test_db();
        let funcs = registry();
        let planner = Planner::new(&db, &funcs).with_parallel_scan_threshold(5);
        let p = planner
            .plan_select(&parse_select("select * from photoObj where ra + dec > 100").unwrap())
            .unwrap();
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => {
                assert!(matches!(path, AccessPath::ParallelHeapScan { .. }));
            }
            other => panic!("{other:?}"),
        }
        assert!(p.rules_fired.contains(&"parallel_scan_fallback"));
        assert_eq!(
            p.plan_class(),
            PlanClass::Scan,
            "parallel scans are still scans"
        );
    }

    #[test]
    fn top_without_sort_gets_a_limit_hint() {
        let db = test_db();
        let p = plan(&db, "select top 2 objID from photoObj");
        assert_eq!(p.sources[0].limit_hint, Some(2));
        assert!(p.rules_fired.contains(&"limit_pushdown"));
        let p2 = plan(&db, "select top 2 objID from photoObj order by objID");
        assert_eq!(p2.sources[0].limit_hint, None);
    }
}
