//! The query planner / optimizer.
//!
//! Planning is a three-stage pipeline:
//!
//! 1. **Bind** ([`binder`]): resolve FROM names against the database and
//!    function registry, plan nested selects, and classify every WHERE / ON
//!    conjunct by the aliases it references.  The bound plan is naive — all
//!    tables are heap scans, views are materialised derived tables, no
//!    predicate has moved.
//! 2. **Rewrite** ([`rules`]): run the ordered rule pipeline.  Each named
//!    rule performs one of the rewrites the paper attributes to SQL Server's
//!    optimizer — view merging (§9.1.3), predicate pushdown, index-seek and
//!    covering-index selection, the Figure 10 table-function join rewrite,
//!    join-strategy choice, the Figure 11 parallel-scan fallback and TOP-n
//!    limit pushdown — and records whether it fired.
//! 3. **Finalize** (this module): expand projections against the final
//!    source order, assemble residual filters and emit the physical
//!    [`SelectPlan`] with the list of fired rules, which `EXPLAIN` reports.

pub mod binder;
pub mod rules;

use crate::ast::{Expr, JoinKind, SelectItem, SelectStatement};
use crate::error::SqlError;
use crate::expr::RowSchema;
use crate::functions::FunctionRegistry;
use crate::plan::{JoinStep, JoinStrategy, SelectPlan, SourcePlan};
use binder::{LogicalPlan, PlanContext};
use skyserver_storage::Database;

/// Minimum table size before the parallel-scan rule fans a heap scan out
/// over worker threads.
pub const PARALLEL_SCAN_THRESHOLD: usize = 65_536;

/// Plans SELECT statements against a database + function registry.
pub struct Planner<'a> {
    /// The database planned against (tables, views, indexes, stats).
    pub db: &'a Database,
    /// Registered scalar and table-valued functions.
    pub functions: &'a FunctionRegistry,
    parallel_scan_threshold: usize,
}

impl<'a> Planner<'a> {
    /// Create a planner with the default rule pipeline.
    pub fn new(db: &'a Database, functions: &'a FunctionRegistry) -> Self {
        Planner {
            db,
            functions,
            parallel_scan_threshold: PARALLEL_SCAN_THRESHOLD,
        }
    }

    /// Override the parallel-scan threshold (tests and benchmarks).
    pub fn with_parallel_scan_threshold(mut self, threshold: usize) -> Self {
        self.parallel_scan_threshold = threshold;
        self
    }

    fn context(&self) -> PlanContext<'a> {
        PlanContext {
            db: self.db,
            functions: self.functions,
            parallel_scan_threshold: self.parallel_scan_threshold,
        }
    }

    /// Plan a SELECT statement: bind, run the rule pipeline, finalize.
    pub fn plan_select(&self, stmt: &SelectStatement) -> Result<SelectPlan, SqlError> {
        let ctx = self.context();
        let mut logical = binder::bind(stmt, &ctx, &|nested| self.plan_select(nested))?;
        let pipeline = rules::default_pipeline();
        rules::run_pipeline(&mut logical, &ctx, &pipeline)?;
        finalize(logical)
    }
}

/// Turn the rewritten logical plan into the physical [`SelectPlan`].
fn finalize(logical: LogicalPlan) -> Result<SelectPlan, SqlError> {
    let LogicalPlan {
        sources,
        conjuncts,
        joins,
        fromless,
        selection,
        select_items,
        group_by,
        having,
        has_aggregates,
        order_by,
        top,
        distinct,
        into,
        rules_fired,
        ..
    } = logical;

    // When the join-strategy rule did not run (unit tests exercising rule
    // prefixes), fall back to nested loops with everything in the residual.
    let joins: Vec<JoinStep> = if joins.len() == sources.len().saturating_sub(1) {
        joins
    } else {
        sources
            .iter()
            .skip(1)
            .map(|s| JoinStep {
                kind: s.join_kind.unwrap_or(JoinKind::Inner),
                strategy: JoinStrategy::NestedLoop,
                residual: Expr::from_conjuncts(s.outer_on.clone()),
            })
            .collect()
    };

    let mut residual_conjuncts: Vec<Expr> = conjuncts
        .into_iter()
        .filter(|c| !c.consumed)
        .map(|c| c.expr)
        .collect();
    if fromless {
        if let Some(w) = selection {
            residual_conjuncts.push(w);
        }
    }

    let input_schema: RowSchema = sources
        .iter()
        .map(|s| s.schema.clone())
        .reduce(|a, b| a.join(&b))
        .unwrap_or_default();
    let projections = expand_projections(&select_items, &input_schema)?;

    let physical_sources: Vec<SourcePlan> = sources
        .into_iter()
        .map(|s| SourcePlan {
            alias: s.alias,
            kind: s.kind,
            pushed_predicate: Expr::from_conjuncts(s.pushed),
            schema: s.schema,
            limit_hint: s.limit_hint,
        })
        .collect();

    Ok(SelectPlan {
        sources: physical_sources,
        joins,
        residual: Expr::from_conjuncts(residual_conjuncts),
        projections,
        select_items,
        group_by,
        having,
        has_aggregates,
        order_by,
        top,
        distinct,
        into,
        input_schema,
        rules_fired,
    })
}

/// Expand the select list against the combined input schema.
fn expand_projections(
    items: &[SelectItem],
    schema: &RowSchema,
) -> Result<Vec<(Expr, String)>, SqlError> {
    let mut out = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (q, name) in schema.columns() {
                    out.push((
                        Expr::Column {
                            qualifier: q.clone(),
                            name: name.clone(),
                        },
                        name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut found = false;
                for (cq, name) in schema.columns() {
                    if cq
                        .as_deref()
                        .map(|c| c.eq_ignore_ascii_case(q))
                        .unwrap_or(false)
                    {
                        found = true;
                        out.push((
                            Expr::Column {
                                qualifier: cq.clone(),
                                name: name.clone(),
                            },
                            name.clone(),
                        ));
                    }
                }
                if !found {
                    return Err(SqlError::Plan(format!("unknown alias {q} in {q}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

fn default_name(expr: &Expr, index: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.split('.').next_back().unwrap_or(name).to_string(),
        _ => format!("col{}", index + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::rules::testkit::{registry, test_db};
    use super::*;
    use crate::parser::parse_select;
    use crate::plan::{AccessPath, PlanClass, SourceKind};

    fn plan(db: &Database, sql: &str) -> SelectPlan {
        let funcs = registry();
        let planner = Planner::new(db, &funcs);
        planner.plan_select(&parse_select(sql).unwrap()).unwrap()
    }

    #[test]
    fn equality_on_pk_becomes_index_seek() {
        let db = test_db();
        let p = plan(&db, "select ra from photoObj where objID = 5");
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => match path {
                AccessPath::IndexSeek { index, bounds } => {
                    assert_eq!(index, "pk_photoObj");
                    assert!(bounds.equals.is_some());
                }
                other => panic!("expected index seek, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
        assert_eq!(p.plan_class(), PlanClass::IndexSeek);
        assert_eq!(p.rules_fired, vec!["predicate_pushdown", "index_seek"]);
    }

    #[test]
    fn range_on_htm_becomes_index_seek() {
        let db = test_db();
        let p = plan(
            &db,
            "select ra, dec from photoObj where htmID between 1000 and 1005",
        );
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => match path {
                AccessPath::IndexSeek { index, bounds } => {
                    assert_eq!(index, "ix_htm");
                    assert!(bounds.lower.is_some() && bounds.upper.is_some());
                }
                other => panic!("expected index seek, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn covering_index_used_when_no_sarg() {
        let db = test_db();
        // type is not sargable here (expression), but the query touches only
        // type/modelMag_r/objID which ix_type_mag covers.
        let p = plan(
            &db,
            "select objID, modelMag_r from photoObj where type * 2 = 6",
        );
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => {
                assert_eq!(
                    path,
                    &AccessPath::CoveringIndexScan {
                        index: "ix_type_mag".into()
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(p.rules_fired.contains(&"covering_index"));
    }

    #[test]
    fn full_scan_when_nothing_helps() {
        let db = test_db();
        let p = plan(&db, "select * from photoObj where ra + dec > 100");
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => assert_eq!(path, &AccessPath::HeapScan),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.plan_class(), PlanClass::Scan);
    }

    #[test]
    fn view_merges_to_base_table_with_extra_predicates() {
        let db = test_db();
        let p = plan(&db, "select objID from Galaxy where modelMag_r < 19");
        assert_eq!(p.sources.len(), 1);
        match &p.sources[0].kind {
            SourceKind::Table { table, .. } => assert_eq!(table, "photoObj"),
            other => panic!("expected merged view, got {other:?}"),
        }
        // Both the view predicate and the user predicate are pushed.
        let pushed = p.sources[0].pushed_predicate.as_ref().unwrap();
        let n = pushed.conjuncts().len();
        assert_eq!(n, 3, "type=3, flags check, modelMag_r<19");
        assert!(p.rules_fired.contains(&"view_merge"));
    }

    #[test]
    fn tvf_drives_index_lookup_join() {
        let db = test_db();
        let p = plan(
            &db,
            "select G.objID, GN.distance from Galaxy as G \
             join fGetNearbyObjEq(185, -0.5, 1) as GN on G.objID = GN.objID \
             where (G.flags & 64) = 0 order by distance",
        );
        // The TVF should be the driving source.
        assert!(matches!(
            p.sources[0].kind,
            SourceKind::TableFunction { .. }
        ));
        assert_eq!(p.joins.len(), 1);
        match &p.joins[0].strategy {
            JoinStrategy::IndexLookup { index, .. } => assert_eq!(index, "pk_photoObj"),
            other => panic!("expected index lookup join, got {other:?}"),
        }
        let rendered = p.render();
        assert!(rendered.contains("TableFunction(fGetNearbyObjEq"));
        assert!(rendered.contains("index lookup pk_photoObj"));
        // The Figure 10 shape comes from these rules in this order (the
        // Galaxy view's `type = 3` qualifier is sargable on ix_type_mag, so
        // the seek rule fires for the photo side too).
        assert_eq!(
            p.rules_fired,
            vec![
                "view_merge",
                "predicate_pushdown",
                "index_seek",
                "spatial_join_rewrite",
                "join_strategy",
            ]
        );
    }

    #[test]
    fn self_join_uses_hash_strategy_without_index() {
        let db = test_db();
        let p = plan(
            &db,
            "select r.objID, g.objID from photoObj r, photoObj g \
             where r.ra = g.ra and r.objID <> g.objID",
        );
        assert_eq!(p.sources.len(), 2);
        assert_eq!(p.joins.len(), 1);
        assert!(matches!(p.joins[0].strategy, JoinStrategy::Hash { .. }));
    }

    #[test]
    fn projections_expand_wildcards() {
        let db = test_db();
        let p = plan(&db, "select * from photoObj");
        assert_eq!(p.projections.len(), 7);
        let p2 = plan(&db, "select p.* from photoObj p");
        assert_eq!(p2.projections.len(), 7);
    }

    #[test]
    fn aggregates_detected() {
        let db = test_db();
        let p = plan(&db, "select count(*) from photoObj where type = 3");
        assert!(p.has_aggregates);
        let p2 = plan(
            &db,
            "select type, avg(modelMag_r) from photoObj group by type",
        );
        assert!(p2.has_aggregates);
        assert_eq!(p2.group_by.len(), 1);
    }

    #[test]
    fn errors_for_unknown_names() {
        let db = test_db();
        let funcs = registry();
        let planner = Planner::new(&db, &funcs);
        assert!(planner
            .plan_select(&parse_select("select * from noSuchTable").unwrap())
            .is_err());
        assert!(
            planner
                .plan_select(&parse_select("select noSuchColumn from photoObj").unwrap())
                .is_ok(),
            "projection binding happens at execution"
        );
        assert!(planner
            .plan_select(&parse_select("select * from photoObj where noSuchColumn = 1").unwrap())
            .is_err());
        assert!(planner
            .plan_select(&parse_select("select * from fNoSuchTvf(1)").unwrap())
            .is_err());
    }

    #[test]
    fn parallel_scan_threshold_is_honoured() {
        let db = test_db();
        let funcs = registry();
        let planner = Planner::new(&db, &funcs).with_parallel_scan_threshold(5);
        let p = planner
            .plan_select(&parse_select("select * from photoObj where ra + dec > 100").unwrap())
            .unwrap();
        match &p.sources[0].kind {
            SourceKind::Table { path, .. } => {
                assert!(matches!(path, AccessPath::ParallelHeapScan { .. }));
            }
            other => panic!("{other:?}"),
        }
        assert!(p.rules_fired.contains(&"parallel_scan_fallback"));
        assert_eq!(
            p.plan_class(),
            PlanClass::Scan,
            "parallel scans are still scans"
        );
    }

    #[test]
    fn top_without_sort_gets_a_limit_hint() {
        let db = test_db();
        let p = plan(&db, "select top 2 objID from photoObj");
        assert_eq!(p.sources[0].limit_hint, Some(2));
        assert!(p.rules_fired.contains(&"limit_pushdown"));
        let p2 = plan(&db, "select top 2 objID from photoObj order by objID");
        assert_eq!(p2.sources[0].limit_hint, None);
    }
}
