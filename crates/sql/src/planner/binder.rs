//! Name resolution: from an AST `SELECT` to the naive [`LogicalPlan`] the
//! optimizer rules rewrite.
//!
//! The binder makes **no** optimization decisions.  Every base table is
//! bound as a full heap scan, every view as a materialised derived table
//! (remembering the view text so the view-merge rule can collapse it later),
//! and every conjunct from WHERE / inner-join ON clauses is collected into
//! one classified pool.  The rule pipeline then rewrites this structure into
//! the physical shape `EXPLAIN` shows.

use crate::ast::{Expr, FromItem, JoinKind, SelectItem, SelectStatement, TableSource};
use crate::error::SqlError;
use crate::expr::RowSchema;
use crate::functions::FunctionRegistry;
use crate::parser::parse_select;
use crate::plan::{AccessPath, JoinStep, SourceKind};
use skyserver_storage::Database;
use std::collections::HashSet;

/// Everything the rules need to look at besides the plan itself.
pub struct PlanContext<'a> {
    /// The database (tables, views, indexes, statistics).
    pub db: &'a Database,
    /// Registered scalar and table-valued functions.
    pub functions: &'a FunctionRegistry,
    /// Minimum table row count before the parallel-scan rule upgrades a heap
    /// scan to a parallel scan (configurable so tests can force either path).
    pub parallel_scan_threshold: usize,
    /// When true the cost-based join-ordering rule may reorder inner joins
    /// and re-pick access paths using table statistics; when false plans
    /// keep the syntactic order (the bench baseline and escape hatch).
    pub cost_based_ordering: bool,
}

/// A view chain the binder already collapsed to `base WHERE predicates`;
/// the view-merge rule attaches the predicates to the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedView {
    /// The base table the view chain bottoms out at.
    pub base: String,
    /// The chain's accumulated qualifiers, innermost view first, not yet
    /// requalified with the outer alias.
    pub predicates: Vec<Expr>,
}

/// Where a bound source came from, kept so rules can revisit the binding.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceOrigin {
    /// A base (or temp) table named directly.
    Table,
    /// A named view.  `merged` carries the binder's one-time analysis of the
    /// definition chain: `Some` for simple `SELECT * FROM base [WHERE ...]`
    /// stacks (the view-merge rule applies it), `None` for definitions that
    /// had to be materialised as a derived table.
    View {
        /// The view's name.
        name: String,
        /// The binder's one-time merge analysis (see above).
        merged: Option<MergedView>,
    },
    /// A table-valued function call.
    Function,
    /// An inline derived table `(select ...) as d`.
    Derived,
}

/// One bound FROM item.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalSource {
    /// Alias the query refers to this source by.
    pub alias: String,
    /// What is read and how (starts as a naive heap scan).
    pub kind: SourceKind,
    /// The source's output schema.
    pub schema: RowSchema,
    /// What the alias was bound to.
    pub origin: SourceOrigin,
    /// `None` for the first comma-listed source, the join kind otherwise.
    pub join_kind: Option<JoinKind>,
    /// ON conjuncts of a **non-inner** join (inner-join ON conjuncts merge
    /// into the global pool; outer-join ones must stay with their step).
    pub outer_on: Vec<Expr>,
    /// Single-source predicates the pushdown rule moved into this scan.
    pub pushed: Vec<Expr>,
    /// Row budget the limit-pushdown rule granted this scan (TOP n with no
    /// later stage that could need more rows).
    pub limit_hint: Option<u64>,
}

/// A WHERE / ON / merged-view conjunct with its alias footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct Conjunct {
    /// The predicate expression.
    pub expr: Expr,
    /// Aliases the conjunct references (canonical alias spelling).
    pub aliases: HashSet<String>,
    /// Set once a rule has given the conjunct a home (pushed into a scan or
    /// folded into a join step); unconsumed conjuncts end up in the global
    /// residual filter.
    pub consumed: bool,
}

impl Conjunct {
    /// A fresh, unconsumed conjunct with its alias footprint.
    pub fn new(expr: Expr, aliases: HashSet<String>) -> Self {
        Conjunct {
            expr,
            aliases,
            consumed: false,
        }
    }
}

/// The rule pipeline's working representation of one SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    /// Bound FROM items, in current (initially syntactic) join order.
    pub sources: Vec<LogicalSource>,
    /// The classified conjunct pool.
    pub conjuncts: Vec<Conjunct>,
    /// Join steps, aligned with `sources[1..]`; built by the join-strategy
    /// rule (when absent, finalization falls back to nested loops).
    pub joins: Vec<JoinStep>,
    /// True when every join is inner/comma (reordering is only legal then).
    pub only_inner: bool,
    /// True for `select <exprs>` with no FROM clause.
    pub fromless: bool,
    /// Original WHERE predicate (needed verbatim for FROM-less selects).
    pub selection: Option<Expr>,
    /// Statement pieces carried through to the physical plan.
    pub select_items: Vec<SelectItem>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// True if any projection or HAVING contains an aggregate.
    pub has_aggregates: bool,
    /// ORDER BY items.
    pub order_by: Vec<crate::ast::OrderByItem>,
    /// TOP n limit.
    pub top: Option<u64>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// `INTO ##target` destination.
    pub into: Option<String>,
    /// Names of the rules that changed the plan, in pipeline order.
    pub rules_fired: Vec<&'static str>,
}

impl LogicalPlan {
    /// Alias → schema pairs, for conjunct classification.
    pub fn alias_schemas(&self) -> Vec<(String, RowSchema)> {
        self.sources
            .iter()
            .map(|s| (s.alias.clone(), s.schema.clone()))
            .collect()
    }

    /// Aliases that can be NULL-extended (the inner side of an outer join).
    /// WHERE conjuncts touching these must run *after* the join, so the
    /// pushdown and join-strategy rules leave them in the global residual.
    pub fn nullable_aliases(&self) -> HashSet<String> {
        self.sources
            .iter()
            .filter(|s| s.join_kind == Some(JoinKind::Left))
            .map(|s| s.alias.to_ascii_lowercase())
            .collect()
    }
}

/// Bind a SELECT statement: resolve names, plan nested selects, classify
/// conjuncts.  `plan_nested` is called for view fallbacks and derived tables
/// (the planner passes its own `plan_select` so nested queries run through
/// the full pipeline too).
pub fn bind(
    stmt: &SelectStatement,
    ctx: &PlanContext<'_>,
    plan_nested: &dyn Fn(&SelectStatement) -> Result<crate::plan::SelectPlan, SqlError>,
) -> Result<LogicalPlan, SqlError> {
    if stmt.projections.is_empty() {
        return Err(SqlError::Plan("SELECT list is empty".into()));
    }
    let mut sources = Vec::with_capacity(stmt.from.len());
    let mut outer_on_pool: Vec<(usize, Expr)> = Vec::new();
    let only_inner = stmt
        .from
        .iter()
        .all(|f| matches!(f.join, None | Some(JoinKind::Inner) | Some(JoinKind::Cross)));
    let mut inner_on: Vec<Expr> = Vec::new();
    for item in &stmt.from {
        let index = sources.len();
        let source = bind_source(item, ctx, plan_nested)?;
        if let Some(on) = &item.on {
            if only_inner {
                inner_on.extend(on.conjuncts().into_iter().cloned());
            } else {
                for c in on.conjuncts() {
                    outer_on_pool.push((index, c.clone()));
                }
            }
        }
        sources.push(source);
    }
    for (index, expr) in outer_on_pool {
        sources[index].outer_on.push(expr);
    }
    let fromless = sources.is_empty();

    // Classify WHERE + inner-ON conjuncts by the aliases they reference.
    let alias_schemas: Vec<(String, RowSchema)> = sources
        .iter()
        .map(|s| (s.alias.clone(), s.schema.clone()))
        .collect();
    let mut conjuncts = Vec::new();
    if !fromless {
        if let Some(w) = &stmt.selection {
            for c in w.conjuncts() {
                let aliases = aliases_of(c, &alias_schemas)?;
                conjuncts.push(Conjunct::new(c.clone(), aliases));
            }
        }
        for c in inner_on {
            let aliases = aliases_of(&c, &alias_schemas)?;
            conjuncts.push(Conjunct::new(c, aliases));
        }
    }

    let has_aggregates = stmt
        .projections
        .iter()
        .any(|p| matches!(p, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || stmt
            .having
            .as_ref()
            .map(Expr::contains_aggregate)
            .unwrap_or(false);

    Ok(LogicalPlan {
        sources,
        conjuncts,
        joins: Vec::new(),
        only_inner,
        fromless,
        selection: stmt.selection.clone(),
        select_items: stmt.projections.clone(),
        group_by: stmt.group_by.clone(),
        having: stmt.having.clone(),
        has_aggregates,
        order_by: stmt.order_by.clone(),
        top: stmt.top,
        distinct: stmt.distinct,
        into: stmt.into.clone(),
        rules_fired: Vec::new(),
    })
}

fn bind_source(
    item: &FromItem,
    ctx: &PlanContext<'_>,
    plan_nested: &dyn Fn(&SelectStatement) -> Result<crate::plan::SelectPlan, SqlError>,
) -> Result<LogicalSource, SqlError> {
    match &item.source {
        TableSource::Named(name) => {
            let alias = item.alias.clone().unwrap_or_else(|| name.clone());
            if ctx.db.has_table(name) {
                let table = ctx.db.table(name)?;
                let cols = table.schema().column_names();
                let schema = RowSchema::for_table(Some(&alias), &cols);
                return Ok(LogicalSource {
                    alias,
                    kind: SourceKind::Table {
                        table: name.clone(),
                        path: AccessPath::HeapScan,
                    },
                    schema,
                    origin: SourceOrigin::Table,
                    join_kind: item.join,
                    outer_on: Vec::new(),
                    pushed: Vec::new(),
                    limit_hint: None,
                });
            }
            if let Some(view) = ctx.db.view(name) {
                let definition = parse_select(&view.sql)?;
                // A simple `SELECT * FROM base [WHERE ...]` view (possibly
                // stacked) is analysed once here; the view-merge rule later
                // rewrites the source into a direct base-table access.  The
                // naive binding is still a *correct* derived table — built
                // by hand (one filtered scan) instead of recursively running
                // the whole planning pipeline on the view body, so a
                // pipeline prefix without the rule stays valid.
                if let Some(merged) =
                    crate::planner::rules::view_merge::merge_chain(&definition, ctx.db)?
                {
                    let sub_plan = naive_view_plan(&merged, ctx)?;
                    let names = sub_plan
                        .projections
                        .iter()
                        .map(|(_, n)| n.as_str())
                        .collect::<Vec<_>>();
                    let schema = RowSchema::for_table(Some(&alias), &names);
                    return Ok(LogicalSource {
                        alias,
                        kind: SourceKind::Derived {
                            plan: Box::new(sub_plan),
                        },
                        schema,
                        origin: SourceOrigin::View {
                            name: name.clone(),
                            merged: Some(merged),
                        },
                        join_kind: item.join,
                        outer_on: Vec::new(),
                        pushed: Vec::new(),
                        limit_hint: None,
                    });
                }
                // Too complex to merge: materialise as a derived table.
                let sub_plan = plan_nested(&definition)?;
                let names = sub_plan
                    .projections
                    .iter()
                    .map(|(_, n)| n.as_str())
                    .collect::<Vec<_>>();
                let schema = RowSchema::for_table(Some(&alias), &names);
                return Ok(LogicalSource {
                    alias,
                    kind: SourceKind::Derived {
                        plan: Box::new(sub_plan),
                    },
                    schema,
                    origin: SourceOrigin::View {
                        name: name.clone(),
                        merged: None,
                    },
                    join_kind: item.join,
                    outer_on: Vec::new(),
                    pushed: Vec::new(),
                    limit_hint: None,
                });
            }
            Err(SqlError::Plan(format!("unknown table or view {name}")))
        }
        TableSource::Function { name, args } => {
            let alias = item.alias.clone().unwrap_or_else(|| name.clone());
            let tf = ctx
                .functions
                .table(name)
                .ok_or_else(|| SqlError::UnknownFunction(name.clone()))?;
            let cols: Vec<&str> = tf.columns.iter().map(String::as_str).collect();
            let schema = RowSchema::for_table(Some(&alias), &cols);
            Ok(LogicalSource {
                alias,
                kind: SourceKind::TableFunction {
                    name: name.clone(),
                    args: args.clone(),
                },
                schema,
                origin: SourceOrigin::Function,
                join_kind: item.join,
                outer_on: Vec::new(),
                pushed: Vec::new(),
                limit_hint: None,
            })
        }
        TableSource::Derived(select) => {
            let alias = item
                .alias
                .clone()
                .ok_or_else(|| SqlError::Plan("derived tables need an alias".into()))?;
            let sub_plan = plan_nested(select)?;
            let names = sub_plan
                .projections
                .iter()
                .map(|(_, n)| n.as_str())
                .collect::<Vec<_>>();
            let schema = RowSchema::for_table(Some(&alias), &names);
            Ok(LogicalSource {
                alias,
                kind: SourceKind::Derived {
                    plan: Box::new(sub_plan),
                },
                schema,
                origin: SourceOrigin::Derived,
                join_kind: item.join,
                outer_on: Vec::new(),
                pushed: Vec::new(),
                limit_hint: None,
            })
        }
    }
}

/// The un-optimized but correct plan for a merged-view chain: one heap scan
/// of the base table with the accumulated qualifiers applied during the
/// scan, projecting every column.  Equivalent to planning the view body,
/// minus the recursive pipeline run.
fn naive_view_plan(
    merged: &MergedView,
    ctx: &PlanContext<'_>,
) -> Result<crate::plan::SelectPlan, SqlError> {
    use crate::plan::{SelectPlan, SourcePlan};
    let table = ctx.db.table(&merged.base)?;
    let cols = table.schema().column_names();
    let schema = RowSchema::for_table(Some(&merged.base), &cols);
    let projections: Vec<(Expr, String)> = schema
        .columns()
        .iter()
        .map(|(q, name)| {
            (
                Expr::Column {
                    qualifier: q.clone(),
                    name: name.clone(),
                },
                name.clone(),
            )
        })
        .collect();
    Ok(SelectPlan {
        sources: vec![SourcePlan {
            alias: merged.base.clone(),
            kind: SourceKind::Table {
                table: merged.base.clone(),
                path: AccessPath::HeapScan,
            },
            pushed_predicate: Expr::from_conjuncts(merged.predicates.clone()),
            schema: schema.clone(),
            limit_hint: None,
            zone_constraints: Vec::new(),
            scan_columns: None,
            est_rows: None,
        }],
        joins: Vec::new(),
        residual: None,
        projections,
        select_items: vec![SelectItem::Wildcard],
        group_by: Vec::new(),
        having: None,
        has_aggregates: false,
        order_by: Vec::new(),
        top: None,
        distinct: false,
        into: None,
        input_schema: schema,
        rules_fired: Vec::new(),
        programs: None,
        vectorized: false,
        est_rows: None,
        release: None,
    })
}

/// Which aliases does an expression reference?  Errors on unknown aliases,
/// unknown columns and ambiguous unqualified names — the same checks the
/// monolithic planner performed.
pub fn aliases_of(
    expr: &Expr,
    alias_schemas: &[(String, RowSchema)],
) -> Result<HashSet<String>, SqlError> {
    let mut cols = Vec::new();
    expr.collect_columns(&mut cols);
    let mut out = HashSet::new();
    for (q, name) in cols {
        match q {
            Some(q) => {
                let found = alias_schemas
                    .iter()
                    .find(|(a, _)| a.eq_ignore_ascii_case(&q));
                match found {
                    Some((a, _)) => {
                        out.insert(a.clone());
                    }
                    None => {
                        return Err(SqlError::Plan(format!("unknown table alias {q}")));
                    }
                }
            }
            None => {
                let matches: Vec<&String> = alias_schemas
                    .iter()
                    .filter(|(_, s)| s.can_resolve(None, &name))
                    .map(|(a, _)| a)
                    .collect();
                match matches.len() {
                    0 => {
                        return Err(SqlError::Plan(format!("unknown column {name}")));
                    }
                    1 => {
                        out.insert(matches[0].clone());
                    }
                    _ => {
                        return Err(SqlError::Plan(format!("ambiguous column {name}")));
                    }
                }
            }
        }
    }
    Ok(out)
}
