//! SQL lexer.
//!
//! Tokenises the SkyServer SQL dialect: identifiers (including the
//! `dbo.fPhotoFlags` two-part function names, `##results` temp tables and
//! `@saturated` variables), string and numeric literals, operators
//! (including the bitwise `&` and `|` that flag tests rely on), and both
//! `--` line comments and `/* ... */` block comments.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (kept verbatim; keyword matching is
    /// case-insensitive in the parser).
    Ident(String),
    /// `@name` variable reference.
    Variable(String),
    /// `##name` temporary table reference.
    TempTable(String),
    /// Numeric literal (integer or float).
    Number(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `&` (bitwise AND, the flag-test operator)
    Ampersand,
    /// `|` (bitwise OR)
    Pipe,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Variable(s) => write!(f, "@{s}"),
            Token::TempTable(s) => write!(f, "##{s}"),
            Token::Number(s) => write!(f, "{s}"),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Ampersand => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexing error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where lexing failed.
    pub position: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenise a SQL script.  The returned vector always ends with
/// [`Token::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            position: start,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            position: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token::StringLit(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                tokens.push(Token::Number(input[start..i].to_string()));
            }
            '@' => {
                i += 1;
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                if start == i {
                    return Err(LexError {
                        message: "expected variable name after '@'".into(),
                        position: start,
                    });
                }
                tokens.push(Token::Variable(input[start..i].to_string()));
            }
            '#' => {
                // ## temp table or # local temp table -- both treated alike.
                let mut j = i;
                while j < bytes.len() && bytes[j] == b'#' {
                    j += 1;
                }
                let start = j;
                while j < bytes.len() && is_ident_char(bytes[j]) {
                    j += 1;
                }
                if start == j {
                    return Err(LexError {
                        message: "expected temp table name after '#'".into(),
                        position: i,
                    });
                }
                tokens.push(Token::TempTable(input[start..j].to_string()));
                i = j;
            }
            '[' => {
                // Bracket-quoted identifier.
                let start = i;
                i += 1;
                let name_start = i;
                while i < bytes.len() && bytes[i] != b']' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated [identifier]".into(),
                        position: start,
                    });
                }
                tokens.push(Token::Ident(input[name_start..i].to_string()));
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '&' => {
                tokens.push(Token::Ampersand);
                i += 1;
            }
            '|' => {
                tokens.push(Token::Pipe);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    position: i,
                })
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn is_ident_char(b: u8) -> bool {
    (b as char).is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_select() {
        let toks = tokenize("select objID, ra from photoObj where ra > 180.5").unwrap();
        assert_eq!(toks[0], Token::Ident("select".into()));
        assert_eq!(toks[1], Token::Ident("objID".into()));
        assert_eq!(toks[2], Token::Comma);
        assert!(toks.contains(&Token::Number("180.5".into())));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn tokenizes_variables_and_temp_tables() {
        let toks = tokenize("set @saturated = 1 select * into ##results from x").unwrap();
        assert!(toks.contains(&Token::Variable("saturated".into())));
        assert!(toks.contains(&Token::TempTable("results".into())));
    }

    #[test]
    fn tokenizes_strings_with_escapes() {
        let toks = tokenize("select 'it''s', 'plain'").unwrap();
        assert_eq!(toks[1], Token::StringLit("it's".into()));
        assert_eq!(toks[3], Token::StringLit("plain".into()));
        assert!(tokenize("select 'unterminated").is_err());
    }

    #[test]
    fn strips_comments() {
        let sql = "select 1 -- trailing comment\n , 2 /* block\ncomment */ , 3";
        let toks = tokenize(sql).unwrap();
        let numbers: Vec<&Token> = toks
            .iter()
            .filter(|t| matches!(t, Token::Number(_)))
            .collect();
        assert_eq!(numbers.len(), 3);
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a <= b >= c <> d != e < f > g = h").unwrap();
        assert!(toks.contains(&Token::LtEq));
        assert!(toks.contains(&Token::GtEq));
        assert_eq!(toks.iter().filter(|t| **t == Token::NotEq).count(), 2);
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Eq));
    }

    #[test]
    fn bitwise_and_arithmetic() {
        let toks = tokenize("(flags & 64) | 2 + 3*4/5 % 6 - 7").unwrap();
        assert!(toks.contains(&Token::Ampersand));
        assert!(toks.contains(&Token::Pipe));
        assert!(toks.contains(&Token::Percent));
    }

    #[test]
    fn scientific_notation_numbers() {
        let toks = tokenize("select 1e6, 2.5E-3, 42").unwrap();
        assert_eq!(toks[1], Token::Number("1e6".into()));
        assert_eq!(toks[3], Token::Number("2.5E-3".into()));
    }

    #[test]
    fn dotted_names() {
        let toks = tokenize("dbo.fPhotoFlags('saturated')").unwrap();
        assert_eq!(toks[0], Token::Ident("dbo".into()));
        assert_eq!(toks[1], Token::Dot);
        assert_eq!(toks[2], Token::Ident("fPhotoFlags".into()));
    }

    #[test]
    fn bracket_quoted_identifiers() {
        let toks = tokenize("select [order] from [my table]").unwrap();
        assert_eq!(toks[1], Token::Ident("order".into()));
        assert_eq!(toks[3], Token::Ident("my table".into()));
        assert!(tokenize("[unclosed").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("select ?").is_err());
        assert!(tokenize("@").is_err());
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn query1_from_the_paper_lexes() {
        let sql = r#"
            declare @saturated bigint;
            set @saturated = dbo.fPhotoFlags('saturated');
            select G.objID, GN.distance
            into ##results
            from Galaxy as G
            join fGetNearbyObjEq(185,-0.5, 1) as GN on G.objID = GN.objID
            where (G.flags & @saturated) = 0
            order by distance
        "#;
        let toks = tokenize(sql).unwrap();
        assert!(toks.len() > 40);
        assert!(toks.contains(&Token::Variable("saturated".into())));
        assert!(toks.contains(&Token::TempTable("results".into())));
    }
}
