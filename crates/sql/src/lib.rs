//! # skyserver-sql
//!
//! The SQL layer of the SkyServer reproduction: a lexer, parser, planner /
//! optimizer and executor for the subset of Transact-SQL the paper's 20
//! data-mining queries use, built on the `skyserver-storage` engine.
//!
//! Highlights that mirror the paper:
//!
//! * **Views as sub-classing** (§9.1.3): `Galaxy` / `Star` / `PhotoPrimary`
//!   queries are merged down to the base `photoObj` table with extra
//!   qualifiers.
//! * **Covering indices as tag tables**: queries covered by an index read
//!   the 10-100x smaller column subset instead of the heap.
//! * **Table-valued spatial functions** (`fGetNearbyObjEq`, `spHTM_Cover`)
//!   usable in `FROM` and nested-loop joined against the `objID` B-tree --
//!   the Figure 10 plan shape.
//! * **Parallel sequential scans** for unindexed predicates -- the Figure 11
//!   plan shape.
//! * **Public query limits** (1,000 rows / 30 seconds, §4).
//! * **EXPLAIN** and per-statement execution statistics with an I/O-model
//!   projection onto the paper's hardware.
//!
//! ```
//! use skyserver_sql::{SqlEngine, FunctionRegistry, QueryLimits};
//! use skyserver_storage::{ColumnDef, Database, DataType, TableSchema, Value};
//!
//! let mut db = Database::new("demo");
//! db.create_table(
//!     "photoObj",
//!     TableSchema::new(vec![
//!         ColumnDef::new("objID", DataType::Int),
//!         ColumnDef::new("modelMag_r", DataType::Float),
//!     ]),
//! ).unwrap();
//! db.insert("photoObj", vec![Value::Int(1), Value::Float(17.2)]).unwrap();
//!
//! let mut engine = SqlEngine::new(db, FunctionRegistry::new());
//! let result = engine.query("select count(*) as n from photoObj where modelMag_r < 18").unwrap();
//! assert_eq!(result.cell(0, "n"), Some(&Value::Int(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod error;
pub mod exec;
pub mod executor;
pub mod expr;
pub mod functions;
pub mod lexer;
pub mod monitor;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod result;
pub mod verify;

pub use engine::{EngineStats, PlanSummary, SqlEngine};
pub use error::SqlError;
pub use exec::compile::{CompiledExpr, CompiledPrograms, LikeMatcher};
pub use executor::{Executor, QueryLimits};
pub use expr::{eval, EvalContext, RowSchema};
pub use functions::{FunctionRegistry, ScalarFn, TableFn, TableFunction};
pub use monitor::{QueryMonitor, MONITOR_BATCH};
pub use parser::{parse_script, parse_select, parse_statement};
pub use plan::{AccessPath, PlanClass, SelectPlan};
pub use planner::Planner;
pub use result::{ResultSet, StatementOutcome};
pub use verify::{verify_plan, verify_plan_with_releases, VerifyReport, Violation, ViolationKind};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use skyserver_storage::{ColumnDef, DataType, Database, IndexDef, TableSchema, Value};

    fn engine_with_values(values: &[(i64, f64)]) -> SqlEngine {
        let mut db = Database::new("prop");
        db.create_table(
            "t",
            TableSchema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Float),
            ]),
        )
        .unwrap();
        db.create_index(IndexDef::new("ix_id", "t", &["id"]))
            .unwrap();
        for (id, v) in values {
            db.insert("t", vec![Value::Int(*id), Value::Float(*v)])
                .unwrap();
        }
        SqlEngine::new(db, FunctionRegistry::new())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// An indexed equality query returns exactly the rows a manual filter
        /// of the input data finds.
        #[test]
        fn index_seek_matches_manual_filter(
            rows in proptest::collection::vec((0i64..40, -100.0..100.0f64), 1..80),
            needle in 0i64..40,
        ) {
            let engine = engine_with_values(&rows);
            let expected = rows.iter().filter(|(id, _)| *id == needle).count();
            let r = engine
                .query(&format!("select count(*) from t where id = {needle}"))
                .unwrap();
            prop_assert_eq!(r.scalar().unwrap().as_i64().unwrap() as usize, expected);
        }

        /// ORDER BY returns values in non-decreasing order and preserves the
        /// multiset of values.
        #[test]
        fn order_by_sorts(rows in proptest::collection::vec((0i64..1000, -1e6..1e6f64), 1..60)) {
            let engine = engine_with_values(&rows);
            let r = engine.query("select v from t order by v").unwrap();
            let vals: Vec<f64> = r.rows.iter().map(|row| row[0].as_f64().unwrap()).collect();
            prop_assert_eq!(vals.len(), rows.len());
            for w in vals.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        /// TOP n never returns more than n rows and agrees with the sorted
        /// prefix.
        #[test]
        fn top_n_is_a_prefix(rows in proptest::collection::vec((0i64..1000, -1e3..1e3f64), 1..60),
                             n in 1u64..20) {
            let engine = engine_with_values(&rows);
            let all = engine.query("select v from t order by v").unwrap();
            let top = engine.query(&format!("select top {n} v from t order by v")).unwrap();
            prop_assert!(top.len() <= n as usize);
            prop_assert_eq!(&all.rows[..top.len()], &top.rows[..]);
        }

        /// count(*) with a range predicate equals the manual count, whether
        /// it runs as a scan or a seek.
        #[test]
        fn range_count_matches(rows in proptest::collection::vec((0i64..50, -10.0..10.0f64), 0..80),
                               lo in 0i64..50, hi in 0i64..50) {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let engine = engine_with_values(&rows);
            let expected = rows.iter().filter(|(id, _)| *id >= lo && *id <= hi).count();
            let r = engine
                .query(&format!("select count(*) from t where id between {lo} and {hi}"))
                .unwrap();
            prop_assert_eq!(r.scalar().unwrap().as_i64().unwrap() as usize, expected);
        }
    }
}
