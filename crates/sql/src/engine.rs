//! The SQL engine facade: session state, statement dispatch and execution
//! statistics.
//!
//! `SqlEngine` owns a [`Database`] and a [`FunctionRegistry`] and executes
//! SQL scripts against them, maintaining session variables (`DECLARE`/`SET`)
//! and temp tables (`SELECT ... INTO ##results`).  Every statement returns a
//! [`StatementOutcome`] carrying the result set, the raw scan counters, the
//! measured wall-clock time and the [`skyserver_storage::IoSimulator`]
//! projection of the same access pattern onto the paper's hardware -- the
//! numbers Figures 10-13 report.
//!
//! The query API is split in two.  The full path
//! ([`SqlEngine::execute`]/[`SqlEngine::execute_script`]) takes `&mut self`
//! and supports DDL, DML, `SELECT ... INTO` and persistent session
//! variables.  The **shared read path**
//! ([`SqlEngine::execute_read`]/[`SqlEngine::query`]) takes `&self`: any
//! number of threads can run `DECLARE`/`SET`/`SELECT` scripts concurrently
//! against one engine.  Read scripts see a snapshot of the session
//! variables and keep their own `DECLARE`/`SET` effects local to the call,
//! so concurrent requests cannot observe each other's half-updated state;
//! statements that would write (DML, DDL, `INTO`) are rejected with
//! [`SqlError::ReadOnly`].

use crate::ast::{Expr, InsertSource, Statement};
use crate::error::SqlError;
use crate::executor::{Executor, QueryLimits};
use crate::expr::{eval, EvalContext, RowSchema};
use crate::functions::FunctionRegistry;
use crate::monitor::QueryMonitor;
use crate::parser::parse_script;
use crate::plan::{PlanClass, SelectPlan};
use crate::planner::Planner;
use crate::result::{ResultSet, StatementOutcome};
use skyserver_storage::{
    ColumnDef, Database, ExecutionStats, IndexDef, IoSimulator, ReleaseCatalog, ReleaseDiff,
    ReleaseInfo, TableSchema, Value,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// The SQL engine: database + functions + session state.
pub struct SqlEngine {
    db: Database,
    /// Published release snapshots (`PUBLISH RELEASE drN`).  Each entry is
    /// an immutable copy-on-write [`Database`] sharing all unchanged
    /// segments and indexes with the head and with other releases.
    releases: ReleaseCatalog,
    functions: FunctionRegistry,
    simulator: IoSimulator,
    /// Multiplier applied when projecting measured scans to the paper's data
    /// volume (e.g. 14 M photoObj rows / rows generated).
    paper_scale_factor: Option<f64>,
    /// Session variables.  Interior-mutable so the shared read path can
    /// snapshot them through `&self`; the `&mut` path goes through
    /// `get_mut` and never contends.
    variables: RwLock<HashMap<String, Value>>,
    /// When true, every SELECT outcome carries its rendered plan.
    capture_plans: bool,
    /// Row-count threshold the optimizer's parallel-scan rule uses.
    parallel_scan_threshold: usize,
    /// Compile expressions into ordinal-resolved programs at plan time
    /// (default).  Off = interpret every expression per row; kept as the
    /// measurable baseline for `sql_bench`.
    compile_expressions: bool,
    /// Run compiled heap scans through the vectorized batch pipeline
    /// (default).  Off = row-at-a-time compiled evaluation; the middle rung
    /// of the interpreted / compiled / vectorized equivalence ladder.
    vectorized: bool,
    /// Run the static plan verifier after every planner finalization and
    /// fail the statement on violations.  Debug builds always verify; this
    /// flag opts release builds in ([`SqlEngine::set_plan_verification`]).
    verify_plans: bool,
    /// Let the optimizer reorder joins and re-cost access paths from table
    /// statistics (default).  Off = syntactic join order; the baseline the
    /// join-ordering bench phase and the equivalence proptest compare
    /// against ([`SqlEngine::set_cost_based_ordering`]).
    cost_based_ordering: bool,
    /// Cumulative execution counters (atomics: bumped through `&self` by
    /// concurrent readers).
    counters: EngineCounters,
}

/// Interior-mutable cumulative counters.
#[derive(Debug, Default)]
struct EngineCounters {
    selects: AtomicU64,
    read_path_selects: AtomicU64,
    rows_returned: AtomicU64,
}

/// A snapshot of the engine's cumulative execution counters (the numbers
/// the schema/QA page surfaces next to the result-cache statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// SELECT statements executed (both paths).
    pub selects: u64,
    /// SELECT statements executed through the shared `&self` read path.
    pub read_path_selects: u64,
    /// Total rows returned by all SELECTs.
    pub rows_returned: u64,
}

/// What the optimizer decided for a statement: the Figure 13 bucket plus
/// the rewrite rules that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    /// The Figure 13 bucket (index seek / scan / join-scan).
    pub class: PlanClass,
    /// The optimizer rules that fired, in pipeline order.
    pub rules_fired: Vec<&'static str>,
    /// Estimated result rows from the statistics model (`None` for
    /// statements the planner does not estimate, e.g. DML).
    pub est_rows: Option<u64>,
}

impl SqlEngine {
    /// Create an engine over a database with the given function registry.
    pub fn new(db: Database, functions: FunctionRegistry) -> Self {
        SqlEngine {
            db,
            releases: ReleaseCatalog::new(),
            functions,
            simulator: IoSimulator::skyserver_production(),
            paper_scale_factor: None,
            variables: RwLock::new(HashMap::new()),
            capture_plans: false,
            parallel_scan_threshold: crate::planner::PARALLEL_SCAN_THRESHOLD,
            compile_expressions: true,
            vectorized: true,
            verify_plans: false,
            cost_based_ordering: true,
            counters: EngineCounters::default(),
        }
    }

    /// Planner configured with this engine's settings, over `db` — the head
    /// database or a pinned release snapshot (`release` names the latter so
    /// EXPLAIN and the plan verifier see the pin).
    fn planner_on<'a>(&'a self, db: &'a Database, release: Option<&str>) -> Planner<'a> {
        Planner::new(db, &self.functions)
            .with_parallel_scan_threshold(self.parallel_scan_threshold)
            .with_expression_compilation(self.compile_expressions)
            .with_vectorized(self.vectorized)
            .with_verification(self.verify_plans || cfg!(debug_assertions))
            .with_cost_based_ordering(self.cost_based_ordering)
            .with_release(release.map(str::to_string))
            .with_known_releases(self.releases.names())
    }

    /// The database a statement pinned to `release` reads: the live head
    /// for `None`, the published snapshot otherwise.
    pub fn db_for(&self, release: Option<&str>) -> Result<&Database, SqlError> {
        match release {
            None => Ok(&self.db),
            Some(r) => self
                .releases
                .get(r)
                .map(Arc::as_ref)
                .ok_or_else(|| SqlError::UnknownRelease(r.to_string())),
        }
    }

    /// Publish the current head database as release `name`.  Copy-on-write:
    /// the snapshot shares every segment and index with the head, so the
    /// publish copies only catalog metadata.  Fails on a duplicate name
    /// (releases are immutable once published).
    pub fn publish_release(&mut self, name: &str) -> Result<(), SqlError> {
        self.releases.publish(name, Arc::new(self.db.clone()))?;
        Ok(())
    }

    /// The published release catalog.
    pub fn releases(&self) -> &ReleaseCatalog {
        &self.releases
    }

    /// Published release names, in publish order.
    pub fn release_names(&self) -> Vec<String> {
        self.releases.names()
    }

    /// Summaries of every published release, in publish order.
    pub fn release_infos(&self) -> Vec<ReleaseInfo> {
        self.releases.infos()
    }

    /// Per-table diff between two published releases (rows on each side,
    /// physically shared vs added/removed segments).
    pub fn release_diff(&self, from: &str, to: &str) -> Result<ReleaseDiff, SqlError> {
        self.releases.diff(from, to).map_err(|e| match e {
            skyserver_storage::StorageError::UnknownRelease(r) => SqlError::UnknownRelease(r),
            other => SqlError::Storage(other),
        })
    }

    /// A copy-on-write fork of this engine: same functions, configuration,
    /// session variables and release history, sharing every segment and
    /// index with the parent until either side writes.  The atomic-publish
    /// protocol applies admin writes to a fork while the original keeps
    /// serving queries, then swaps the fork in.
    pub fn fork(&self) -> SqlEngine {
        SqlEngine {
            db: self.db.clone(),
            releases: self.releases.clone(),
            functions: self.functions.clone(),
            simulator: self.simulator,
            paper_scale_factor: self.paper_scale_factor,
            variables: RwLock::new(
                self.variables
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone(),
            ),
            capture_plans: self.capture_plans,
            parallel_scan_threshold: self.parallel_scan_threshold,
            compile_expressions: self.compile_expressions,
            vectorized: self.vectorized,
            verify_plans: self.verify_plans,
            cost_based_ordering: self.cost_based_ordering,
            counters: EngineCounters {
                selects: AtomicU64::new(self.counters.selects.load(Ordering::Relaxed)),
                read_path_selects: AtomicU64::new(
                    self.counters.read_path_selects.load(Ordering::Relaxed),
                ),
                rows_returned: AtomicU64::new(self.counters.rows_returned.load(Ordering::Relaxed)),
            },
        }
    }

    /// Enable or disable statistics-driven join ordering and access-path
    /// costing (on by default).  Disabling pins the syntactic join order —
    /// the baseline for the join-ordering bench phase and the escape hatch
    /// if an estimate misfires.
    pub fn set_cost_based_ordering(&mut self, enabled: bool) {
        self.cost_based_ordering = enabled;
    }

    /// Enable or disable compiled expression programs (on by default).
    /// Disabling drops the executor back to per-row interpretation — the
    /// baseline `sql_bench` records its compiled-vs-interpreted comparison
    /// against.
    pub fn set_expression_compilation(&mut self, compile: bool) {
        self.compile_expressions = compile;
    }

    /// Enable or disable the vectorized batch pipeline for compiled heap
    /// scans (on by default).  Disabling keeps compiled programs but
    /// evaluates them row-at-a-time — used by the three-way equivalence
    /// tests and benchmarks.
    pub fn set_vectorized_execution(&mut self, vectorized: bool) {
        self.vectorized = vectorized;
    }

    /// Override the table size at which heap scans go parallel (tests and
    /// benchmarks; the default mirrors the paper's large-table behaviour).
    pub fn set_parallel_scan_threshold(&mut self, threshold: usize) {
        self.parallel_scan_threshold = threshold;
    }

    /// Enable or disable the static plan verifier
    /// ([`crate::verify::verify_plan`]) on every planned statement.  Debug
    /// builds always verify (`debug_assertions`); this opts release builds
    /// in.  A verification failure aborts the statement with
    /// [`SqlError::Plan`].
    pub fn set_plan_verification(&mut self, verify: bool) {
        self.verify_plans = verify;
    }

    /// Read-only access to the database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database (used by the loader).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Mutable access to the function registry (used during schema setup).
    pub fn functions_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.functions
    }

    /// Read-only access to the function registry.
    pub fn functions(&self) -> &FunctionRegistry {
        &self.functions
    }

    /// Configure the hardware model used for simulated timings.
    pub fn set_simulator(&mut self, sim: IoSimulator) {
        self.simulator = sim;
    }

    /// Configure the data-volume scale factor used for paper-scale timing
    /// projections.
    pub fn set_paper_scale_factor(&mut self, factor: Option<f64>) {
        self.paper_scale_factor = factor;
    }

    /// Capture rendered plans on every SELECT outcome.
    pub fn set_capture_plans(&mut self, capture: bool) {
        self.capture_plans = capture;
    }

    /// Current value of a session variable.
    pub fn variable(&self, name: &str) -> Option<Value> {
        self.variables
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// A snapshot of the cumulative execution counters.
    pub fn counters(&self) -> EngineStats {
        EngineStats {
            selects: self.counters.selects.load(Ordering::Relaxed),
            read_path_selects: self.counters.read_path_selects.load(Ordering::Relaxed),
            rows_returned: self.counters.rows_returned.load(Ordering::Relaxed),
        }
    }

    /// Execute a script and return the outcome of every statement.
    pub fn execute_script(
        &mut self,
        sql: &str,
        limits: QueryLimits,
    ) -> Result<Vec<StatementOutcome>, SqlError> {
        let statements = parse_script(sql)?;
        let mut outcomes = Vec::with_capacity(statements.len());
        for stmt in statements {
            outcomes.push(self.execute_statement(&stmt, limits)?);
        }
        Ok(outcomes)
    }

    /// Execute a script and return the outcome of its **last** statement
    /// (the usual shape of the paper's DECLARE/SET/SELECT scripts).
    pub fn execute(
        &mut self,
        sql: &str,
        limits: QueryLimits,
    ) -> Result<StatementOutcome, SqlError> {
        let mut outcomes = self.execute_script(sql, limits)?;
        outcomes
            .pop()
            .ok_or_else(|| SqlError::Parse("empty script".into()))
    }

    /// Execute a **read-only** script (`DECLARE`/`SET`/`SELECT`, no `INTO`)
    /// through `&self`, returning every statement's outcome.  Session
    /// variables are snapshotted at entry and `DECLARE`/`SET` effects stay
    /// local to this call, so any number of threads can run read scripts
    /// concurrently on one engine.  Write statements return
    /// [`SqlError::ReadOnly`].
    pub fn execute_read_script(
        &self,
        sql: &str,
        limits: QueryLimits,
    ) -> Result<Vec<StatementOutcome>, SqlError> {
        self.execute_read_script_with(sql, limits, None)
    }

    /// [`SqlEngine::execute_read_script`] with an optional [`QueryMonitor`]
    /// attached: the executing SELECTs report rows-processed progress to it
    /// and stop with [`SqlError::Cancelled`] when it is cancelled — the
    /// hook the batch-query job tier is built on.
    pub fn execute_read_script_with(
        &self,
        sql: &str,
        limits: QueryLimits,
        monitor: Option<&QueryMonitor>,
    ) -> Result<Vec<StatementOutcome>, SqlError> {
        self.execute_read_script_on(sql, limits, monitor, None)
    }

    /// [`SqlEngine::execute_read_script_with`] pinned to a published
    /// release: every SELECT reads `release`'s snapshot instead of the live
    /// head (the engine face of the web tier's `?release=` parameter).  A
    /// statement-level `AS OF` must agree with the pin.  `None` reads the
    /// head, same as the unpinned path.
    pub fn execute_read_script_on(
        &self,
        sql: &str,
        limits: QueryLimits,
        monitor: Option<&QueryMonitor>,
        release: Option<&str>,
    ) -> Result<Vec<StatementOutcome>, SqlError> {
        // Reject an unknown release before doing any work, even for
        // scripts that never reach a SELECT.
        self.db_for(release)?;
        let statements = parse_script(sql)?;
        let mut vars = self
            .variables
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let mut outcomes = Vec::with_capacity(statements.len());
        for stmt in &statements {
            let started = Instant::now();
            let outcome = match stmt {
                Statement::Declare { name, .. } => {
                    vars.insert(name.to_ascii_lowercase(), Value::Null);
                    StatementOutcome::default()
                }
                Statement::SetVariable { name, expr } => {
                    let value = eval_variable(expr, &vars, &self.functions)?;
                    vars.insert(name.to_ascii_lowercase(), value);
                    StatementOutcome::default()
                }
                Statement::Select(select) => {
                    // Reject the write *before* planning or executing: a
                    // public request must not burn its whole query budget
                    // on a statement that errors anyway.
                    if let Some(target) = &select.into {
                        return Err(SqlError::ReadOnly(format!("SELECT ... INTO {target}")));
                    }
                    let (outcome, _into) =
                        self.run_select(select, limits, started, &vars, monitor, release)?;
                    self.counters
                        .read_path_selects
                        .fetch_add(1, Ordering::Relaxed);
                    outcome
                }
                // Verification only plans — nothing is executed or written,
                // so the shared read path can serve it.
                Statement::ExplainVerify(select) => self.explain_verify(select)?,
                other => return Err(SqlError::ReadOnly(statement_kind(other).to_string())),
            };
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Execute a read-only script and return its **last** statement's
    /// outcome (the `&self` counterpart of [`SqlEngine::execute`]).
    pub fn execute_read(
        &self,
        sql: &str,
        limits: QueryLimits,
    ) -> Result<StatementOutcome, SqlError> {
        self.execute_read_with(sql, limits, None)
    }

    /// [`SqlEngine::execute_read`] with an optional [`QueryMonitor`]: the
    /// monitor observes progress and can cancel or pace the running query.
    pub fn execute_read_with(
        &self,
        sql: &str,
        limits: QueryLimits,
        monitor: Option<&QueryMonitor>,
    ) -> Result<StatementOutcome, SqlError> {
        let mut outcomes = self.execute_read_script_with(sql, limits, monitor)?;
        outcomes
            .pop()
            .ok_or_else(|| SqlError::Parse("empty script".into()))
    }

    /// Convenience: run a read-only query with no limits and return just
    /// the rows.  Takes `&self`: safe to call from many threads at once.
    pub fn query(&self, sql: &str) -> Result<ResultSet, SqlError> {
        Ok(self.execute_read(sql, QueryLimits::UNLIMITED)?.result)
    }

    /// [`SqlEngine::query`] pinned to a published release snapshot.
    pub fn query_on(&self, sql: &str, release: Option<&str>) -> Result<ResultSet, SqlError> {
        let mut outcomes =
            self.execute_read_script_on(sql, QueryLimits::UNLIMITED, None, release)?;
        outcomes
            .pop()
            .map(|o| o.result)
            .ok_or_else(|| SqlError::Parse("empty script".into()))
    }

    /// Render the plan of the (single) SELECT statement in `sql`.  Any
    /// `DECLARE`/`SET` in the script is evaluated into a local overlay so
    /// planning cannot disturb (or be disturbed by) concurrent sessions.
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        let statements = parse_script(sql)?;
        self.eval_script_variables(&statements)?;
        for stmt in &statements {
            if let Statement::Select(s) = stmt {
                let release = s.as_of.as_deref();
                let plan = self
                    .planner_on(self.db_for(release)?, release)
                    .plan_select(s)?;
                return Ok(plan.render_explain());
            }
        }
        Err(SqlError::Plan("no SELECT statement to explain".into()))
    }

    /// Plan a select and return its [`PlanClass`] (used by the Figure 13
    /// harness to bucket queries).
    pub fn plan_class(&self, sql: &str) -> Result<PlanClass, SqlError> {
        self.plan_summary(sql).map(|s| s.class)
    }

    /// Plan a select and return its class together with the optimizer rules
    /// that fired.
    pub fn plan_summary(&self, sql: &str) -> Result<PlanSummary, SqlError> {
        let statements = parse_script(sql)?;
        self.eval_script_variables(&statements)?;
        for stmt in &statements {
            if let Statement::Select(s) = stmt {
                let release = s.as_of.as_deref();
                let plan = self
                    .planner_on(self.db_for(release)?, release)
                    .plan_select(s)?;
                return Ok(PlanSummary {
                    class: plan.plan_class(),
                    rules_fired: plan.rules_fired,
                    est_rows: plan.est_rows,
                });
            }
        }
        Err(SqlError::Plan("no SELECT statement in script".into()))
    }

    /// Evaluate the `DECLARE`/`SET` prefix of a script into a throwaway
    /// overlay (planning only needs the side effect of surfacing evaluation
    /// errors; variables are resolved at execution time).
    fn eval_script_variables(&self, statements: &[Statement]) -> Result<(), SqlError> {
        let mut vars = self
            .variables
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        for stmt in statements {
            match stmt {
                Statement::Declare { name, .. } => {
                    vars.insert(name.to_ascii_lowercase(), Value::Null);
                }
                Statement::SetVariable { name, expr } => {
                    let value = eval_variable(expr, &vars, &self.functions)?;
                    vars.insert(name.to_ascii_lowercase(), value);
                }
                _ => {}
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------------------
    // Statement dispatch
    // ----------------------------------------------------------------------

    fn execute_statement(
        &mut self,
        stmt: &Statement,
        limits: QueryLimits,
    ) -> Result<StatementOutcome, SqlError> {
        let started = Instant::now();
        match stmt {
            Statement::Declare { name, .. } => {
                self.variables
                    .get_mut()
                    .unwrap()
                    .insert(name.to_ascii_lowercase(), Value::Null);
                Ok(StatementOutcome::default())
            }
            Statement::SetVariable { name, expr } => {
                let vars = self.variables.get_mut().unwrap();
                let value = eval_variable(expr, vars, &self.functions)?;
                vars.insert(name.to_ascii_lowercase(), value);
                Ok(StatementOutcome::default())
            }
            Statement::Select(select) => {
                let (mut outcome, into) = {
                    let vars = self
                        .variables
                        .read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    self.run_select(select, limits, started, &vars, None, None)?
                };
                if let Some(target) = into {
                    outcome.rows_affected = self.materialize_into(&target, &outcome.result)?;
                    // Fold the materialisation into the measured wall time.
                    outcome.stats.wall_seconds = started.elapsed().as_secs_f64();
                }
                Ok(outcome)
            }
            Statement::Insert(insert) => {
                let rows_affected = self.execute_insert(insert, limits)?;
                Ok(StatementOutcome {
                    rows_affected,
                    ..Default::default()
                })
            }
            Statement::Update(update) => {
                let rows_affected = self.execute_update(update)?;
                Ok(StatementOutcome {
                    rows_affected,
                    ..Default::default()
                })
            }
            Statement::Delete(delete) => {
                let rows_affected = self.execute_delete(delete)?;
                Ok(StatementOutcome {
                    rows_affected,
                    ..Default::default()
                })
            }
            Statement::CreateTable(ct) => {
                let mut cols = Vec::with_capacity(ct.columns.len());
                for c in &ct.columns {
                    let mut def = ColumnDef::new(&c.name, c.ty);
                    if c.nullable {
                        def = def.nullable();
                    }
                    cols.push(def);
                }
                let mut schema = TableSchema::new(cols);
                if !ct.primary_key.is_empty() {
                    let keys: Vec<&str> = ct.primary_key.iter().map(String::as_str).collect();
                    schema = schema.with_primary_key(&keys);
                }
                self.db.create_table(&ct.name, schema)?;
                Ok(StatementOutcome::default())
            }
            Statement::CreateIndex(ci) => {
                let keys: Vec<&str> = ci.columns.iter().map(String::as_str).collect();
                let includes: Vec<&str> = ci.include.iter().map(String::as_str).collect();
                let mut def = IndexDef::new(&ci.name, &ci.table, &keys).include(&includes);
                if ci.unique {
                    def = def.unique();
                }
                self.db.create_index(def)?;
                Ok(StatementOutcome::default())
            }
            Statement::CreateView(cv) => {
                // Re-render the view body by storing the original text form.
                let sql = render_select_source(&cv.query);
                self.db.create_view(&cv.name, sql, "")?;
                Ok(StatementOutcome::default())
            }
            Statement::DropTable { name } => {
                self.db.drop_table(name)?;
                Ok(StatementOutcome::default())
            }
            Statement::ExplainVerify(select) => self.explain_verify(select),
            Statement::PublishRelease { id } => {
                self.publish_release(id)?;
                Ok(StatementOutcome::default())
            }
        }
    }

    /// Plan a SELECT and run the static verifier over it, rendering the
    /// report as a one-column result set (the `EXPLAIN VERIFY` output):
    /// the summary line first, then one row per violation.
    fn explain_verify(
        &self,
        select: &crate::ast::SelectStatement,
    ) -> Result<StatementOutcome, SqlError> {
        // Verification is disabled on this planner pass so that a broken
        // plan is *reported* rather than aborting the statement.
        let release = select.as_of.as_deref();
        let db = self.db_for(release)?;
        let plan = self
            .planner_on(db, release)
            .with_verification(false)
            .plan_select(select)?;
        let names = self.releases.names();
        let report = crate::verify::verify_plan_with_releases(&plan, db, Some(&names));
        let mut result = ResultSet::empty(vec!["plan_verify".to_string()]);
        if report.is_clean() {
            result.rows.push(vec![Value::str(report.summary())]);
        } else {
            for violation in &report.violations {
                result.rows.push(vec![Value::str(violation.to_string())]);
            }
        }
        Ok(StatementOutcome {
            result,
            ..Default::default()
        })
    }

    /// Plan the (single) SELECT in `sql` and return the static verifier's
    /// structured report — the programmatic face of `EXPLAIN VERIFY`.
    pub fn verify(&self, sql: &str) -> Result<crate::verify::VerifyReport, SqlError> {
        let statements = parse_script(sql)?;
        self.eval_script_variables(&statements)?;
        for stmt in &statements {
            if let Statement::Select(s) | Statement::ExplainVerify(s) = stmt {
                let release = s.as_of.as_deref();
                let db = self.db_for(release)?;
                let plan = self
                    .planner_on(db, release)
                    .with_verification(false)
                    .plan_select(s)?;
                let names = self.releases.names();
                return Ok(crate::verify::verify_plan_with_releases(
                    &plan,
                    db,
                    Some(&names),
                ));
            }
        }
        Err(SqlError::Plan("no SELECT statement to verify".into()))
    }

    /// Plan and execute one SELECT through `&self`.  Returns the outcome
    /// plus the `INTO` target, if any — materialising that target needs
    /// `&mut self`, so it is left to the caller (the shared read path
    /// rejects it instead).
    fn run_select(
        &self,
        select: &crate::ast::SelectStatement,
        limits: QueryLimits,
        started: Instant,
        variables: &HashMap<String, Value>,
        monitor: Option<&QueryMonitor>,
        ambient_release: Option<&str>,
    ) -> Result<(StatementOutcome, Option<String>), SqlError> {
        // A statement-level `AS OF` and the session's ambient pin (the web
        // tier's `?release=`) must agree when both are present.
        if let (Some(a), Some(r)) = (select.as_of.as_deref(), ambient_release) {
            if !a.eq_ignore_ascii_case(r) {
                return Err(SqlError::Plan(format!(
                    "conflicting AS OF releases in one statement: {a} vs {r}"
                )));
            }
        }
        let release = select.as_of.as_deref().or(ambient_release);
        let db = self.db_for(release)?;
        let plan = self.planner_on(db, release).plan_select(select)?;
        let rendered = if self.capture_plans {
            Some(plan.render())
        } else {
            None
        };
        let executor = Executor::new(db, &self.functions, variables, limits).with_monitor(monitor);
        let executed = executor.execute_select(&plan)?;
        let wall = started.elapsed();
        let stats = ExecutionStats::from_scan(
            executed.stats,
            wall,
            &self.simulator,
            plan_is_predicate_heavy(&plan),
            self.paper_scale_factor,
        );
        self.counters.selects.fetch_add(1, Ordering::Relaxed);
        self.counters
            .rows_returned
            .fetch_add(executed.result.rows.len() as u64, Ordering::Relaxed);
        let into = plan.into.clone();
        Ok((
            StatementOutcome {
                result: executed.result,
                rows_affected: 0,
                stats,
                plan: rendered,
            },
            into,
        ))
    }

    /// `SELECT ... INTO ##target`: create the target table and fill it.
    fn materialize_into(&mut self, target: &str, result: &ResultSet) -> Result<usize, SqlError> {
        if self.db.has_table(target) {
            self.db.drop_table(target)?;
        }
        let columns: Vec<ColumnDef> = result
            .columns
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let ty = result
                    .rows
                    .iter()
                    .find_map(|r| r[i].data_type())
                    .unwrap_or(skyserver_storage::DataType::Float);
                ColumnDef::new(name, ty).nullable()
            })
            .collect();
        self.db.create_table(target, TableSchema::new(columns))?;
        let ts = self.db.next_timestamp();
        let inserted = self.db.insert_many(target, result.rows.clone(), ts)?;
        Ok(inserted)
    }

    fn execute_insert(
        &mut self,
        insert: &crate::ast::InsertStatement,
        limits: QueryLimits,
    ) -> Result<usize, SqlError> {
        let table = self.db.table(&insert.table)?;
        let table_columns = table.schema().column_names();
        let column_order: Vec<usize> = if insert.columns.is_empty() {
            (0..table_columns.len()).collect()
        } else {
            insert
                .columns
                .iter()
                .map(|c| {
                    table
                        .schema()
                        .column_index(c)
                        .ok_or_else(|| SqlError::Plan(format!("unknown column {c}")))
                })
                .collect::<Result<_, _>>()?
        };
        let width = table_columns.len();
        let variables = self
            .variables
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let value_rows: Vec<Vec<Value>> = match &insert.source {
            InsertSource::Values(rows) => {
                let schema = RowSchema::default();
                let ctx = EvalContext {
                    schema: &schema,
                    variables: &variables,
                    functions: &self.functions,
                    aggregates: None,
                };
                rows.iter()
                    .map(|exprs| {
                        exprs
                            .iter()
                            .map(|e| eval(e, &[], &ctx))
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<_, _>>()?
            }
            InsertSource::Select(select) => {
                // `INSERT ... SELECT ... AS OF drN` reads the pinned
                // snapshot while inserting into the live head.
                let release = select.as_of.as_deref();
                let src_db = self.db_for(release)?;
                let plan = self.planner_on(src_db, release).plan_select(select)?;
                let executor = Executor::new(src_db, &self.functions, &variables, limits);
                executor.execute_select(&plan)?.result.rows
            }
        };
        drop(variables);
        let mut count = 0;
        for values in value_rows {
            if values.len() != column_order.len() {
                return Err(SqlError::Execution(format!(
                    "INSERT supplies {} values for {} columns",
                    values.len(),
                    column_order.len()
                )));
            }
            let mut row = vec![Value::Null; width];
            for (pos, value) in column_order.iter().zip(values) {
                row[*pos] = value;
            }
            self.db.insert(&insert.table, row)?;
            count += 1;
        }
        Ok(count)
    }

    fn execute_update(&mut self, update: &crate::ast::UpdateStatement) -> Result<usize, SqlError> {
        let table = self.db.table(&update.table)?;
        let names = table.schema().column_names();
        let schema = RowSchema::for_table(None, &names);
        let assignment_positions: Vec<(usize, &Expr)> = update
            .assignments
            .iter()
            .map(|(col, e)| {
                table
                    .schema()
                    .column_index(col)
                    .map(|i| (i, e))
                    .ok_or_else(|| SqlError::Plan(format!("unknown column {col}")))
            })
            .collect::<Result<_, _>>()?;
        let variables = self
            .variables
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ctx = EvalContext {
            schema: &schema,
            variables: &variables,
            functions: &self.functions,
            aggregates: None,
        };
        // Collect new rows first (borrow rules), then apply.
        let mut changes: Vec<(usize, Vec<Value>)> = Vec::new();
        for (row_id, row) in table.iter() {
            let keep = match &update.selection {
                Some(pred) => eval(pred, &row, &ctx)?.is_truthy(),
                None => true,
            };
            if !keep {
                continue;
            }
            let mut new_row = row.clone();
            for (pos, expr) in &assignment_positions {
                new_row[*pos] = eval(expr, &row, &ctx)?;
            }
            changes.push((row_id, new_row));
        }
        let count = changes.len();
        for (row_id, new_row) in changes {
            // Delete + insert keeps secondary indices consistent.
            self.db.delete(&update.table, row_id)?;
            self.db.insert(&update.table, new_row)?;
        }
        Ok(count)
    }

    fn execute_delete(&mut self, delete: &crate::ast::DeleteStatement) -> Result<usize, SqlError> {
        let table = self.db.table(&delete.table)?;
        let names = table.schema().column_names();
        let schema = RowSchema::for_table(None, &names);
        let variables = self
            .variables
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ctx = EvalContext {
            schema: &schema,
            variables: &variables,
            functions: &self.functions,
            aggregates: None,
        };
        let mut victims = Vec::new();
        for (row_id, row) in table.iter() {
            let hit = match &delete.selection {
                Some(pred) => eval(pred, &row, &ctx)?.is_truthy(),
                None => true,
            };
            if hit {
                victims.push(row_id);
            }
        }
        let count = victims.len();
        for row_id in victims {
            self.db.delete(&delete.table, row_id)?;
        }
        Ok(count)
    }
}

/// Evaluate a `SET @var = <expr>` right-hand side against a variable map.
fn eval_variable(
    expr: &Expr,
    variables: &HashMap<String, Value>,
    functions: &FunctionRegistry,
) -> Result<Value, SqlError> {
    let schema = RowSchema::default();
    let ctx = EvalContext {
        schema: &schema,
        variables,
        functions,
        aggregates: None,
    };
    eval(expr, &[], &ctx)
}

/// Human-readable statement kind for read-only-violation errors.
fn statement_kind(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::Declare { .. } => "DECLARE",
        Statement::SetVariable { .. } => "SET",
        Statement::Select(_) => "SELECT",
        Statement::Insert(_) => "INSERT",
        Statement::Update(_) => "UPDATE",
        Statement::Delete(_) => "DELETE",
        Statement::CreateTable(_) => "CREATE TABLE",
        Statement::CreateIndex(_) => "CREATE INDEX",
        Statement::CreateView(_) => "CREATE VIEW",
        Statement::DropTable { .. } => "DROP TABLE",
        Statement::ExplainVerify(_) => "EXPLAIN VERIFY",
        Statement::PublishRelease { .. } => "PUBLISH RELEASE",
    }
}

/// Does the plan contain arithmetic-heavy predicates (the paper's 19
/// clocks/byte class) rather than simple comparisons (10 clocks/byte)?
fn plan_is_predicate_heavy(plan: &SelectPlan) -> bool {
    fn expr_heavy(e: &Expr) -> bool {
        match e {
            Expr::Binary { left, op, right } => {
                matches!(
                    op,
                    crate::ast::BinaryOp::Add
                        | crate::ast::BinaryOp::Sub
                        | crate::ast::BinaryOp::Mul
                        | crate::ast::BinaryOp::Div
                ) || expr_heavy(left)
                    || expr_heavy(right)
            }
            Expr::Function { name, args } => {
                !crate::ast::is_aggregate_name(name) || args.iter().any(expr_heavy)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr_heavy(expr) || expr_heavy(low) || expr_heavy(high),
            Expr::Unary { expr, .. } => expr_heavy(expr),
            _ => false,
        }
    }
    plan.sources
        .iter()
        .filter_map(|s| s.pushed_predicate.as_ref())
        .any(expr_heavy)
        || plan.residual.as_ref().map(expr_heavy).unwrap_or(false)
        || plan
            .joins
            .iter()
            .filter_map(|j| j.residual.as_ref())
            .any(expr_heavy)
}

/// Render a SELECT statement back to SQL text (used to store view bodies
/// created through `CREATE VIEW`).
fn render_select_source(select: &crate::ast::SelectStatement) -> String {
    use crate::plan::render_expr;
    let mut sql = String::from("select ");
    let projections: Vec<String> = select
        .projections
        .iter()
        .map(|p| match p {
            crate::ast::SelectItem::Wildcard => "*".to_string(),
            crate::ast::SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
            crate::ast::SelectItem::Expr { expr, alias } => match alias {
                Some(a) => format!("{} as {a}", render_expr(expr)),
                None => render_expr(expr),
            },
        })
        .collect();
    sql.push_str(&projections.join(", "));
    if !select.from.is_empty() {
        sql.push_str(" from ");
        let sources: Vec<String> = select
            .from
            .iter()
            .map(|f| {
                let base = match &f.source {
                    crate::ast::TableSource::Named(n) => n.clone(),
                    crate::ast::TableSource::Function { name, args } => format!(
                        "{name}({})",
                        args.iter().map(render_expr).collect::<Vec<_>>().join(", ")
                    ),
                    crate::ast::TableSource::Derived(d) => {
                        format!("({})", render_select_source(d))
                    }
                };
                match &f.alias {
                    Some(a) => format!("{base} as {a}"),
                    None => base,
                }
            })
            .collect();
        sql.push_str(&sources.join(", "));
    }
    if let Some(w) = &select.selection {
        sql.push_str(" where ");
        sql.push_str(&render_expr(w));
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver_storage::DataType;

    impl SqlEngine {
        /// Test shorthand: execute a write statement with no limits.
        fn execute_unlimited(&mut self, sql: &str) -> Result<StatementOutcome, SqlError> {
            self.execute(sql, QueryLimits::UNLIMITED)
        }
    }

    /// Build a small photoObj-like database for engine tests.
    fn engine() -> SqlEngine {
        let mut db = Database::new("mini_sky");
        let schema = TableSchema::new(vec![
            ColumnDef::new("objID", DataType::Int),
            ColumnDef::new("htmID", DataType::Int),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("dec", DataType::Float),
            ColumnDef::new("type", DataType::Int),
            ColumnDef::new("flags", DataType::Int),
            ColumnDef::new("modelMag_r", DataType::Float),
            ColumnDef::new("rowv", DataType::Float),
            ColumnDef::new("colv", DataType::Float),
        ])
        .with_primary_key(&["objID"]);
        db.create_table("photoObj", schema).unwrap();
        db.create_index(IndexDef::new("pk_photoObj", "photoObj", &["objID"]).unique())
            .unwrap();
        db.create_index(IndexDef::new("ix_htm", "photoObj", &["htmID"]))
            .unwrap();
        db.create_view(
            "Galaxy",
            "select * from photoObj where type = 3",
            "galaxies",
        )
        .unwrap();
        db.create_view("Star", "select * from photoObj where type = 6", "stars")
            .unwrap();
        for i in 0..200i64 {
            let is_galaxy = i % 2 == 0;
            let moving = i % 50 == 0;
            db.insert(
                "photoObj",
                vec![
                    Value::Int(i),
                    Value::Int(100_000 + i),
                    Value::Float(180.0 + (i as f64) * 0.01),
                    Value::Float(-0.5 + (i as f64) * 0.001),
                    Value::Int(if is_galaxy { 3 } else { 6 }),
                    Value::Int(if i % 10 == 0 { 64 } else { 0 }),
                    Value::Float(15.0 + (i % 70) as f64 * 0.1),
                    Value::Float(if moving { 10.0 } else { 0.0 }),
                    Value::Float(if moving { 10.0 } else { 0.0 }),
                ],
            )
            .unwrap();
        }
        let mut functions = FunctionRegistry::new();
        functions.register_scalar("dbo.fPhotoFlags", |args| {
            let name = args
                .first()
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_ascii_lowercase();
            Ok(Value::Int(match name.as_str() {
                "saturated" => 64,
                "primary" => 256,
                _ => 0,
            }))
        });
        functions.register_table("fGetNearbyObjEq", &["objID", "distance"], |db, args| {
            // A toy spatial function: every object within `radius` degrees of
            // the given ra (ignoring dec) -- enough to drive join plans.
            let ra = args[0].as_f64().unwrap_or(0.0);
            let radius = args.get(2).and_then(Value::as_f64).unwrap_or(1.0) / 60.0;
            let t = db.table("photoObj")?;
            let schema = t.schema();
            let ra_idx = schema.column_index("ra").unwrap();
            let id_idx = schema.column_index("objID").unwrap();
            let mut rs = ResultSet::empty(vec!["objID".into(), "distance".into()]);
            for (_, row) in t.iter() {
                let obj_ra = row[ra_idx].as_f64().unwrap_or(0.0);
                let d = (obj_ra - ra).abs();
                if d <= radius {
                    rs.rows
                        .push(vec![row[id_idx].clone(), Value::Float(d * 60.0)]);
                }
            }
            Ok(rs)
        });
        SqlEngine::new(db, functions)
    }

    #[test]
    fn simple_select_and_projection() {
        let e = engine();
        let r = e
            .query("select objID, ra from photoObj where objID = 5")
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.cell(0, "objID"), Some(&Value::Int(5)));
    }

    #[test]
    fn count_star_and_group_by() {
        let e = engine();
        let r = e.query("select count(*) from photoObj").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(200)));
        let r = e
            .query("select type, count(*) as n from photoObj group by type order by type")
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(0, "n"), Some(&Value::Int(100)));
        let r = e
            .query("select type, count(*) as n from photoObj group by type having count(*) > 150")
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn views_expand_to_base_table() {
        let e = engine();
        let galaxies = e.query("select count(*) from Galaxy").unwrap();
        assert_eq!(galaxies.scalar(), Some(&Value::Int(100)));
        let bright = e
            .query("select count(*) from Star where modelMag_r < 18")
            .unwrap();
        let total: i64 = bright.scalar().unwrap().as_i64().unwrap();
        assert!(total > 0 && total < 100);
    }

    #[test]
    fn declare_set_and_flag_arithmetic() {
        let mut e = engine();
        let outcome = e
            .execute(
                "declare @saturated bigint; \
                 set @saturated = dbo.fPhotoFlags('saturated'); \
                 select count(*) from photoObj where (flags & @saturated) = 0",
                QueryLimits::UNLIMITED,
            )
            .unwrap();
        assert_eq!(outcome.result.scalar(), Some(&Value::Int(180)));
        assert_eq!(e.variable("saturated"), Some(Value::Int(64)));
    }

    #[test]
    fn query1_shape_tvf_join_into_temp_table() {
        let mut e = engine();
        let outcome = e
            .execute(
                "declare @saturated bigint; \
                 set @saturated = dbo.fPhotoFlags('saturated'); \
                 select G.objID, GN.distance into ##results \
                 from Galaxy as G \
                 join fGetNearbyObjEq(180.5, -0.5, 120) as GN on G.objID = GN.objID \
                 where (G.flags & @saturated) = 0 \
                 order by distance",
                QueryLimits::UNLIMITED,
            )
            .unwrap();
        assert!(!outcome.result.is_empty());
        assert!(outcome.rows_affected > 0);
        // Distances come back sorted.
        let d = outcome.result.column_values("distance");
        for w in d.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // The temp table is queryable afterwards.
        let r = e.query("select count(*) from ##results").unwrap();
        assert_eq!(
            r.scalar().unwrap().as_i64().unwrap() as usize,
            outcome.rows_affected
        );
    }

    #[test]
    fn query15_shape_velocity_scan() {
        let e = engine();
        let r = e
            .query(
                "select objID, sqrt(rowv*rowv + colv*colv) as velocity from photoObj \
                 where (rowv*rowv + colv*colv) between 50 and 1000 and rowv >= 0 and colv >= 0",
            )
            .unwrap();
        assert_eq!(r.len(), 4, "the 4 synthetic movers");
        for row in &r.rows {
            let v = row[1].as_f64().unwrap();
            assert!((v - (200f64).sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn top_distinct_order_limits() {
        let e = engine();
        let r = e
            .query("select distinct type from photoObj order by type desc")
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], Value::Int(6));
        let r = e
            .query("select top 7 objID from photoObj order by objID")
            .unwrap();
        assert_eq!(r.len(), 7);
    }

    #[test]
    fn public_limits_truncate_rows() {
        let mut e = engine();
        let outcome = e
            .execute(
                "select objID from photoObj",
                QueryLimits {
                    max_rows: Some(50),
                    max_seconds: Some(30.0),
                    max_bytes: None,
                },
            )
            .unwrap();
        assert_eq!(outcome.result.len(), 50);
        assert!(outcome.result.truncated);
    }

    #[test]
    fn insert_update_delete_round_trip() {
        let mut e = engine();
        e.execute(
            "create table notes (id bigint not null, txt varchar, primary key (id))",
            QueryLimits::UNLIMITED,
        )
        .unwrap();
        let o = e
            .execute(
                "insert into notes (id, txt) values (1, 'first'), (2, 'second')",
                QueryLimits::UNLIMITED,
            )
            .unwrap();
        assert_eq!(o.rows_affected, 2);
        let o = e
            .execute(
                "update notes set txt = 'edited' where id = 2",
                QueryLimits::UNLIMITED,
            )
            .unwrap();
        assert_eq!(o.rows_affected, 1);
        let r = e.query("select txt from notes where id = 2").unwrap();
        assert_eq!(r.scalar(), Some(&Value::str("edited")));
        let o = e
            .execute("delete from notes where id = 1", QueryLimits::UNLIMITED)
            .unwrap();
        assert_eq!(o.rows_affected, 1);
        let r = e.query("select count(*) from notes").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn insert_from_select_and_create_index() {
        let mut e = engine();
        e.execute(
            "create table bright (objID bigint not null, modelMag_r float not null)",
            QueryLimits::UNLIMITED,
        )
        .unwrap();
        let o = e
            .execute(
                "insert into bright select objID, modelMag_r from photoObj where modelMag_r < 16",
                QueryLimits::UNLIMITED,
            )
            .unwrap();
        assert!(o.rows_affected > 0);
        e.execute(
            "create index ix_bright on bright (modelMag_r) include (objID)",
            QueryLimits::UNLIMITED,
        )
        .unwrap();
        let r = e.query("select count(*) from bright").unwrap();
        assert_eq!(
            r.scalar().unwrap().as_i64().unwrap() as usize,
            o.rows_affected
        );
    }

    #[test]
    fn create_view_via_sql() {
        let mut e = engine();
        e.execute(
            "create view BrightGalaxy as select * from photoObj where type = 3 and modelMag_r < 17",
            QueryLimits::UNLIMITED,
        )
        .unwrap();
        let r = e.query("select count(*) from BrightGalaxy").unwrap();
        let n = r.scalar().unwrap().as_i64().unwrap();
        assert!(n > 0 && n < 100);
    }

    #[test]
    fn explain_shows_plan_shape() {
        let e = engine();
        let plan = e
            .explain(
                "select G.objID, GN.distance from Galaxy as G \
                 join fGetNearbyObjEq(180.5, -0.5, 120) as GN on G.objID = GN.objID \
                 where (G.flags & 64) = 0 order by distance",
            )
            .unwrap();
        assert!(plan.contains("TableFunction(fGetNearbyObjEq"));
        assert!(plan.contains("index lookup pk_photoObj"));
        assert!(plan.contains("Sort(distance)"));
        let class = e
            .plan_class("select count(*) from photoObj where ra + dec > 0")
            .unwrap();
        assert_eq!(class, PlanClass::Scan);
    }

    #[test]
    fn left_join_where_filters_after_null_extension() {
        let mut e = engine();
        e.execute(
            "create table a (id bigint not null, primary key (id))",
            QueryLimits::UNLIMITED,
        )
        .unwrap();
        e.execute(
            "create table b (id bigint not null, x bigint not null, primary key (id))",
            QueryLimits::UNLIMITED,
        )
        .unwrap();
        e.execute("insert into a (id) values (1), (2)", QueryLimits::UNLIMITED)
            .unwrap();
        e.execute(
            "insert into b (id, x) values (1, 5)",
            QueryLimits::UNLIMITED,
        )
        .unwrap();
        // A WHERE predicate on the nullable side filters the NULL-extended
        // row out: only the matched row survives.
        let r = e
            .query("select a.id from a left join b on a.id = b.id where b.x = 5")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
        // The anti-join idiom keeps exactly the unmatched row.
        let r = e
            .query("select a.id from a left join b on a.id = b.id where b.x is null")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
        // Without a WHERE, both rows come back (one NULL-extended).
        let r = e
            .query("select a.id, b.x from a left join b on a.id = b.id order by a.id")
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[1][1], Value::Null);
    }

    #[test]
    fn left_join_against_a_merged_view_preserves_outer_rows() {
        let e = engine();
        // No star is a galaxy, so every one of the 100 stars is preserved
        // NULL-extended.  The Galaxy view's qualifiers must filter the
        // *scan*, not the joined result — otherwise the NULL rows vanish.
        let r = e
            .query("select count(*) from Star s left join Galaxy g on s.objID = g.objID")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(100)));
        let r = e
            .query(
                "select count(*) from Star s left join Galaxy g on s.objID = g.objID \
                 where g.objID is null",
            )
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(100)));
    }

    #[test]
    fn explain_lists_fired_rules_for_figure_10_and_11_shapes() {
        let mut e = engine();
        // Figure 10: a spatial table-valued function drives a nested-loop
        // join that probes the objID B-tree.
        let fig10 = e
            .explain(
                "select G.objID, GN.distance from Galaxy as G \
                 join fGetNearbyObjEq(180.5, -0.5, 120) as GN on G.objID = GN.objID \
                 where (G.flags & 64) = 0 order by distance",
            )
            .unwrap();
        assert!(fig10.contains("TableFunction(fGetNearbyObjEq"));
        assert!(fig10.contains("-- optimizer rules fired:"));
        for rule in [
            "view_merge",
            "predicate_pushdown",
            "spatial_join_rewrite",
            "join_strategy",
        ] {
            assert!(fig10.contains(rule), "{rule} missing from:\n{fig10}");
        }
        // Figure 11: an unindexed arithmetic predicate falls back to a
        // parallel sequential scan (threshold lowered below the 200 rows).
        e.set_parallel_scan_threshold(100);
        let fig11 = e
            .explain("select count(*) from photoObj where (rowv*rowv + colv*colv) > 1")
            .unwrap();
        assert!(fig11.contains("ParallelTableScan(photoObj"), "{fig11}");
        assert!(fig11.contains("parallel_scan_fallback"), "{fig11}");
        // And the plan summary agrees.
        let summary = e
            .plan_summary("select count(*) from photoObj where (rowv*rowv + colv*colv) > 1")
            .unwrap();
        assert_eq!(summary.class, PlanClass::Scan);
        assert!(summary.rules_fired.contains(&"parallel_scan_fallback"));
    }

    #[test]
    fn parallel_scan_returns_the_same_rows_as_serial() {
        let serial = engine();
        let mut parallel = engine();
        parallel.set_parallel_scan_threshold(1);
        let sql = "select objID from photoObj where modelMag_r < 18 order by objID";
        let a = serial.query(sql).unwrap();
        let b = parallel.query(sql).unwrap();
        assert_eq!(a.rows, b.rows);
        assert!(!a.rows.is_empty());
    }

    #[test]
    fn limit_hint_stops_the_scan_early() {
        let mut e = engine();
        e.set_capture_plans(true);
        let outcome = e
            .execute("select top 5 objID from photoObj", QueryLimits::UNLIMITED)
            .unwrap();
        assert_eq!(outcome.result.len(), 5);
        // An objID-only query is answered from the covering pk index, and
        // the hint stops that scan after 5 entries instead of all 200.
        assert_eq!(outcome.stats.stats.rows_from_index, 5);
        assert_eq!(outcome.stats.stats.rows_scanned, 0);
        assert!(outcome.plan.unwrap().contains("limit 5"));
    }

    #[test]
    fn stats_report_rows_and_simulation() {
        let mut e = engine();
        e.set_paper_scale_factor(Some(70_000.0));
        let o = e
            .execute(
                "select count(*) from photoObj where (rowv*rowv + colv*colv) > 1",
                QueryLimits::UNLIMITED,
            )
            .unwrap();
        assert_eq!(o.stats.stats.rows_scanned, 200);
        assert!(o.stats.stats.bytes_scanned > 0);
        assert!(o.stats.wall_seconds >= 0.0);
        let paper = o.stats.simulated_at_paper_scale.unwrap();
        assert!(paper.elapsed_seconds > o.stats.simulated.elapsed_seconds);
    }

    #[test]
    fn errors_are_reported() {
        let mut e = engine();
        assert!(e.query("select * from missing_table").is_err());
        assert!(e.query("select nonsense syntax here from").is_err());
        assert!(e.query("select dbo.fMissing(1) from photoObj").is_err());
        assert!(e
            .execute(
                "insert into photoObj (objID) values (1, 2)",
                QueryLimits::UNLIMITED
            )
            .is_err());
    }

    #[test]
    fn read_path_runs_declare_set_select_through_shared_ref() {
        let e = engine();
        // A full DECLARE/SET/SELECT script through `&self`.
        let outcome = e
            .execute_read(
                "declare @saturated bigint; \
                 set @saturated = dbo.fPhotoFlags('saturated'); \
                 select count(*) from photoObj where (flags & @saturated) = 0",
                QueryLimits::UNLIMITED,
            )
            .unwrap();
        assert_eq!(outcome.result.scalar(), Some(&Value::Int(180)));
        // The script's variables stayed local to the call.
        assert_eq!(e.variable("saturated"), None);
        // Counters observed both the select and its rows.
        let stats = e.counters();
        assert_eq!(stats.read_path_selects, 1);
        assert_eq!(stats.selects, 1);
        assert_eq!(stats.rows_returned, 1);
    }

    #[test]
    fn read_path_sees_session_variables_but_cannot_change_them() {
        let mut e = engine();
        e.execute(
            "declare @limit float; set @limit = 16.0",
            QueryLimits::UNLIMITED,
        )
        .unwrap();
        let r = e
            .execute_read(
                "select count(*) from photoObj where modelMag_r < @limit",
                QueryLimits::UNLIMITED,
            )
            .unwrap();
        assert!(r.result.scalar().unwrap().as_i64().unwrap() > 0);
        // Shadowing the variable inside a read script does not leak back.
        e.execute_read("set @limit = 99.0; select 1", QueryLimits::UNLIMITED)
            .unwrap();
        assert_eq!(e.variable("limit"), Some(Value::Float(16.0)));
    }

    #[test]
    fn read_path_rejects_writes() {
        let e = engine();
        for sql in [
            "insert into photoObj (objID) values (999)",
            "update photoObj set ra = 0 where objID = 1",
            "delete from photoObj where objID = 1",
            "create table t (id bigint not null)",
            "drop table photoObj",
            "select objID into ##tmp from photoObj",
        ] {
            match e.execute_read(sql, QueryLimits::UNLIMITED) {
                Err(SqlError::ReadOnly(_)) => {}
                other => panic!("{sql} should be rejected as read-only, got {other:?}"),
            }
        }
        // Nothing was written.
        assert_eq!(
            e.query("select count(*) from photoObj").unwrap().scalar(),
            Some(&Value::Int(200))
        );
    }

    #[test]
    fn concurrent_read_queries_share_one_engine() {
        let e = engine();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in 0..8i64 {
                let e = &e;
                handles.push(scope.spawn(move || {
                    for _ in 0..5 {
                        let r = e
                            .query(&format!(
                                "select count(*) from photoObj where objID < {}",
                                (i + 1) * 10
                            ))
                            .unwrap();
                        assert_eq!(r.scalar(), Some(&Value::Int((i + 1) * 10)));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(e.counters().selects, 40);
    }

    #[test]
    fn monitor_reports_progress_and_cancels_a_running_scan() {
        let e = engine();
        // A completed scan reports every processed row.
        let m = QueryMonitor::new();
        let r = e
            .execute_read_with(
                "select count(*) from photoObj where modelMag_r > 0",
                QueryLimits::UNLIMITED,
                Some(&m),
            )
            .unwrap();
        assert_eq!(r.result.scalar(), Some(&Value::Int(200)));
        assert_eq!(m.rows_processed(), 200, "all scanned rows reported");
        // A pre-cancelled monitor stops the query at the first batch
        // boundary (the table is smaller than one batch, so cancel before
        // starting to make the effect deterministic).
        let m = QueryMonitor::new();
        m.cancel();
        // Nested loop over 200x200 = 40k probes crosses many batch
        // boundaries; cancellation must surface as SqlError::Cancelled.
        let err = e
            .execute_read_with(
                "select count(*) from photoObj a join photoObj b on a.objID < b.objID",
                QueryLimits::UNLIMITED,
                Some(&m),
            )
            .unwrap_err();
        assert_eq!(err, SqlError::Cancelled);
    }

    #[test]
    fn cancelling_mid_flight_stops_a_long_join() {
        let e = std::sync::Arc::new(engine());
        let m = std::sync::Arc::new(QueryMonitor::new());
        // Pace the query before it starts so it cannot finish before the
        // cancel lands (~150 batches x 2 ms >> the time to cancel).
        m.set_pace(std::time::Duration::from_millis(2));
        let worker = {
            let e = std::sync::Arc::clone(&e);
            let m = std::sync::Arc::clone(&m);
            std::thread::spawn(move || {
                e.execute_read_with(
                    // ~40k nested-loop probes: slow enough to observe, fast
                    // enough for CI if cancellation were broken.
                    "select count(*) from photoObj a join photoObj b on a.objID < b.objID",
                    QueryLimits::UNLIMITED,
                    Some(&m),
                )
            })
        };
        while m.rows_processed() == 0 {
            std::thread::yield_now();
        }
        m.cancel();
        let result = worker.join().unwrap();
        assert_eq!(result.unwrap_err(), SqlError::Cancelled);
        // Progress halted: the counter does not advance after cancellation.
        let frozen = m.rows_processed();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(m.rows_processed(), frozen);
    }

    #[test]
    fn cancellation_lands_even_when_every_join_probe_misses() {
        // objID (0..200) never equals htmID (100_000..): the join produces
        // zero matches, so cancellation must be honoured on the probes
        // themselves, not only on per-match work.
        let e = engine();
        let m = QueryMonitor::new();
        m.cancel();
        let err = e
            .execute_read_with(
                "select count(*) from photoObj a join photoObj b on a.objID = b.htmID",
                QueryLimits::UNLIMITED,
                Some(&m),
            )
            .unwrap_err();
        assert_eq!(err, SqlError::Cancelled);
    }

    #[test]
    fn parallel_scan_workers_honour_the_monitor() {
        let mut e = engine();
        e.set_parallel_scan_threshold(1);
        let m = QueryMonitor::new();
        let r = e
            .execute_read_with(
                "select count(*) from photoObj where (rowv*rowv + colv*colv) > 1",
                QueryLimits::UNLIMITED,
                Some(&m),
            )
            .unwrap();
        assert_eq!(r.result.scalar(), Some(&Value::Int(4)));
        assert_eq!(m.rows_processed(), 200);
        let m = QueryMonitor::new();
        m.cancel();
        let err = e
            .execute_read_with(
                "select count(*) from photoObj where (rowv*rowv + colv*colv) > 1",
                QueryLimits::UNLIMITED,
                Some(&m),
            )
            .unwrap_err();
        assert_eq!(err, SqlError::Cancelled);
    }

    #[test]
    fn fromless_select_evaluates_expressions() {
        let e = engine();
        let r = e.query("select 1 + 1, pi()").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        assert!((r.rows[0][1].as_f64().unwrap() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn publish_release_pins_a_snapshot_for_as_of() {
        let mut e = engine();
        e.execute_unlimited("publish release dr1").unwrap();
        // Mutate the head after the publish; the snapshot must not move.
        e.execute_unlimited(
            "insert into photoObj (objID, htmID, ra, dec, type, flags, modelMag_r, rowv, colv) \
             values (9000, 109000, 181.0, 0.1, 3, 0, 16.0, 0.0, 0.0)",
        )
        .unwrap();
        let head = e.query("select count(*) from photoObj").unwrap();
        assert_eq!(head.scalar(), Some(&Value::Int(201)));
        let pinned = e.query("select count(*) from photoObj as of dr1").unwrap();
        assert_eq!(pinned.scalar(), Some(&Value::Int(200)));
        // Release names are case-insensitive on lookup.
        let pinned = e.query("select count(*) from photoObj as of DR1").unwrap();
        assert_eq!(pinned.scalar(), Some(&Value::Int(200)));
    }

    #[test]
    fn as_of_matches_ambient_release_pin() {
        let mut e = engine();
        e.publish_release("dr1").unwrap();
        e.execute_unlimited(
            "insert into photoObj (objID, htmID, ra, dec, type, flags, modelMag_r, rowv, colv) \
             values (9001, 109001, 181.0, 0.1, 6, 0, 16.0, 0.0, 0.0)",
        )
        .unwrap();
        let sql = "select count(*) from photoObj";
        let via_as_of = e.query(&format!("{sql} as of dr1")).unwrap();
        let via_param = e.query_on(sql, Some("dr1")).unwrap();
        assert_eq!(via_as_of.rows, via_param.rows);
        // An explicit AS OF that agrees with the ambient pin is fine ...
        let both = e
            .query_on(&format!("{sql} as of dr1"), Some("dr1"))
            .unwrap();
        assert_eq!(both.rows, via_param.rows);
        // ... but a conflicting one is a planning error.
        e.publish_release("dr2").unwrap();
        let err = e
            .query_on(&format!("{sql} as of dr2"), Some("dr1"))
            .unwrap_err();
        assert!(matches!(err, SqlError::Plan(_)), "got {err:?}");
    }

    #[test]
    fn unknown_release_is_a_structured_error() {
        let e = engine();
        let err = e
            .query("select count(*) from photoObj as of dr9")
            .unwrap_err();
        assert_eq!(err, SqlError::UnknownRelease("dr9".into()));
        assert_eq!(err.code(), "unknown_release");
        let err = e.query_on("select 1", Some("nope")).unwrap_err();
        assert_eq!(err, SqlError::UnknownRelease("nope".into()));
    }

    #[test]
    fn publish_release_is_rejected_on_the_read_path() {
        let mut e = engine();
        e.publish_release("dr1").unwrap();
        let err = e
            .execute_read("publish release dr2", QueryLimits::UNLIMITED)
            .unwrap_err();
        assert!(matches!(err, SqlError::ReadOnly(_)), "got {err:?}");
        // Duplicate publishes are refused: releases are immutable.
        let err = e.execute_unlimited("publish release dr1").unwrap_err();
        assert!(matches!(err, SqlError::Storage(_)), "got {err:?}");
    }

    #[test]
    fn explain_and_verifier_see_the_release_pin() {
        let mut e = engine();
        e.publish_release("dr1").unwrap();
        let text = e
            .explain("select objID from photoObj where objID = 7 as of dr1")
            .unwrap();
        assert!(text.contains("-- release: dr1"), "missing pin in:\n{text}");
        let plain = e
            .explain("select objID from photoObj where objID = 7")
            .unwrap();
        assert!(!plain.contains("-- release:"), "spurious pin in:\n{plain}");
        let report = e
            .verify("select objID from photoObj where objID = 7 as of dr1")
            .unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn insert_select_reads_the_pinned_snapshot() {
        let mut e = engine();
        e.execute_unlimited("create table frozen (objID int, modelMag_r float)")
            .unwrap();
        e.publish_release("dr1").unwrap();
        e.execute_unlimited(
            "insert into photoObj (objID, htmID, ra, dec, type, flags, modelMag_r, rowv, colv) \
             values (9002, 109002, 181.0, 0.1, 3, 0, 16.0, 0.0, 0.0)",
        )
        .unwrap();
        // Reads dr1 (200 rows), writes the live head.
        e.execute_unlimited("insert into frozen select objID, modelMag_r from photoObj as of dr1")
            .unwrap();
        let n = e.query("select count(*) from frozen").unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(200)));
    }

    #[test]
    fn release_diff_reports_changed_tables() {
        let mut e = engine();
        e.publish_release("dr1").unwrap();
        e.execute_unlimited(
            "insert into photoObj (objID, htmID, ra, dec, type, flags, modelMag_r, rowv, colv) \
             values (9003, 109003, 181.0, 0.1, 3, 0, 16.0, 0.0, 0.0)",
        )
        .unwrap();
        e.publish_release("dr2").unwrap();
        let diff = e.release_diff("dr1", "dr2").unwrap();
        assert_eq!(diff.from, "dr1");
        assert_eq!(diff.to, "dr2");
        assert!(diff.tables.iter().any(|t| t.table == "photoObj"));
        let err = e.release_diff("dr1", "dr9").unwrap_err();
        assert_eq!(err, SqlError::UnknownRelease("dr9".into()));
    }

    #[test]
    fn fork_shares_releases_but_not_future_writes() {
        let mut e = engine();
        e.publish_release("dr1").unwrap();
        let fork = e.fork();
        assert_eq!(fork.release_names(), vec!["dr1".to_string()]);
        // Writes to the original do not appear in the fork.
        e.execute_unlimited(
            "insert into photoObj (objID, htmID, ra, dec, type, flags, modelMag_r, rowv, colv) \
             values (9004, 109004, 181.0, 0.1, 3, 0, 16.0, 0.0, 0.0)",
        )
        .unwrap();
        let n = fork.query("select count(*) from photoObj").unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(200)));
    }
}
