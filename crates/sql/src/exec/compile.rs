//! Expression compilation: from AST [`Expr`] trees to ordinal-resolved,
//! constant-folded programs evaluated once per row without name lookups.
//!
//! The tree-walking interpreter in [`crate::expr`] resolves every column
//! reference by scanning the [`RowSchema`] with case-insensitive string
//! compares, lowercases variable names, normalizes function names and
//! re-parses `LIKE` patterns — *per row*.  On the paper's scan-heavy
//! workload (20 data-mining queries over multi-million-row tables, Figure
//! 13) that bookkeeping dominates the scan loop.  A [`CompiledExpr`] does
//! all of it once, at plan-finalization time:
//!
//! * column references become pre-resolved **ordinals** ([`CompiledExpr::Col`]),
//! * literal and constant subtrees are **folded** (only when folding cannot
//!   change error or short-circuit semantics),
//! * `AND`/`OR` chains flatten into **short-circuiting conjunct programs**
//!   with neutral constants dropped,
//! * constant `LIKE` patterns parse once into a [`LikeMatcher`],
//! * variable / function / aggregate names are pre-normalized so the per-row
//!   lookups allocate nothing.
//!
//! Evaluation semantics are *identical* to the interpreter (three-valued
//! logic, NULL propagation, coercions, evaluation order, error sites) — a
//! property test in `lib.rs` pins compiled ≡ interpreted on randomized
//! expression trees and rows.

use crate::ast::{is_aggregate_name, BinaryOp, Expr, UnaryOp};
use crate::error::SqlError;
use crate::expr::{
    aggregate_key, apply_binary, apply_unary, between_value, EvalContext, RowSchema,
};
use crate::functions::{eval_builtin_normalized, is_builtin, normalize_name, FunctionRegistry};
use skyserver_storage::{DataType, Value};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// LIKE matcher
// ---------------------------------------------------------------------------

/// One unit of a `%`-free pattern segment: a literal byte (pre-lowercased)
/// or the single-character wildcard `_`.
#[derive(Debug, Clone, PartialEq)]
enum LikeAtom {
    /// A literal byte, compared case-insensitively (ASCII).
    Byte(u8),
    /// `_`: matches exactly one byte.
    Any,
}

/// A `LIKE` pattern parsed once into `%`-separated segments.
///
/// Matching walks the text left to right, anchoring the first/last segment
/// when the pattern does not start/end with `%` and finding each middle
/// segment at its earliest position (the classic greedy wildcard algorithm).
/// Worst case is O(text x pattern) — the naive per-position retry a
/// recursive matcher performs on patterns like `a%a%a%...%b` is structurally
/// impossible, because every `%` is resolved by a single memoized
/// segment-search instead of a branching retry.
#[derive(Debug, Clone, PartialEq)]
pub struct LikeMatcher {
    segments: Vec<Vec<LikeAtom>>,
    anchored_start: bool,
    anchored_end: bool,
}

impl LikeMatcher {
    /// Parse a pattern (case-insensitively) into a reusable matcher.
    pub fn new(pattern: &str) -> LikeMatcher {
        let lowered = pattern.to_ascii_lowercase();
        let bytes = lowered.as_bytes();
        let anchored_start = bytes.first().is_none_or(|&b| b != b'%');
        let anchored_end = bytes.last().is_none_or(|&b| b != b'%');
        let segments = bytes
            .split(|&b| b == b'%')
            .filter(|seg| !seg.is_empty())
            .map(|seg| {
                seg.iter()
                    .map(|&b| {
                        if b == b'_' {
                            LikeAtom::Any
                        } else {
                            LikeAtom::Byte(b)
                        }
                    })
                    .collect()
            })
            .collect();
        LikeMatcher {
            segments,
            anchored_start,
            anchored_end,
        }
    }

    /// Does the text match?  Case-insensitive (ASCII), byte oriented —
    /// exactly the semantics of [`crate::expr::like_match`].
    pub fn matches(&self, text: &str) -> bool {
        let t = text.as_bytes();
        let segs = &self.segments;
        if segs.is_empty() {
            // "" (anchored) matches only the empty string; "%"/"%%" match
            // anything.
            return !self.anchored_start || t.is_empty();
        }
        if self.anchored_start && self.anchored_end && segs.len() == 1 {
            // No `%` at all: the segment must cover the whole text.
            return segs[0].len() == t.len() && seg_match_at(&segs[0], t, 0);
        }
        let mut pos = 0;
        let mut first = 0;
        let mut last = segs.len();
        if self.anchored_start {
            if !seg_match_at(&segs[0], t, 0) {
                return false;
            }
            pos = segs[0].len();
            first = 1;
        }
        let mut tail_limit = t.len();
        if self.anchored_end {
            let seg = &segs[last - 1];
            if t.len() < seg.len() {
                return false;
            }
            let at = t.len() - seg.len();
            if !seg_match_at(seg, t, at) {
                return false;
            }
            last -= 1;
            tail_limit = at;
        }
        if pos > tail_limit {
            // Anchored prefix and suffix overlap (e.g. 'ab%b' vs "ab").
            return false;
        }
        // Middle segments: earliest match, left to right.
        for seg in &segs[first..last] {
            let mut found = None;
            let mut i = pos;
            while i + seg.len() <= tail_limit {
                if seg_match_at(seg, t, i) {
                    found = Some(i);
                    break;
                }
                i += 1;
            }
            match found {
                Some(i) => pos = i + seg.len(),
                None => return false,
            }
        }
        true
    }

    /// Match a [`Value`] the way the interpreter does: strings directly
    /// (no allocation), everything else through its display form.
    pub fn matches_value(&self, v: &Value) -> bool {
        match v {
            Value::Str(s) => self.matches(s),
            other => self.matches(&other.to_string()),
        }
    }
}

fn seg_match_at(seg: &[LikeAtom], t: &[u8], pos: usize) -> bool {
    if pos + seg.len() > t.len() {
        return false;
    }
    seg.iter().zip(&t[pos..]).all(|(a, &b)| match a {
        LikeAtom::Any => true,
        LikeAtom::Byte(c) => *c == b.to_ascii_lowercase(),
    })
}

// ---------------------------------------------------------------------------
// Compiled expressions
// ---------------------------------------------------------------------------

/// An expression compiled against a fixed [`RowSchema`]: column references
/// are ordinals, constants are folded, names are pre-normalized.
///
/// Built by [`compile`]; evaluated with [`CompiledExpr::eval`] using the
/// same [`EvalContext`] the interpreter takes (the schema field is unused —
/// ordinals replaced it).
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// A literal or folded constant subtree.
    Const(Value),
    /// A column reference resolved to its position in the row.
    Col(usize),
    /// A session variable: pre-lowercased lookup key + original spelling
    /// for error messages.
    Var {
        /// Lowercased map key.
        lookup: String,
        /// The name as written (for the undefined-variable error).
        name: String,
    },
    /// A pre-computed aggregate value, looked up by its canonical key during
    /// grouped projection.
    Agg {
        /// The [`aggregate_key`] of the original call expression.
        key: String,
        /// The function name as written (for error messages).
        name: String,
    },
    /// Unary operator.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand program.
        expr: Box<CompiledExpr>,
    },
    /// Short-circuiting conjunction over two or more programs (three-valued).
    And(Vec<CompiledExpr>),
    /// Short-circuiting disjunction over two or more programs (three-valued).
    Or(Vec<CompiledExpr>),
    /// Non-logical binary operator (arithmetic, comparison, bitwise).
    Binary {
        /// The operator (never `And`/`Or` — those flatten into [`CompiledExpr::And`]/[`CompiledExpr::Or`]).
        op: BinaryOp,
        /// Left operand program.
        left: Box<CompiledExpr>,
        /// Right operand program.
        right: Box<CompiledExpr>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested value program.
        expr: Box<CompiledExpr>,
        /// Lower bound program.
        low: Box<CompiledExpr>,
        /// Upper bound program.
        high: Box<CompiledExpr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] IN (items...)`.
    InList {
        /// Tested value program.
        expr: Box<CompiledExpr>,
        /// Item programs, probed in order with early exit.
        list: Vec<CompiledExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested value program.
        expr: Box<CompiledExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] LIKE <constant pattern>` with the pattern parsed once.
    LikePre {
        /// Tested value program.
        expr: Box<CompiledExpr>,
        /// The precompiled pattern.
        matcher: LikeMatcher,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] LIKE <dynamic pattern>`: the pattern is itself computed
    /// per row (rare), so the matcher is built per evaluation.
    LikeDyn {
        /// Tested value program.
        expr: Box<CompiledExpr>,
        /// Pattern program.
        pattern: Box<CompiledExpr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// Searched `CASE WHEN ... THEN ... [ELSE ...] END`.
    Case {
        /// `(condition, value)` branch programs, tested in order.
        branches: Vec<(CompiledExpr, CompiledExpr)>,
        /// `ELSE` program (`NULL` when absent).
        else_value: Option<Box<CompiledExpr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Operand program.
        expr: Box<CompiledExpr>,
        /// Target type.
        ty: DataType,
    },
    /// A scalar function call with the name normalized at compile time.
    Call {
        /// Normalized (lowercase, `dbo.`-stripped) function name.
        name: String,
        /// True when the name is a built-in; false for a registered UDF.
        builtin: bool,
        /// Argument programs.
        args: Vec<CompiledExpr>,
    },
}

impl CompiledExpr {
    /// Append every column ordinal this program reads to `out` (duplicates
    /// allowed — callers sort and dedup).  The batch executor uses this to
    /// materialize only the columns a scalar-fallback program actually
    /// touches instead of the whole row.
    pub fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            CompiledExpr::Const(_) | CompiledExpr::Var { .. } | CompiledExpr::Agg { .. } => {}
            CompiledExpr::Col(i) => out.push(*i),
            CompiledExpr::Unary { expr, .. }
            | CompiledExpr::IsNull { expr, .. }
            | CompiledExpr::LikePre { expr, .. }
            | CompiledExpr::Cast { expr, .. } => expr.collect_columns(out),
            CompiledExpr::And(items) | CompiledExpr::Or(items) => {
                items.iter().for_each(|e| e.collect_columns(out));
            }
            CompiledExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            CompiledExpr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            CompiledExpr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                list.iter().for_each(|e| e.collect_columns(out));
            }
            CompiledExpr::LikeDyn { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
            CompiledExpr::Case {
                branches,
                else_value,
            } => {
                for (condition, value) in branches {
                    condition.collect_columns(out);
                    value.collect_columns(out);
                }
                if let Some(e) = else_value {
                    e.collect_columns(out);
                }
            }
            CompiledExpr::Call { args, .. } => {
                args.iter().for_each(|e| e.collect_columns(out));
            }
        }
    }

    /// Evaluate an operand *by reference* where possible: columns borrow
    /// from the row and constants from the program, so the hot comparison
    /// shapes (`col < const`, `col BETWEEN a AND b`) move no `Value` at
    /// all.  Anything else falls back to owned evaluation.
    #[inline]
    fn operand<'v>(
        &'v self,
        row: &'v [Value],
        ctx: &EvalContext<'_>,
    ) -> Result<std::borrow::Cow<'v, Value>, SqlError> {
        use std::borrow::Cow;
        match self {
            CompiledExpr::Const(v) => Ok(Cow::Borrowed(v)),
            CompiledExpr::Col(idx) => row.get(*idx).map(Cow::Borrowed).ok_or_else(|| {
                SqlError::Execution(format!("row too short for column ordinal {idx}"))
            }),
            other => other.eval(row, ctx).map(Cow::Owned),
        }
    }

    /// Evaluate the program against a row.  `ctx.schema` is ignored —
    /// ordinals were resolved at compile time.
    pub fn eval(&self, row: &[Value], ctx: &EvalContext<'_>) -> Result<Value, SqlError> {
        match self {
            CompiledExpr::Const(v) => Ok(v.clone()),
            CompiledExpr::Col(idx) => row.get(*idx).cloned().ok_or_else(|| {
                SqlError::Execution(format!("row too short for column ordinal {idx}"))
            }),
            CompiledExpr::Var { lookup, name } => ctx
                .variables
                .get(lookup)
                .cloned()
                .ok_or_else(|| SqlError::Execution(format!("variable @{name} is not defined"))),
            CompiledExpr::Agg { key, name } => {
                if let Some(aggs) = ctx.aggregates {
                    if let Some(v) = aggs.get(key) {
                        return Ok(v.clone());
                    }
                }
                Err(SqlError::Plan(format!(
                    "aggregate {name}() is not valid in this context"
                )))
            }
            CompiledExpr::Unary { op, expr } => apply_unary(*op, expr.eval(row, ctx)?),
            CompiledExpr::And(items) => {
                let mut saw_null = false;
                for item in items {
                    let v = item.operand(row, ctx)?;
                    if v.is_null() {
                        saw_null = true;
                    } else if !v.is_truthy() {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(true)
                })
            }
            CompiledExpr::Or(items) => {
                let mut saw_null = false;
                for item in items {
                    let v = item.operand(row, ctx)?;
                    if v.is_null() {
                        saw_null = true;
                    } else if v.is_truthy() {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                })
            }
            CompiledExpr::Binary { op, left, right } => {
                let l = left.operand(row, ctx)?;
                let r = right.operand(row, ctx)?;
                apply_binary(&l, *op, &r)
            }
            CompiledExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.operand(row, ctx)?;
                let lo = low.operand(row, ctx)?;
                let hi = high.operand(row, ctx)?;
                Ok(between_value(&v, &lo, &hi, *negated))
            }
            CompiledExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.operand(row, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut found = false;
                for item in list {
                    let iv = item.operand(row, ctx)?;
                    if v.sql_eq(&iv) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            CompiledExpr::IsNull { expr, negated } => {
                let v = expr.operand(row, ctx)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            CompiledExpr::LikePre {
                expr,
                matcher,
                negated,
            } => {
                let v = expr.operand(row, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(matcher.matches_value(&v) != *negated))
            }
            CompiledExpr::LikeDyn {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row, ctx)?;
                let p = pattern.eval(row, ctx)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let matcher = LikeMatcher::new(&p.to_string());
                Ok(Value::Bool(matcher.matches_value(&v) != *negated))
            }
            CompiledExpr::Case {
                branches,
                else_value,
            } => {
                for (cond, value) in branches {
                    if cond.operand(row, ctx)?.is_truthy() {
                        return value.eval(row, ctx);
                    }
                }
                match else_value {
                    Some(e) => e.eval(row, ctx),
                    None => Ok(Value::Null),
                }
            }
            CompiledExpr::Cast { expr, ty } => {
                let v = expr.eval(row, ctx)?;
                v.coerce(*ty)
                    .ok_or_else(|| SqlError::Execution(format!("cannot cast {v} to {ty}")))
            }
            CompiledExpr::Call {
                name,
                builtin,
                args,
            } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval(row, ctx)?);
                }
                if *builtin {
                    if let Some(result) = eval_builtin_normalized(name, &values) {
                        return result;
                    }
                } else if let Some(udf) = ctx.functions.scalar_normalized(name) {
                    return udf(&values);
                }
                Err(SqlError::UnknownFunction(name.clone()))
            }
        }
    }

    /// Is this a folded constant?
    fn as_const(&self) -> Option<&Value> {
        match self {
            CompiledExpr::Const(v) => Some(v),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Compile an expression against a row schema.
///
/// Errors mirror what the interpreter would raise on the first row (unknown
/// or ambiguous column, unknown function, stray `*`); callers that tolerate
/// late binding keep the interpreter as a fallback instead of failing the
/// plan.
pub fn compile(
    expr: &Expr,
    schema: &RowSchema,
    functions: &FunctionRegistry,
) -> Result<CompiledExpr, SqlError> {
    let node = match expr {
        Expr::Literal(v) => CompiledExpr::Const(v.clone()),
        Expr::Column { qualifier, name } => {
            CompiledExpr::Col(schema.resolve(qualifier.as_deref(), name)?)
        }
        Expr::Variable(name) => CompiledExpr::Var {
            lookup: name.to_ascii_lowercase(),
            name: name.clone(),
        },
        Expr::Star => {
            return Err(SqlError::Execution(
                "'*' is only valid inside count(*)".into(),
            ))
        }
        Expr::Unary { op, expr } => CompiledExpr::Unary {
            op: *op,
            expr: Box::new(compile(expr, schema, functions)?),
        },
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And | BinaryOp::Or => {
                let mut items = Vec::new();
                flatten_logical(left, *op, schema, functions, &mut items)?;
                flatten_logical(right, *op, schema, functions, &mut items)?;
                simplify_logical(*op, items)
            }
            _ => CompiledExpr::Binary {
                op: *op,
                left: Box::new(compile(left, schema, functions)?),
                right: Box::new(compile(right, schema, functions)?),
            },
        },
        Expr::Function { name, args } => {
            if is_aggregate_name(name) {
                CompiledExpr::Agg {
                    key: aggregate_key(expr),
                    name: name.clone(),
                }
            } else {
                let normalized = normalize_name(name);
                let builtin = is_builtin(&normalized);
                if !builtin && functions.scalar_normalized(&normalized).is_none() {
                    return Err(SqlError::UnknownFunction(name.clone()));
                }
                let compiled_args = args
                    .iter()
                    .map(|a| compile(a, schema, functions))
                    .collect::<Result<Vec<_>, _>>()?;
                CompiledExpr::Call {
                    name: normalized,
                    builtin,
                    args: compiled_args,
                }
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => CompiledExpr::Between {
            expr: Box::new(compile(expr, schema, functions)?),
            low: Box::new(compile(low, schema, functions)?),
            high: Box::new(compile(high, schema, functions)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => CompiledExpr::InList {
            expr: Box::new(compile(expr, schema, functions)?),
            list: list
                .iter()
                .map(|e| compile(e, schema, functions))
                .collect::<Result<Vec<_>, _>>()?,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => CompiledExpr::IsNull {
            expr: Box::new(compile(expr, schema, functions)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let compiled_expr = Box::new(compile(expr, schema, functions)?);
            let compiled_pattern = compile(pattern, schema, functions)?;
            match compiled_pattern.as_const() {
                // A constant non-NULL pattern parses once.
                Some(p) if !p.is_null() => CompiledExpr::LikePre {
                    expr: compiled_expr,
                    matcher: LikeMatcher::new(&p.to_string()),
                    negated: *negated,
                },
                _ => CompiledExpr::LikeDyn {
                    expr: compiled_expr,
                    pattern: Box::new(compiled_pattern),
                    negated: *negated,
                },
            }
        }
        Expr::Case {
            branches,
            else_value,
        } => CompiledExpr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| {
                    Ok((
                        compile(c, schema, functions)?,
                        compile(v, schema, functions)?,
                    ))
                })
                .collect::<Result<Vec<_>, SqlError>>()?,
            else_value: match else_value {
                Some(e) => Some(Box::new(compile(e, schema, functions)?)),
                None => None,
            },
        },
        Expr::Cast { expr, ty } => CompiledExpr::Cast {
            expr: Box::new(compile(expr, schema, functions)?),
            ty: *ty,
        },
    };
    Ok(fold_constants(node, functions))
}

/// Recursively flatten an `AND`/`OR` chain of the same operator into one
/// conjunct/disjunct list (preserving left-to-right evaluation order).
fn flatten_logical(
    expr: &Expr,
    op: BinaryOp,
    schema: &RowSchema,
    functions: &FunctionRegistry,
    out: &mut Vec<CompiledExpr>,
) -> Result<(), SqlError> {
    if let Expr::Binary {
        left,
        op: inner,
        right,
    } = expr
    {
        if *inner == op {
            flatten_logical(left, op, schema, functions, out)?;
            flatten_logical(right, op, schema, functions, out)?;
            return Ok(());
        }
    }
    out.push(compile(expr, schema, functions)?);
    Ok(())
}

/// Drop neutral constants from a logical chain and collapse degenerate
/// shapes.  Only transformations that cannot change results, errors or
/// evaluation order of the remaining items are applied:
///
/// * `TRUE` conjuncts / `FALSE` disjuncts are neutral and dropped anywhere
///   (constants cannot error, and 3VL treats them as identity elements);
/// * a *leading* absorbing constant (`FALSE AND ...`, `TRUE OR ...`) decides
///   the chain before anything else could run, so the whole chain folds —
///   a non-leading absorbing constant must stay, because the items before it
///   still run (and may error) under interpreter semantics.
fn simplify_logical(op: BinaryOp, items: Vec<CompiledExpr>) -> CompiledExpr {
    let neutral = op == BinaryOp::And; // TRUE for AND, FALSE for OR
    let mut kept: Vec<CompiledExpr> = Vec::with_capacity(items.len());
    for item in items {
        if let Some(Value::Bool(b)) = item.as_const() {
            if *b == neutral {
                continue; // identity element: drop
            }
            if kept.is_empty() {
                // Leading absorbing constant: the chain short-circuits here.
                return CompiledExpr::Const(Value::Bool(!neutral));
            }
        }
        kept.push(item);
    }
    if kept.is_empty() {
        return CompiledExpr::Const(Value::Bool(neutral));
    }
    // Never unwrap a single remaining item: `x OR FALSE` is the *boolean*
    // of x (or NULL), not x itself — the chain evaluator provides exactly
    // that coercion.
    if op == BinaryOp::And {
        CompiledExpr::And(kept)
    } else {
        CompiledExpr::Or(kept)
    }
}

/// Fold a node whose children are all constants by evaluating it once at
/// compile time.  Nodes that could behave differently at runtime (variables,
/// UDF calls, aggregates, column reads) are never folded, and a node whose
/// constant evaluation *errors* is kept unfolded so the error still occurs
/// at its original evaluation site (or not at all, if short-circuited away).
fn fold_constants(node: CompiledExpr, functions: &FunctionRegistry) -> CompiledExpr {
    if !is_foldable(&node) {
        return node;
    }
    let schema = RowSchema::default();
    let variables = HashMap::new();
    let ctx = EvalContext {
        schema: &schema,
        variables: &variables,
        functions,
        aggregates: None,
    };
    match node.eval(&[], &ctx) {
        Ok(v) => CompiledExpr::Const(v),
        Err(_) => node,
    }
}

fn is_foldable(node: &CompiledExpr) -> bool {
    let all_const = |items: &[CompiledExpr]| items.iter().all(|i| i.as_const().is_some());
    match node {
        CompiledExpr::Const(_)
        | CompiledExpr::Col(_)
        | CompiledExpr::Var { .. }
        | CompiledExpr::Agg { .. } => false,
        CompiledExpr::Unary { expr, .. } => expr.as_const().is_some(),
        CompiledExpr::And(items) | CompiledExpr::Or(items) => all_const(items),
        CompiledExpr::Binary { left, right, .. } => {
            left.as_const().is_some() && right.as_const().is_some()
        }
        CompiledExpr::Between {
            expr, low, high, ..
        } => expr.as_const().is_some() && low.as_const().is_some() && high.as_const().is_some(),
        CompiledExpr::InList { expr, list, .. } => expr.as_const().is_some() && all_const(list),
        CompiledExpr::IsNull { expr, .. } => expr.as_const().is_some(),
        CompiledExpr::LikePre { expr, .. } => expr.as_const().is_some(),
        CompiledExpr::LikeDyn { expr, pattern, .. } => {
            expr.as_const().is_some() && pattern.as_const().is_some()
        }
        CompiledExpr::Case {
            branches,
            else_value,
        } => {
            branches
                .iter()
                .all(|(c, v)| c.as_const().is_some() && v.as_const().is_some())
                && else_value
                    .as_ref()
                    .map(|e| e.as_const().is_some())
                    .unwrap_or(true)
        }
        CompiledExpr::Cast { expr, .. } => expr.as_const().is_some(),
        // Built-ins are pure; UDFs make no such promise and never fold.
        CompiledExpr::Call { builtin, args, .. } => *builtin && all_const(args),
    }
}

// ---------------------------------------------------------------------------
// Whole-plan programs
// ---------------------------------------------------------------------------

/// One ORDER BY key, pre-resolved: either an index into the projected output
/// row (the alias case) or a program over the input row.
#[derive(Debug, Clone, PartialEq)]
pub enum SortKey {
    /// Sort by the n-th output column.
    Output(usize),
    /// Sort by an expression over the input row.
    Input(CompiledExpr),
}

/// One aggregate call, pre-keyed and with its argument compiled.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAggregate {
    /// Canonical lookup key ([`aggregate_key`] of the original call).
    pub key: String,
    /// The function name as written (error messages).
    pub name: String,
    /// Lowercased name (dispatch).
    pub lower: String,
    /// `count(*)` / bare `count()`: counts rows, no argument evaluation.
    pub count_star: bool,
    /// The first argument's program (`None` only for `count_star`).
    pub arg: Option<CompiledExpr>,
}

/// Every program the executor needs, compiled once at plan finalization and
/// carried on the physical plan next to the original `Expr`s (EXPLAIN keeps
/// rendering the expressions; execution runs the programs).
///
/// Each slot is `Option`: `None` means "interpret that expression instead"
/// (unknown column bound late, compilation disabled for the benchmark
/// baseline).  Mixed execution is safe because programs and interpreter
/// share one semantics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledPrograms {
    /// Pushed-down scan predicate per source (parallel to `plan.sources`).
    pub source_predicates: Vec<Option<CompiledExpr>>,
    /// Outer-key program per join step (index-lookup joins only).
    pub join_outer_keys: Vec<Option<CompiledExpr>>,
    /// `(outer keys, inner keys)` programs per join step (hash joins only).
    #[allow(clippy::type_complexity)]
    pub join_hash_keys: Vec<Option<(Vec<CompiledExpr>, Vec<CompiledExpr>)>>,
    /// Residual predicate per join step.
    pub join_residuals: Vec<Option<CompiledExpr>>,
    /// Post-join residual filter.
    pub residual: Option<CompiledExpr>,
    /// Output projections (aggregate calls appear as [`CompiledExpr::Agg`]).
    pub projections: Option<Vec<CompiledExpr>>,
    /// GROUP BY key programs.
    pub group_by: Option<Vec<CompiledExpr>>,
    /// HAVING predicate (aggregates pre-keyed).
    pub having: Option<CompiledExpr>,
    /// The aggregate calls collected from projections and HAVING, in the
    /// interpreter's collection order.
    pub aggregates: Option<Vec<CompiledAggregate>>,
    /// ORDER BY keys with output aliases resolved to positions.
    pub order_by: Option<Vec<SortKey>>,
}

/// Collect every distinct aggregate call expression in `expr`, in evaluation
/// order (the executor and the program compiler must agree on this order and
/// on the dedup rule, since both key the per-group value map with it).
pub fn collect_aggregates(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Function { name, args } => {
            if is_aggregate_name(name) {
                if !out.contains(expr) {
                    out.push(expr.clone());
                }
            } else {
                for a in args {
                    collect_aggregates(a, out);
                }
            }
        }
        Expr::Unary { expr, .. } => collect_aggregates(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(pattern, out);
        }
        Expr::Case {
            branches,
            else_value,
        } => {
            for (c, v) in branches {
                collect_aggregates(c, out);
                collect_aggregates(v, out);
            }
            if let Some(e) = else_value {
                collect_aggregates(e, out);
            }
        }
        Expr::Cast { expr, .. } => collect_aggregates(expr, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn compile_where(sql_where: &str, schema: &RowSchema) -> CompiledExpr {
        let stmt = parse_select(&format!("select * from t where {sql_where}")).unwrap();
        let funcs = FunctionRegistry::new();
        compile(&stmt.selection.unwrap(), schema, &funcs).unwrap()
    }

    fn eval_compiled(ce: &CompiledExpr, row: &[Value]) -> Value {
        let schema = RowSchema::default();
        let vars = HashMap::new();
        let funcs = FunctionRegistry::new();
        let ctx = EvalContext {
            schema: &schema,
            variables: &vars,
            functions: &funcs,
            aggregates: None,
        };
        ce.eval(row, &ctx).unwrap()
    }

    #[test]
    fn columns_become_ordinals() {
        let schema = RowSchema::for_table(Some("t"), &["a", "b"]);
        let ce = compile_where("t.b > a", &schema);
        assert_eq!(
            ce,
            CompiledExpr::Binary {
                op: BinaryOp::Gt,
                left: Box::new(CompiledExpr::Col(1)),
                right: Box::new(CompiledExpr::Col(0)),
            }
        );
    }

    #[test]
    fn constants_fold_but_errors_do_not() {
        let schema = RowSchema::for_table(None, &["a"]);
        // 2*3+4 folds to 10.
        assert_eq!(
            compile_where("a = 2*3+4", &schema),
            CompiledExpr::Binary {
                op: BinaryOp::Eq,
                left: Box::new(CompiledExpr::Col(0)),
                right: Box::new(CompiledExpr::Const(Value::Int(10))),
            }
        );
        // sqrt of a constant folds through the builtin.
        let ce = compile_where("a < sqrt(9)", &schema);
        assert!(matches!(
            ce,
            CompiledExpr::Binary { ref right, .. } if right.as_const() == Some(&Value::Float(3.0))
        ));
        // 1/0 must NOT fold away: the runtime error is part of the
        // semantics (and may be short-circuited away by AND).
        let ce = compile_where("a > 0 and 1/0 = 1", &schema);
        assert!(
            !matches!(ce, CompiledExpr::Const(_)),
            "division by zero must stay a runtime node: {ce:?}"
        );
    }

    #[test]
    fn and_chains_flatten_and_drop_neutral_constants() {
        let schema = RowSchema::for_table(None, &["a", "b", "c"]);
        let ce = compile_where("a > 1 and 1 = 1 and b > 2 and c > 3", &schema);
        match ce {
            CompiledExpr::And(items) => assert_eq!(items.len(), 3, "true conjunct dropped"),
            other => panic!("expected flattened AND, got {other:?}"),
        }
        // A leading absorbing constant folds the whole chain.
        assert_eq!(
            compile_where("1 = 2 and a > 1", &schema),
            CompiledExpr::Const(Value::Bool(false))
        );
        // ... but a non-leading one stays (items before it still run).
        let ce = compile_where("a > 1 and 1 = 2", &schema);
        assert!(matches!(ce, CompiledExpr::And(_)), "{ce:?}");
    }

    #[test]
    fn like_patterns_precompile() {
        let schema = RowSchema::for_table(None, &["name"]);
        let ce = compile_where("name like 'NGC%'", &schema);
        assert!(matches!(ce, CompiledExpr::LikePre { .. }), "{ce:?}");
        assert_eq!(
            eval_compiled(&ce, &[Value::str("ngc1234")]),
            Value::Bool(true)
        );
        // Dynamic pattern (column on the right) stays dynamic.
        let schema2 = RowSchema::for_table(None, &["name", "pat"]);
        let ce = compile_where("name like pat", &schema2);
        assert!(matches!(ce, CompiledExpr::LikeDyn { .. }), "{ce:?}");
    }

    #[test]
    fn three_valued_logic_matches_interpreter() {
        let schema = RowSchema::for_table(None, &["a"]);
        let null_row = vec![Value::Null];
        assert_eq!(
            eval_compiled(&compile_where("a > 1 and 1 = 1", &schema), &null_row),
            Value::Null
        );
        assert_eq!(
            eval_compiled(&compile_where("a > 1 and 1 = 2", &schema), &null_row),
            Value::Bool(false)
        );
        assert_eq!(
            eval_compiled(&compile_where("a > 1 or 1 = 1", &schema), &null_row),
            Value::Bool(true)
        );
        assert_eq!(
            eval_compiled(&compile_where("not a > 1", &schema), &null_row),
            Value::Null
        );
    }

    #[test]
    fn unknown_column_fails_compilation() {
        let schema = RowSchema::for_table(None, &["a"]);
        let stmt = parse_select("select * from t where nope = 1").unwrap();
        let funcs = FunctionRegistry::new();
        assert!(compile(&stmt.selection.unwrap(), &schema, &funcs).is_err());
    }

    #[test]
    fn like_matcher_semantics() {
        for (text, pattern, expected) in [
            ("NGC1234", "ngc%", true),
            ("skyserver", "%server", true),
            ("abc", "a_c", true),
            ("abc", "a_d", false),
            ("anything", "%", true),
            ("", "%", true),
            ("", "", true),
            ("x", "", false),
            ("", "_", false),
            ("abc", "abc", true),
            ("abc", "ab", false),
            ("ab", "ab%b", false),
            ("abb", "ab%b", true),
            ("banana", "%an%na", true),
            ("banana", "%ann%", false),
            ("aXbYc", "a%b%c", true),
            ("mississippi", "m%iss%ippi", true),
            ("mississippi", "m%iss%issi", false),
            ("ab", "a%%b", true),
        ] {
            assert_eq!(
                LikeMatcher::new(pattern).matches(text),
                expected,
                "{text:?} LIKE {pattern:?}"
            );
        }
    }

    #[test]
    fn pathological_like_pattern_completes_quickly() {
        // The naive recursive matcher retries every position for every `%`:
        // with 8 wildcard segments over 2,000 characters that's ~2000^8
        // evaluations — effectively a hang.  The segment matcher is
        // O(text x pattern) and must answer (false) immediately.
        let text = "a".repeat(2000);
        let pattern = "a%ab%ab%ab%ab%ab%ab%ab%b";
        let started = std::time::Instant::now();
        assert!(!LikeMatcher::new(pattern).matches(&text));
        assert!(!crate::expr::like_match(&text, pattern));
        // Also a matching variant, to exercise the success path.
        let mut ok_text = "ab".repeat(900);
        ok_text.push('b');
        assert!(LikeMatcher::new(pattern).matches(&format!("a{ok_text}")));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "pathological pattern took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn like_matcher_agrees_with_a_reference_backtracker_on_random_inputs() {
        // Exhaustive-ish differential check against a known-correct (but
        // exponential) reference, over tiny alphabets where the recursion
        // stays cheap.
        fn reference(t: &[u8], p: &[u8]) -> bool {
            match p.first() {
                None => t.is_empty(),
                Some(b'%') => (0..=t.len()).any(|i| reference(&t[i..], &p[1..])),
                Some(b'_') => !t.is_empty() && reference(&t[1..], &p[1..]),
                Some(&c) => {
                    !t.is_empty() && t[0].to_ascii_lowercase() == c && reference(&t[1..], &p[1..])
                }
            }
        }
        let texts = ["", "a", "b", "ab", "ba", "aab", "abab", "bbaa", "aAbB"];
        let pattern_atoms = [b'a', b'b', b'%', b'_'];
        // All patterns of length <= 4 over {a, b, %, _}.
        let mut patterns: Vec<Vec<u8>> = vec![Vec::new()];
        for _ in 0..4 {
            let mut next = patterns.clone();
            for p in &patterns {
                for &a in &pattern_atoms {
                    let mut q = p.clone();
                    q.push(a);
                    next.push(q);
                }
            }
            patterns = next;
        }
        for p in &patterns {
            let pattern = String::from_utf8(p.clone()).unwrap();
            let matcher = LikeMatcher::new(&pattern);
            for t in &texts {
                let expected = reference(t.to_ascii_lowercase().as_bytes(), p);
                assert_eq!(matcher.matches(t), expected, "{t:?} LIKE {pattern:?}");
            }
        }
    }
}
