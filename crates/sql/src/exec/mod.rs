//! Execution-time machinery that sits between the planner and the
//! interpreter: compiled expression programs (see [`compile`]).
//!
//! The plan finalizer compiles every hot predicate, join key and projection
//! into a [`compile::CompiledExpr`] program; the executor runs those
//! programs per row and only falls back to the tree-walking interpreter in
//! [`crate::expr`] when a program could not be built (unknown column,
//! compilation disabled for benchmarking).

pub mod compile;
pub mod vector;
