//! Vectorized batch execution for heap scans.
//!
//! A `BatchProgram` is built once per scan from the compiled filter and
//! projection.  The executor then drives it one *chunk* (≤ [`BATCH_ROWS`]
//! slots of one storage segment) at a time: the chunk's live slots form a
//! selection vector, each filter conjunct runs as a tight loop over the
//! selection directly against the typed column arrays — no row
//! materialization, no `Value` construction on the common Int/Float paths —
//! and only the surviving offsets are gathered into output rows.
//!
//! # Semantics
//!
//! The result must be *indistinguishable* from evaluating the compiled
//! program row-at-a-time (`filter.eval(row)?.is_truthy()`), which for a
//! conjunction means SQL three-valued logic:
//!
//! * a conjunct evaluating to a falsy value removes the row from the
//!   selection immediately (short-circuit — later conjuncts never see it);
//! * a conjunct evaluating to NULL *flags* the row but keeps it in the
//!   selection ([`crate::exec::compile::CompiledExpr::And`] keeps
//!   evaluating after a NULL — errors in later conjuncts must still fire);
//! * after the last conjunct, flagged rows are dropped: `NULL` is not
//!   truthy.
//!
//! Conjuncts run left-to-right, each over ascending offsets, so the first
//! error a chunk can raise is deterministic.  It may differ from the
//! row-at-a-time order (conjunct-major vs row-major) — equivalence tests
//! compare errors as "both fail", not message-for-message.
//!
//! String columns evaluate predicates **once per dictionary entry** and
//! then map the per-row codes through the precomputed answers — the
//! dictionary trick that makes `LIKE` scans cheap.  When a dictionary is
//! near-unique (more entries than selected rows) the predicate runs per
//! selected row instead, so the trick never costs more than it saves.

use crate::ast::BinaryOp;
use crate::error::SqlError;
use crate::exec::compile::{CompiledExpr, LikeMatcher};
use crate::expr::EvalContext;
use skyserver_storage::{ColumnData, DataType, Segment, Value};
use std::cmp::Ordering;

/// Rows per processed batch.  A quarter of a storage segment: small enough
/// that a chunk's selection vector and column slices stay cache-resident,
/// large enough to amortise per-chunk dispatch.
pub const BATCH_ROWS: usize = 1024;

/// How one output column of the gather stage is produced.
enum Gather<'a> {
    /// Direct column fetch — no scratch row needed.
    Col(usize),
    /// General program over the materialized scratch row.
    Eval(&'a CompiledExpr),
}

/// One conjunct of the filter, specialised to a kernel where possible.
enum Conjunct<'a> {
    /// `col <op> const` (constants normalised to the right-hand side).
    CmpConst {
        col: usize,
        op: BinaryOp,
        konst: &'a Value,
    },
    /// `col [NOT] BETWEEN lo AND hi` with constant bounds.
    Between {
        col: usize,
        low: &'a Value,
        high: &'a Value,
        negated: bool,
    },
    /// `col [NOT] IN (consts)` — NULL list members can never match and are
    /// dropped at build time.
    InList {
        col: usize,
        list: Vec<&'a Value>,
        negated: bool,
    },
    /// `col IS [NOT] NULL` — answered from the validity bitmap alone.
    IsNull { col: usize, negated: bool },
    /// `col [NOT] LIKE 'pattern'` with a precompiled matcher.
    Like {
        col: usize,
        matcher: &'a LikeMatcher,
        negated: bool,
    },
    /// `(col & mask) <op> const` / `(col | mask)` — the SkyServer flag
    /// idiom, specialised for Int columns.
    FlagsCmp {
        col: usize,
        mask: i64,
        or: bool,
        op: BinaryOp,
        konst: &'a Value,
    },
    /// A comparison against a NULL constant: NULL for every row.
    AlwaysNull,
    /// Anything else: run the compiled program per row over a sparse
    /// scratch row holding only the columns the program reads.
    Scalar {
        expr: &'a CompiledExpr,
        /// Sorted, deduped ordinals of the columns `expr` reads.
        cols: Vec<usize>,
    },
}

/// Build the scalar-fallback conjunct: record which columns the program
/// reads so evaluation materializes only those (out-of-range ordinals are
/// dropped — `CompiledExpr::eval` reports them itself).
fn scalar_conjunct(expr: &CompiledExpr, ncols: usize) -> Conjunct<'_> {
    let mut cols = Vec::new();
    expr.collect_columns(&mut cols);
    cols.sort_unstable();
    cols.dedup();
    cols.retain(|&c| c < ncols);
    Conjunct::Scalar { expr, cols }
}

/// Tri-state outcome of one conjunct for one row.
#[derive(Clone, Copy, PartialEq)]
enum Tri {
    True,
    False,
    Null,
}

impl Tri {
    #[inline]
    fn of_bool(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }

    #[inline]
    fn of_value(v: &Value) -> Tri {
        if v.is_null() {
            Tri::Null
        } else if v.is_truthy() {
            Tri::True
        } else {
            Tri::False
        }
    }
}

/// Reusable per-scan buffers (one per worker thread).
#[derive(Default)]
pub(crate) struct BatchScratch {
    /// Selected slot offsets within the current segment.
    sel: Vec<u32>,
    /// NULL flags, parallel to `sel` (a row whose filter saw a NULL
    /// conjunct survives the selection but is dropped at the end).
    nulls: Vec<bool>,
    /// Scratch row for scalar-fallback conjuncts and non-trivial
    /// projections.
    row: Vec<Value>,
    /// Per-dictionary-entry predicate answers, reused across chunks of the
    /// same segment.
    dict: Vec<Tri>,
}

/// A compiled filter + projection specialised for batch execution over one
/// table's segments.
pub(crate) struct BatchProgram<'a> {
    conjuncts: Vec<Conjunct<'a>>,
    gather: Option<Vec<Gather<'a>>>,
    /// Sorted, deduped ordinals read by the [`Gather::Eval`] projections —
    /// the only columns the gather stage loads into the scratch row.
    eval_cols: Vec<usize>,
    column_types: Vec<DataType>,
}

impl<'a> BatchProgram<'a> {
    /// Specialise `filter`/`project` against a table with the given column
    /// types.  Never fails: shapes without a kernel become scalar-fallback
    /// conjuncts with identical semantics.
    pub fn build(
        filter: Option<&'a CompiledExpr>,
        project: Option<&'a [CompiledExpr]>,
        column_types: Vec<DataType>,
    ) -> BatchProgram<'a> {
        let mut conjuncts = Vec::new();
        if let Some(f) = filter {
            let items: Vec<&CompiledExpr> = match f {
                CompiledExpr::And(items) => items.iter().collect(),
                other => vec![other],
            };
            for item in items {
                conjuncts.push(build_conjunct(item, &column_types));
            }
        }
        let gather: Option<Vec<Gather<'a>>> = project.map(|programs| {
            programs
                .iter()
                .map(|p| match p {
                    CompiledExpr::Col(i) if *i < column_types.len() => Gather::Col(*i),
                    other => Gather::Eval(other),
                })
                .collect()
        });
        let mut eval_cols = Vec::new();
        for g in gather.iter().flatten() {
            if let Gather::Eval(p) = g {
                p.collect_columns(&mut eval_cols);
            }
        }
        eval_cols.sort_unstable();
        eval_cols.dedup();
        eval_cols.retain(|&c| c < column_types.len());
        BatchProgram {
            conjuncts,
            gather,
            eval_cols,
            column_types,
        }
    }

    /// Load the live slots of `base..end` into the selection vector.
    /// Returns the live count.
    pub fn begin_chunk(
        &self,
        seg: &Segment,
        base: usize,
        end: usize,
        scratch: &mut BatchScratch,
    ) -> u64 {
        scratch.sel.clear();
        let deleted = seg.deleted();
        for (off, &dead) in deleted.iter().enumerate().take(end).skip(base) {
            if !dead {
                scratch.sel.push(off as u32);
            }
        }
        scratch.nulls.clear();
        scratch.nulls.resize(scratch.sel.len(), false);
        scratch.sel.len() as u64
    }

    /// Run every filter conjunct over the current selection, leaving only
    /// accepted offsets in `scratch.sel`.
    pub fn filter_chunk(
        &self,
        seg: &Segment,
        scratch: &mut BatchScratch,
        ctx: &EvalContext<'_>,
    ) -> Result<(), SqlError> {
        if self.conjuncts.is_empty() {
            return Ok(());
        }
        for conjunct in &self.conjuncts {
            self.apply_conjunct(conjunct, seg, scratch, ctx)?;
            if scratch.sel.is_empty() {
                return Ok(());
            }
        }
        // Drop NULL-flagged survivors: NULL is not truthy.
        let mut kept = 0usize;
        for i in 0..scratch.sel.len() {
            if !scratch.nulls[i] {
                scratch.sel[kept] = scratch.sel[i];
                kept += 1;
            }
        }
        scratch.sel.truncate(kept);
        scratch.nulls.truncate(kept);
        scratch.nulls.iter_mut().for_each(|n| *n = false);
        Ok(())
    }

    /// Materialize the accepted rows of the current selection into `out`.
    pub fn emit_chunk(
        &self,
        seg: &Segment,
        scratch: &mut BatchScratch,
        ctx: &EvalContext<'_>,
        out: &mut Vec<Vec<Value>>,
    ) -> Result<(), SqlError> {
        let ncols = self.column_types.len();
        match &self.gather {
            None => {
                for &off in &scratch.sel {
                    let off = off as usize;
                    let mut row = Vec::with_capacity(ncols);
                    for c in 0..ncols {
                        row.push(seg.value(off, c));
                    }
                    out.push(row);
                }
            }
            Some(gather) => {
                let needs_scratch = gather.iter().any(|g| matches!(g, Gather::Eval(_)));
                if needs_scratch {
                    // Full-width (programs address by ordinal) but only the
                    // ordinals the Eval projections read are loaded per row.
                    scratch.row.clear();
                    scratch.row.resize(ncols, Value::Null);
                }
                for &off in &scratch.sel {
                    let off = off as usize;
                    if needs_scratch {
                        for &c in &self.eval_cols {
                            scratch.row[c] = seg.value(off, c);
                        }
                    }
                    let mut row = Vec::with_capacity(gather.len());
                    for g in gather {
                        row.push(match g {
                            Gather::Col(c) => seg.value(off, *c),
                            Gather::Eval(p) => p.eval(&scratch.row, ctx)?,
                        });
                    }
                    out.push(row);
                }
            }
        }
        Ok(())
    }

    /// Apply one conjunct over the selection, retaining True and Null rows
    /// (the latter flagged) and dropping False rows.
    fn apply_conjunct(
        &self,
        conjunct: &Conjunct<'a>,
        seg: &Segment,
        scratch: &mut BatchScratch,
        ctx: &EvalContext<'_>,
    ) -> Result<(), SqlError> {
        match conjunct {
            Conjunct::AlwaysNull => {
                scratch.nulls.iter_mut().for_each(|n| *n = true);
                Ok(())
            }
            Conjunct::IsNull { col, negated } => {
                let validity = seg.column(*col).validity();
                retain(scratch, |off, _| {
                    // v.is_null() != negated, never NULL itself.
                    Tri::of_bool(validity[off as usize] == *negated)
                });
                Ok(())
            }
            Conjunct::CmpConst { col, op, konst } => {
                self.cmp_kernel(seg, scratch, *col, *op, konst, ctx)
            }
            Conjunct::Between {
                col,
                low,
                high,
                negated,
            } => {
                let column = seg.column(*col);
                let validity = column.validity();
                match column.data() {
                    ColumnData::Int(ints) => retain(scratch, |off, _| {
                        let off = off as usize;
                        if !validity[off] {
                            return Tri::Null;
                        }
                        let v = ints[off];
                        let within = ord_int(v, low) != Ordering::Less
                            && ord_int(v, high) != Ordering::Greater;
                        Tri::of_bool(within != *negated)
                    }),
                    ColumnData::Float(floats) => retain(scratch, |off, _| {
                        let off = off as usize;
                        if !validity[off] {
                            return Tri::Null;
                        }
                        let v = floats[off];
                        let within = ord_float(v, low) != Ordering::Less
                            && ord_float(v, high) != Ordering::Greater;
                        Tri::of_bool(within != *negated)
                    }),
                    ColumnData::Str { dict, codes } => {
                        str_kernel(scratch, validity, dict, codes, |s| {
                            let within = ord_str(s, low) != Ordering::Less
                                && ord_str(s, high) != Ordering::Greater;
                            Tri::of_bool(within != *negated)
                        });
                    }
                    _ => retain_generic(scratch, seg, *col, |v| {
                        Tri::of_value(&crate::expr::between_value(v, low, high, *negated))
                    }),
                }
                Ok(())
            }
            Conjunct::InList { col, list, negated } => {
                let column = seg.column(*col);
                let validity = column.validity();
                match column.data() {
                    ColumnData::Int(ints) => retain(scratch, |off, _| {
                        let off = off as usize;
                        if !validity[off] {
                            return Tri::Null;
                        }
                        let v = ints[off];
                        let found = list.iter().any(|k| ord_int(v, k) == Ordering::Equal);
                        Tri::of_bool(found != *negated)
                    }),
                    ColumnData::Float(floats) => retain(scratch, |off, _| {
                        let off = off as usize;
                        if !validity[off] {
                            return Tri::Null;
                        }
                        let v = floats[off];
                        let found = list.iter().any(|k| ord_float(v, k) == Ordering::Equal);
                        Tri::of_bool(found != *negated)
                    }),
                    ColumnData::Str { dict, codes } => {
                        str_kernel(scratch, validity, dict, codes, |s| {
                            let found = list.iter().any(|k| ord_str(s, k) == Ordering::Equal);
                            Tri::of_bool(found != *negated)
                        });
                    }
                    _ => retain_generic(scratch, seg, *col, |v| {
                        if v.is_null() {
                            return Tri::Null;
                        }
                        let found = list.iter().any(|k| v.sql_eq(k));
                        Tri::of_bool(found != *negated)
                    }),
                }
                Ok(())
            }
            Conjunct::Like {
                col,
                matcher,
                negated,
            } => {
                let column = seg.column(*col);
                let validity = column.validity();
                match column.data() {
                    ColumnData::Str { dict, codes } => {
                        str_kernel(scratch, validity, dict, codes, |s| {
                            Tri::of_bool(matcher.matches(s) != *negated)
                        });
                    }
                    _ => retain_generic(scratch, seg, *col, |v| {
                        if v.is_null() {
                            return Tri::Null;
                        }
                        Tri::of_bool(matcher.matches_value(v) != *negated)
                    }),
                }
                Ok(())
            }
            Conjunct::FlagsCmp {
                col,
                mask,
                or,
                op,
                konst,
            } => {
                let column = seg.column(*col);
                let validity = column.validity();
                match column.data() {
                    ColumnData::Int(ints) => retain(scratch, |off, _| {
                        let off = off as usize;
                        if !validity[off] {
                            return Tri::Null;
                        }
                        let masked = if *or {
                            ints[off] | mask
                        } else {
                            ints[off] & mask
                        };
                        Tri::of_bool(cmp_holds(*op, ord_int(masked, konst), |a| {
                            sql_eq_int(a, konst)
                        }))
                    }),
                    // Build guards on DataType::Int, but a segment could be
                    // empty of data before the first insert; fall back.
                    _ => retain_generic(scratch, seg, *col, |v| {
                        if v.is_null() {
                            return Tri::Null;
                        }
                        let Some(l) = v.as_i64() else {
                            return Tri::False; // unreachable for Int columns
                        };
                        let masked = if *or { l | mask } else { l & mask };
                        Tri::of_bool(cmp_holds(*op, ord_int(masked, konst), |a| {
                            sql_eq_int(a, konst)
                        }))
                    }),
                }
                Ok(())
            }
            Conjunct::Scalar { expr, cols } => {
                let ncols = self.column_types.len();
                let mut err = None;
                let seg_ref = seg;
                // Split borrows: `retain` mutates sel/nulls while the
                // closure fills the scratch row.  The row stays full-width
                // (programs address columns by ordinal) but only the
                // ordinals the program reads are loaded per row; the rest
                // stay NULL and are never consulted.
                let mut row = std::mem::take(&mut scratch.row);
                row.clear();
                row.resize(ncols, Value::Null);
                retain(scratch, |off, _| {
                    if err.is_some() {
                        return Tri::True; // error already pending; keep row sets, bail after
                    }
                    for &c in cols {
                        row[c] = seg_ref.value(off as usize, c);
                    }
                    match expr.eval(&row, ctx) {
                        Ok(v) => Tri::of_value(&v),
                        Err(e) => {
                            err = Some(e);
                            Tri::True
                        }
                    }
                });
                scratch.row = row;
                match err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
        }
    }

    /// The `col <op> const` kernel, monomorphised per column representation.
    fn cmp_kernel(
        &self,
        seg: &Segment,
        scratch: &mut BatchScratch,
        col: usize,
        op: BinaryOp,
        konst: &Value,
        _ctx: &EvalContext<'_>,
    ) -> Result<(), SqlError> {
        let column = seg.column(col);
        let validity = column.validity();
        match column.data() {
            ColumnData::Int(ints) => retain(scratch, |off, _| {
                let off = off as usize;
                if !validity[off] {
                    return Tri::Null;
                }
                let v = ints[off];
                Tri::of_bool(cmp_holds(op, ord_int(v, konst), |a| sql_eq_int(a, konst)))
            }),
            ColumnData::Float(floats) => retain(scratch, |off, _| {
                let off = off as usize;
                if !validity[off] {
                    return Tri::Null;
                }
                let v = floats[off];
                Tri::of_bool(cmp_holds(op, ord_float(v, konst), |a| {
                    sql_eq_float(a, konst)
                }))
            }),
            ColumnData::Str { dict, codes } => {
                str_kernel(scratch, validity, dict, codes, |s| {
                    Tri::of_bool(cmp_holds(op, ord_str(s, konst), |a| sql_eq_str(a, konst)))
                });
            }
            _ => retain_generic(scratch, seg, col, |v| {
                if v.is_null() {
                    return Tri::Null;
                }
                let holds = match op {
                    BinaryOp::Eq => v.sql_eq(konst),
                    BinaryOp::NotEq => !v.sql_eq(konst),
                    BinaryOp::Lt => v.total_cmp(konst) == Ordering::Less,
                    BinaryOp::LtEq => v.total_cmp(konst) != Ordering::Greater,
                    BinaryOp::Gt => v.total_cmp(konst) == Ordering::Greater,
                    BinaryOp::GtEq => v.total_cmp(konst) != Ordering::Less,
                    // skylint: allow(no-panic) compile_predicate only builds CmpConst from comparison ops
                    _ => unreachable!("only comparisons build CmpConst"),
                };
                Tri::of_bool(holds)
            }),
        }
        Ok(())
    }
}

/// Run `f` over the selection, keeping True rows, keeping-and-flagging Null
/// rows, dropping False rows.  `f` gets `(offset, already_flagged)`.
#[inline]
fn retain(scratch: &mut BatchScratch, mut f: impl FnMut(u32, bool) -> Tri) {
    let mut kept = 0usize;
    for i in 0..scratch.sel.len() {
        let off = scratch.sel[i];
        let flagged = scratch.nulls[i];
        match f(off, flagged) {
            Tri::False => {}
            tri => {
                scratch.sel[kept] = off;
                scratch.nulls[kept] = flagged || tri == Tri::Null;
                kept += 1;
            }
        }
    }
    scratch.sel.truncate(kept);
    scratch.nulls.truncate(kept);
}

/// Generic per-row fallback for column representations without a dedicated
/// kernel (Bytes, Bool): fetch the cell as a [`Value`] — still no full-row
/// materialization.
#[inline]
fn retain_generic(
    scratch: &mut BatchScratch,
    seg: &Segment,
    col: usize,
    mut f: impl FnMut(&Value) -> Tri,
) {
    let column = seg.column(col);
    retain(scratch, |off, _| {
        let v = column.value(off as usize);
        f(&v)
    })
}

/// Evaluate a predicate once per dictionary entry into `answers`.
#[inline]
fn prime_dict(
    answers: &mut Vec<Tri>,
    dict: &[std::sync::Arc<str>],
    mut f: impl FnMut(&str) -> Tri,
) {
    answers.clear();
    answers.extend(dict.iter().map(|s| f(s)));
}

/// Run a string predicate over a dictionary-encoded column.  When the
/// dictionary is no larger than the selection, the predicate runs once per
/// distinct entry and the per-row codes map through the answers; for
/// near-unique dictionaries (more entries than selected rows) that would
/// evaluate entries no selected row uses, so the predicate runs per row
/// instead.
#[inline]
fn str_kernel(
    scratch: &mut BatchScratch,
    validity: &[bool],
    dict: &[std::sync::Arc<str>],
    codes: &[u32],
    pred: impl Fn(&str) -> Tri,
) {
    if dict.len() <= scratch.sel.len() {
        prime_dict(&mut scratch.dict, dict, &pred);
        let answers = std::mem::take(&mut scratch.dict);
        retain(scratch, |off, _| {
            let off = off as usize;
            if !validity[off] {
                Tri::Null
            } else {
                answers[codes[off] as usize]
            }
        });
        scratch.dict = answers;
    } else {
        retain(scratch, |off, _| {
            let off = off as usize;
            if !validity[off] {
                Tri::Null
            } else {
                pred(&dict[codes[off] as usize])
            }
        });
    }
}

/// Does `op` hold given the [`Value::total_cmp`] ordering?  `Eq`/`NotEq`
/// route through `eq` because SQL equality and total ordering agree only on
/// non-NULL values (which is all a kernel ever passes).
#[inline]
fn cmp_holds(op: BinaryOp, ord: Ordering, eq: impl Fn(Ordering) -> bool) -> bool {
    match op {
        BinaryOp::Eq => eq(ord),
        BinaryOp::NotEq => !eq(ord),
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        // skylint: allow(no-panic) callers dispatch on comparison ops before calling cmp_holds
        _ => unreachable!("only comparisons reach cmp_holds"),
    }
}

#[inline]
fn sql_eq_int(ord: Ordering, konst: &Value) -> bool {
    // sql_eq == (total_cmp == Equal) for non-NULL operands; konst is
    // non-NULL by construction.
    debug_assert!(!konst.is_null());
    ord == Ordering::Equal
}

#[inline]
fn sql_eq_float(ord: Ordering, konst: &Value) -> bool {
    debug_assert!(!konst.is_null());
    ord == Ordering::Equal
}

#[inline]
fn sql_eq_str(ord: Ordering, konst: &Value) -> bool {
    debug_assert!(!konst.is_null());
    ord == Ordering::Equal
}

/// `Value::total_cmp(Int(v), konst)` without constructing a `Value`.
#[inline]
fn ord_int(v: i64, konst: &Value) -> Ordering {
    match konst {
        Value::Int(k) => v.cmp(k),
        Value::Float(k) => (v as f64).total_cmp(k),
        // Type-rank order: Bool(1) < Int/Float(2) < Str(3) < Bytes(4).
        Value::Bool(_) => Ordering::Greater,
        Value::Str(_) | Value::Bytes(_) => Ordering::Less,
        Value::Null => Ordering::Greater,
    }
}

/// `Value::total_cmp(Float(v), konst)` without constructing a `Value`.
#[inline]
fn ord_float(v: f64, konst: &Value) -> Ordering {
    match konst {
        Value::Int(k) => v.total_cmp(&(*k as f64)),
        Value::Float(k) => v.total_cmp(k),
        Value::Bool(_) => Ordering::Greater,
        Value::Str(_) | Value::Bytes(_) => Ordering::Less,
        Value::Null => Ordering::Greater,
    }
}

/// `Value::total_cmp(Str(v), konst)` without constructing a `Value`.
#[inline]
fn ord_str(v: &str, konst: &Value) -> Ordering {
    match konst {
        Value::Str(k) => v.cmp(&**k),
        Value::Bytes(_) => Ordering::Less,
        Value::Null | Value::Bool(_) | Value::Int(_) | Value::Float(_) => Ordering::Greater,
    }
}

/// Specialise one conjunct.  Falls back to [`Conjunct::Scalar`] whenever a
/// shape has no kernel — semantics are preserved either way.
fn build_conjunct<'a>(expr: &'a CompiledExpr, column_types: &[DataType]) -> Conjunct<'a> {
    let col_ok = |i: &usize| *i < column_types.len();
    match expr {
        CompiledExpr::Binary { op, left, right } if op.is_comparison() => {
            // Normalise `const op col` to `col mirror(op) const`.
            let (col, op, konst) = match (&**left, &**right) {
                (CompiledExpr::Col(i), CompiledExpr::Const(k)) if col_ok(i) => (*i, *op, k),
                (CompiledExpr::Const(k), CompiledExpr::Col(i)) if col_ok(i) => (*i, op.mirror(), k),
                (inner, CompiledExpr::Const(k)) => {
                    return build_flags(inner, *op, k, column_types)
                        .unwrap_or(scalar_conjunct(expr, column_types.len()));
                }
                _ => return scalar_conjunct(expr, column_types.len()),
            };
            if konst.is_null() {
                Conjunct::AlwaysNull
            } else {
                Conjunct::CmpConst { col, op, konst }
            }
        }
        CompiledExpr::Between {
            expr: inner,
            low,
            high,
            negated,
        } => match (&**inner, &**low, &**high) {
            (CompiledExpr::Col(i), CompiledExpr::Const(lo), CompiledExpr::Const(hi))
                if col_ok(i) =>
            {
                if lo.is_null() || hi.is_null() {
                    Conjunct::AlwaysNull
                } else {
                    Conjunct::Between {
                        col: *i,
                        low: lo,
                        high: hi,
                        negated: *negated,
                    }
                }
            }
            _ => scalar_conjunct(expr, column_types.len()),
        },
        CompiledExpr::InList {
            expr: inner,
            list,
            negated,
        } => match &**inner {
            CompiledExpr::Col(i) if col_ok(i) => {
                let consts: Vec<&Value> = list
                    .iter()
                    .filter_map(|item| match item {
                        CompiledExpr::Const(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                if consts.len() != list.len() {
                    return scalar_conjunct(expr, column_types.len());
                }
                Conjunct::InList {
                    col: *i,
                    // NULL members never satisfy sql_eq; drop them.
                    list: consts.into_iter().filter(|v| !v.is_null()).collect(),
                    negated: *negated,
                }
            }
            _ => scalar_conjunct(expr, column_types.len()),
        },
        CompiledExpr::IsNull {
            expr: inner,
            negated,
        } => match &**inner {
            CompiledExpr::Col(i) if col_ok(i) => Conjunct::IsNull {
                col: *i,
                negated: *negated,
            },
            _ => scalar_conjunct(expr, column_types.len()),
        },
        CompiledExpr::LikePre {
            expr: inner,
            matcher,
            negated,
        } => match &**inner {
            CompiledExpr::Col(i) if col_ok(i) => Conjunct::Like {
                col: *i,
                matcher,
                negated: *negated,
            },
            _ => scalar_conjunct(expr, column_types.len()),
        },
        _ => scalar_conjunct(expr, column_types.len()),
    }
}

/// Recognise the flag idiom `(col & mask)` / `(col | mask)` as the left
/// side of a comparison — Int columns only, where `as_i64` is exact.
fn build_flags<'a>(
    inner: &'a CompiledExpr,
    op: BinaryOp,
    konst: &'a Value,
    column_types: &[DataType],
) -> Option<Conjunct<'a>> {
    let CompiledExpr::Binary {
        op: bit_op,
        left,
        right,
    } = inner
    else {
        return None;
    };
    let or = match bit_op {
        BinaryOp::BitAnd => false,
        BinaryOp::BitOr => true,
        _ => return None,
    };
    let (col, mask_v) = match (&**left, &**right) {
        (CompiledExpr::Col(i), CompiledExpr::Const(k)) => (*i, k),
        (CompiledExpr::Const(k), CompiledExpr::Col(i)) => (*i, k),
        _ => return None,
    };
    if column_types.get(col) != Some(&DataType::Int) {
        return None;
    }
    if mask_v.is_null() || konst.is_null() {
        // NULL anywhere makes the whole comparison NULL for every row.
        return Some(Conjunct::AlwaysNull);
    }
    let mask = mask_v.as_i64()?;
    Some(Conjunct::FlagsCmp {
        col,
        mask,
        or,
        op,
        konst,
    })
}
