//! Scalar and table-valued function registries.
//!
//! The SkyServer extends SQL Server with astronomy functions: scalar helpers
//! like `dbo.fPhotoFlags('saturated')` and `dbo.fGetUrlExpId(objID)`, and
//! table-valued spatial functions like `fGetNearbyObjEq(ra, dec, radius)`
//! and `spHTM_Cover(...)` that appear in `FROM` clauses.  The SQL engine
//! itself knows nothing about astronomy: the `skyserver-schema` crate
//! registers those functions here, and built-in math/string functions are
//! provided for everything the paper's queries use (`sqrt`, `power`, `abs`,
//! `pi`, `log`, `floor`, `str`, ...).

use crate::error::SqlError;
use crate::result::ResultSet;
use skyserver_storage::{Database, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A scalar user-defined function: values in, value out.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value, SqlError> + Send + Sync>;

/// A table-valued user-defined function: it receives the database (so
/// spatial functions can probe the PhotoObj table) plus its arguments and
/// returns a result set.
pub type TableFn = Arc<dyn Fn(&Database, &[Value]) -> Result<ResultSet, SqlError> + Send + Sync>;

/// A registered table-valued function: its output column names plus the
/// implementation.  The planner needs the column names to bind references
/// like `GN.distance` before the function has run.
#[derive(Clone)]
pub struct TableFunction {
    /// Output column names, in order.
    pub columns: Vec<String>,
    /// The implementation.
    pub func: TableFn,
}

/// Registry of user-defined scalar and table-valued functions.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    scalars: HashMap<String, ScalarFn>,
    tables: HashMap<String, TableFunction>,
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("scalars", &self.scalars.keys().collect::<Vec<_>>())
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Normalise a function name: lowercase with any `dbo.` prefix removed.
pub fn normalize_name(name: &str) -> String {
    let lower = name.to_ascii_lowercase();
    lower.strip_prefix("dbo.").unwrap_or(&lower).to_string()
}

impl FunctionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a scalar UDF (name is matched case-insensitively, with or
    /// without a `dbo.` prefix).
    pub fn register_scalar(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value, SqlError> + Send + Sync + 'static,
    ) {
        self.scalars.insert(normalize_name(name), Arc::new(f));
    }

    /// Register a table-valued UDF with its output column names.
    pub fn register_table(
        &mut self,
        name: &str,
        columns: &[&str],
        f: impl Fn(&Database, &[Value]) -> Result<ResultSet, SqlError> + Send + Sync + 'static,
    ) {
        self.tables.insert(
            normalize_name(name),
            TableFunction {
                columns: columns.iter().map(|s| s.to_string()).collect(),
                func: Arc::new(f),
            },
        );
    }

    /// Look up a scalar UDF.
    pub fn scalar(&self, name: &str) -> Option<&ScalarFn> {
        self.scalars.get(&normalize_name(name))
    }

    /// Look up a scalar UDF by an already-[`normalize_name`]d name.  The
    /// compiled expression path normalizes once at plan time, so the per-row
    /// lookup allocates nothing.
    pub fn scalar_normalized(&self, normalized: &str) -> Option<&ScalarFn> {
        self.scalars.get(normalized)
    }

    /// Look up a table-valued UDF.
    pub fn table(&self, name: &str) -> Option<&TableFunction> {
        self.tables.get(&normalize_name(name))
    }

    /// Names of all registered scalar functions (sorted).
    pub fn scalar_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.scalars.keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of all registered table-valued functions (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Evaluate a built-in scalar function.  Returns `None` when the name is not
/// a built-in (the caller then consults the UDF registry).
pub fn eval_builtin(name: &str, args: &[Value]) -> Option<Result<Value, SqlError>> {
    eval_builtin_normalized(&normalize_name(name), args)
}

/// Is the (already-normalized) name a built-in scalar function?  Used by the
/// expression compiler to classify calls at plan time.
pub fn is_builtin(normalized: &str) -> bool {
    // Every built-in arm returns `Some` for any argument list (bad arity is
    // `Some(Err)`), so probing with no arguments is a safe membership test.
    eval_builtin_normalized(normalized, &[]).is_some()
}

/// [`eval_builtin`] without the per-call name normalization: `name` must
/// already be lowercase with any `dbo.` prefix stripped.
pub fn eval_builtin_normalized(name: &str, args: &[Value]) -> Option<Result<Value, SqlError>> {
    let result = match name {
        "sqrt" => unary_math(name, args, f64::sqrt),
        "abs" => match args {
            [Value::Int(i)] => Ok(Value::Int(i.abs())),
            _ => unary_math(name, args, f64::abs),
        },
        "floor" => unary_math(name, args, f64::floor),
        "ceiling" | "ceil" => unary_math(name, args, f64::ceil),
        "exp" => unary_math(name, args, f64::exp),
        "log" => unary_math(name, args, f64::ln),
        "log10" => unary_math(name, args, f64::log10),
        "sin" => unary_math(name, args, f64::sin),
        "cos" => unary_math(name, args, f64::cos),
        "tan" => unary_math(name, args, f64::tan),
        "asin" => unary_math(name, args, f64::asin),
        "acos" => unary_math(name, args, f64::acos),
        "atan" => unary_math(name, args, f64::atan),
        "radians" => unary_math(name, args, f64::to_radians),
        "degrees" => unary_math(name, args, f64::to_degrees),
        "sign" => unary_math(name, args, f64::signum),
        "square" => unary_math(name, args, |x| x * x),
        "pi" => {
            if args.is_empty() {
                Ok(Value::Float(std::f64::consts::PI))
            } else {
                Err(SqlError::Execution("pi() takes no arguments".into()))
            }
        }
        "power" => binary_math(name, args, f64::powf),
        "atn2" | "atan2" => binary_math(name, args, f64::atan2),
        "round" => match args {
            [v] => unary_math(name, std::slice::from_ref(v), f64::round),
            [v, d] => round_to_digits(name, v, d),
            _ => Err(SqlError::Execution("round() takes 1 or 2 arguments".into())),
        },
        "str" => match args.first() {
            Some(v) => Ok(Value::str(v.to_string())),
            None => Err(SqlError::Execution("str() needs an argument".into())),
        },
        "len" | "length" => match args.first() {
            Some(Value::Str(s)) => Ok(Value::Int(s.len() as i64)),
            Some(v) => Ok(Value::Int(v.to_string().len() as i64)),
            None => Err(SqlError::Execution("len() needs an argument".into())),
        },
        "upper" => string_fn(name, args, |s| s.to_ascii_uppercase()),
        "lower" => string_fn(name, args, |s| s.to_ascii_lowercase()),
        "ltrim" => string_fn(name, args, |s| s.trim_start().to_string()),
        "rtrim" => string_fn(name, args, |s| s.trim_end().to_string()),
        "substring" => substring_fn(name, args),
        "coalesce" | "isnull" => {
            for a in args {
                if !a.is_null() {
                    return Some(Ok(a.clone()));
                }
            }
            Ok(Value::Null)
        }
        "nullif" => match args {
            [a, b] => {
                if a.sql_eq(b) {
                    Ok(Value::Null)
                } else {
                    Ok(a.clone())
                }
            }
            _ => Err(SqlError::Execution("nullif takes 2 arguments".into())),
        },
        _ => return None,
    };
    Some(result)
}

fn round_to_digits(name: &str, v: &Value, d: &Value) -> Result<Value, SqlError> {
    let x = numeric_arg(name, v)?;
    let digits = numeric_arg(name, d)? as i32;
    let factor = 10f64.powi(digits);
    Ok(Value::Float((x * factor).round() / factor))
}

fn substring_fn(name: &str, args: &[Value]) -> Result<Value, SqlError> {
    match args {
        [Value::Str(s), start, len] => {
            let start = (numeric_arg(name, start)? as usize).saturating_sub(1);
            let len = numeric_arg(name, len)? as usize;
            Ok(Value::str(
                s.chars().skip(start).take(len).collect::<String>(),
            ))
        }
        _ => Err(SqlError::Execution(
            "substring(str, start, len) argument error".into(),
        )),
    }
}

fn numeric_arg(name: &str, v: &Value) -> Result<f64, SqlError> {
    v.as_f64()
        .ok_or_else(|| SqlError::Execution(format!("{name}() expects a numeric argument, got {v}")))
}

fn unary_math(name: &str, args: &[Value], f: impl Fn(f64) -> f64) -> Result<Value, SqlError> {
    match args {
        [v] if v.is_null() => Ok(Value::Null),
        [v] => Ok(Value::Float(f(numeric_arg(name, v)?))),
        _ => Err(SqlError::Execution(format!("{name}() takes one argument"))),
    }
}

fn binary_math(name: &str, args: &[Value], f: impl Fn(f64, f64) -> f64) -> Result<Value, SqlError> {
    match args {
        [a, b] if a.is_null() || b.is_null() => Ok(Value::Null),
        [a, b] => Ok(Value::Float(f(
            numeric_arg(name, a)?,
            numeric_arg(name, b)?,
        ))),
        _ => Err(SqlError::Execution(format!("{name}() takes two arguments"))),
    }
}

fn string_fn(name: &str, args: &[Value], f: impl Fn(&str) -> String) -> Result<Value, SqlError> {
    match args {
        [Value::Str(s)] => Ok(Value::str(f(s))),
        [v] if v.is_null() => Ok(Value::Null),
        [v] => Ok(Value::str(f(&v.to_string()))),
        _ => Err(SqlError::Execution(format!("{name}() takes one argument"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_math() {
        assert_eq!(
            eval_builtin("sqrt", &[Value::Float(9.0)]).unwrap().unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            eval_builtin("POWER", &[Value::Int(2), Value::Int(10)])
                .unwrap()
                .unwrap(),
            Value::Float(1024.0)
        );
        assert_eq!(
            eval_builtin("abs", &[Value::Int(-5)]).unwrap().unwrap(),
            Value::Int(5)
        );
        let pi = eval_builtin("pi", &[]).unwrap().unwrap();
        assert!((pi.as_f64().unwrap() - std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(
            eval_builtin("round", &[Value::Float(2.567), Value::Int(2)])
                .unwrap()
                .unwrap(),
            Value::Float(2.57)
        );
    }

    #[test]
    fn builtin_strings() {
        assert_eq!(
            eval_builtin("upper", &[Value::str("ngc")])
                .unwrap()
                .unwrap(),
            Value::str("NGC")
        );
        assert_eq!(
            eval_builtin("len", &[Value::str("abc")]).unwrap().unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_builtin(
                "substring",
                &[Value::str("skyserver"), Value::Int(4), Value::Int(6)]
            )
            .unwrap()
            .unwrap(),
            Value::str("server")
        );
        assert_eq!(
            eval_builtin("str", &[Value::Int(42)]).unwrap().unwrap(),
            Value::str("42")
        );
    }

    #[test]
    fn null_propagation_and_coalesce() {
        assert_eq!(
            eval_builtin("sqrt", &[Value::Null]).unwrap().unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_builtin("coalesce", &[Value::Null, Value::Int(3), Value::Int(7)])
                .unwrap()
                .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_builtin("nullif", &[Value::Int(3), Value::Int(3)])
                .unwrap()
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn unknown_builtin_returns_none() {
        assert!(eval_builtin("fPhotoFlags", &[Value::str("saturated")]).is_none());
        assert!(eval_builtin("no_such_function", &[]).is_none());
    }

    #[test]
    fn bad_arity_is_an_error() {
        assert!(eval_builtin("sqrt", &[]).unwrap().is_err());
        assert!(eval_builtin("power", &[Value::Int(2)]).unwrap().is_err());
        assert!(eval_builtin("pi", &[Value::Int(1)]).unwrap().is_err());
        assert!(eval_builtin("sqrt", &[Value::str("x")]).unwrap().is_err());
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = FunctionRegistry::new();
        reg.register_scalar("dbo.fPhotoFlags", |args| {
            Ok(Value::Int(if args[0] == Value::str("saturated") {
                64
            } else {
                0
            }))
        });
        reg.register_table("fGetNearbyObjEq", &["objID", "distance"], |_db, _args| {
            Ok(ResultSet::empty(vec!["objID".into(), "distance".into()]))
        });
        // Lookup works with or without the dbo. prefix and any case.
        assert!(reg.scalar("fphotoflags").is_some());
        assert!(reg.scalar("DBO.FPHOTOFLAGS").is_some());
        assert!(reg.table("fgetnearbyobjeq").is_some());
        assert_eq!(
            reg.table("fGetNearbyObjEq").unwrap().columns,
            vec!["objID", "distance"]
        );
        assert!(reg.scalar("missing").is_none());
        assert_eq!(reg.scalar_names(), vec!["fphotoflags"]);
        assert_eq!(reg.table_names(), vec!["fgetnearbyobjeq"]);
        let f = reg.scalar("fPhotoFlags").unwrap();
        assert_eq!(f(&[Value::str("saturated")]).unwrap(), Value::Int(64));
    }

    #[test]
    fn normalize_names() {
        assert_eq!(normalize_name("dbo.fGetUrlExpId"), "fgeturlexpid");
        assert_eq!(normalize_name("SQRT"), "sqrt");
    }
}
