//! Physical query plans.
//!
//! The planner turns a bound `SELECT` statement into a [`SelectPlan`]: a
//! left-deep pipeline of sources (heap scans, index seeks, covering index
//! scans, table-valued functions, derived tables) connected by join steps
//! (index-lookup, hash or nested-loop), followed by filter / aggregate /
//! sort / top stages.  `EXPLAIN` renders this structure, which is how the
//! reproduction shows the plan shapes of Figures 10-12.

use crate::ast::{Expr, JoinKind, OrderByItem, SelectItem};
use crate::exec::compile::CompiledPrograms;
use crate::expr::RowSchema;
use skyserver_storage::Value;

/// How a base table is accessed.
// Plan nodes are built a handful of times per statement; clarity beats the
// boxing a size-balanced enum would need.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Serial sequential scan of the heap.
    HeapScan,
    /// Parallel sequential scan fanned out over `workers` threads — the
    /// Figure 11 brute-force path, chosen explicitly by the optimizer's
    /// parallel-scan rule for large unindexed predicates.
    ParallelHeapScan {
        /// Requested worker fan-out (fixed so EXPLAIN is machine-independent).
        workers: usize,
    },
    /// B-tree seek using bounds on the leading key column.
    IndexSeek {
        /// The index used.
        index: String,
        /// Key bounds of the seek.
        bounds: IndexBounds,
    },
    /// Full scan of a covering index (column subset, 10-100x less IO).
    CoveringIndexScan {
        /// The covering index scanned instead of the heap.
        index: String,
    },
}

/// Bounds on the leading column of an index.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IndexBounds {
    /// The leading key column the bounds apply to.
    pub column: String,
    /// Equality bound (takes precedence over the range bounds).
    pub equals: Option<Expr>,
    /// Lower bound expression and inclusiveness.
    pub lower: Option<(Expr, bool)>,
    /// Upper bound expression and inclusiveness.
    pub upper: Option<(Expr, bool)>,
}

impl IndexBounds {
    /// True when no bound at all is present.
    pub fn is_unbounded(&self) -> bool {
        self.equals.is_none() && self.lower.is_none() && self.upper.is_none()
    }
}

/// A value interval a pushed predicate implies for one base-table column.
///
/// Heap scans compare these against per-segment zone maps (min/max kept by
/// the columnar storage layer) and skip whole segments whose zones are
/// disjoint from the interval.  Constraints are only extracted when *every*
/// conjunct of the pushed predicate is total (cannot raise an execution
/// error), which makes pruning sound regardless of NULLs: a row whose
/// constrained column falls outside the interval makes that conjunct FALSE
/// or NULL, and the whole AND rejects the row.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneConstraint {
    /// Ordinal of the column in the base table's storage layout.
    pub ordinal: usize,
    /// Column name, for EXPLAIN rendering.
    pub column: String,
    /// Lower bound (value, inclusive?).  `None` = unbounded below.
    pub low: Option<(Value, bool)>,
    /// Upper bound (value, inclusive?).  `None` = unbounded above.
    pub high: Option<(Value, bool)>,
}

impl ZoneConstraint {
    /// True when a segment whose column spans `[zone_min, zone_max]` may
    /// contain a satisfying row.  An all-NULL column reports no zone and
    /// can never satisfy a bound.
    pub fn zone_overlaps(&self, zone_min: Option<&Value>, zone_max: Option<&Value>) -> bool {
        let (zmin, zmax) = match (zone_min, zone_max) {
            (Some(a), Some(b)) => (a, b),
            _ => return false,
        };
        if let Some((lo, inclusive)) = &self.low {
            let c = zmax.total_cmp(lo);
            if c == std::cmp::Ordering::Less || (!inclusive && c == std::cmp::Ordering::Equal) {
                return false;
            }
        }
        if let Some((hi, inclusive)) = &self.high {
            let c = zmin.total_cmp(hi);
            if c == std::cmp::Ordering::Greater || (!inclusive && c == std::cmp::Ordering::Equal) {
                return false;
            }
        }
        true
    }

    /// Compact rendering for EXPLAIN, e.g. `ra in [185, 185.1]`.
    pub fn render(&self) -> String {
        let lo = self
            .low
            .as_ref()
            .map(|(v, inc)| format!("{}{v}", if *inc { "[" } else { "(" }))
            .unwrap_or_else(|| "[-inf".into());
        let hi = self
            .high
            .as_ref()
            .map(|(v, inc)| format!("{v}{}", if *inc { "]" } else { ")" }))
            .unwrap_or_else(|| "+inf]".into());
        format!("{} in {lo}, {hi}", self.column)
    }
}

/// One source in the FROM pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SourcePlan {
    /// Alias the rest of the query uses to refer to this source.
    pub alias: String,
    /// What the source is and how it is read.
    pub kind: SourceKind,
    /// Single-source predicate pushed down to the scan.
    pub pushed_predicate: Option<Expr>,
    /// Output schema of the source (all columns qualified by `alias`).
    pub schema: RowSchema,
    /// Row budget granted by the limit-pushdown rule: the scan may stop
    /// after producing this many (post-predicate) rows.
    pub limit_hint: Option<u64>,
    /// Column intervals implied by `pushed_predicate`, used by heap scans
    /// to skip segments via zone maps.  Always computed (both the compiled
    /// and interpreted executors prune identically).
    pub zone_constraints: Vec<ZoneConstraint>,
    /// Storage ordinals of the columns the query actually references on
    /// this source (scan, predicate, joins, projections...).  Byte
    /// accounting charges only these columns; `None` means the planner
    /// could not prove a subset and the whole row is charged.
    pub scan_columns: Option<Vec<usize>>,
    /// Estimated rows this source produces after its pushed predicate,
    /// from the table statistics + selectivity model.  `EXPLAIN` prints it
    /// and the cardinality-accuracy harness pins its q-error.
    pub est_rows: Option<u64>,
}

/// The kinds of plan sources.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum SourceKind {
    /// Base table (or temp table) access.
    Table {
        /// Table name.
        table: String,
        /// How the table is read.
        path: AccessPath,
    },
    /// Table-valued function call (e.g. `fGetNearbyObjEq`).
    TableFunction {
        /// Function name.
        name: String,
        /// Call arguments (evaluated before the scan).
        args: Vec<Expr>,
    },
    /// Materialised sub-select.
    Derived {
        /// The sub-select's plan.
        plan: Box<SelectPlan>,
    },
}

/// How a source joins with everything planned before it.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStep {
    /// Inner / left / cross.
    pub kind: JoinKind,
    /// The join algorithm.
    pub strategy: JoinStrategy,
    /// Residual predicate evaluated on the combined row (anything the
    /// strategy's key comparison does not already guarantee).
    pub residual: Option<Expr>,
    /// Estimated rows the join produces (NDV-based containment model).
    pub est_rows: Option<u64>,
}

/// Join algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinStrategy {
    /// For each outer row, probe a B-tree index on the inner table.
    IndexLookup {
        /// The probed index.
        index: String,
        /// Expression over the outer (accumulated) row producing the key.
        outer_key: Expr,
        /// Inner column the index leads with.
        inner_column: String,
    },
    /// Build a hash table on the inner side keyed by `inner_keys`, probe
    /// with `outer_keys`.
    Hash {
        /// Probe-side key expressions (over the accumulated row).
        outer_keys: Vec<Expr>,
        /// Build-side key expressions (over the inner row).
        inner_keys: Vec<Expr>,
    },
    /// Plain nested loop over the materialised inner side.
    NestedLoop,
}

/// A fully planned SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    /// Sources in join order (first = driver).
    pub sources: Vec<SourcePlan>,
    /// Join steps; `joins[i]` connects `sources[i + 1]` to the accumulated
    /// left side.
    pub joins: Vec<JoinStep>,
    /// Predicate evaluated after all joins (conjuncts that could not be
    /// pushed down or folded into a join).
    pub residual: Option<Expr>,
    /// Output projections (post `*` expansion): `(expr, output_name)`.
    pub projections: Vec<(Expr, String)>,
    /// Original select items (used for `*` bookkeeping in EXPLAIN).
    pub select_items: Vec<SelectItem>,
    /// GROUP BY expressions (empty + has_aggregates = single-group).
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// True if any projection or HAVING contains an aggregate.
    pub has_aggregates: bool,
    /// ORDER BY items.
    pub order_by: Vec<OrderByItem>,
    /// TOP n limit.
    pub top: Option<u64>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// `INTO ##target` destination.
    pub into: Option<String>,
    /// Combined input schema (all sources joined) the projections reference.
    pub input_schema: RowSchema,
    /// Optimizer rules that fired while producing this plan, in pipeline
    /// order; `EXPLAIN` reports them.
    pub rules_fired: Vec<&'static str>,
    /// Expression programs compiled at plan finalization (ordinal-resolved
    /// predicates, join keys, projections...).  `None` runs the interpreter
    /// instead — EXPLAIN output is identical either way, since it renders
    /// the `Expr`s.
    pub programs: Option<CompiledPrograms>,
    /// Run heap scans through the vectorized batch pipeline (selection
    /// vectors over ~1024-row chunks) instead of row-at-a-time compiled
    /// evaluation.  Only effective when `programs` is present; counters and
    /// results are identical either way.
    pub vectorized: bool,
    /// Estimated rows of the whole plan (after joins and the residual
    /// filter, before aggregation/TOP), from the selectivity model.
    pub est_rows: Option<u64>,
    /// Release snapshot the plan's scans are pinned to (`AS OF drN` or the
    /// session's ambient `?release=`).  `None` means the live head database;
    /// the plan verifier checks a pinned release exists in the catalog.
    pub release: Option<String>,
}

impl SelectPlan {
    /// The dominant access-path class of the plan, used to bucket queries
    /// the way Figure 13 does (index lookups vs scans vs join-heavy).
    pub fn plan_class(&self) -> PlanClass {
        let mut has_scan = false;
        let mut has_seek = false;
        for s in &self.sources {
            match &s.kind {
                SourceKind::Table { path, .. } => match path {
                    AccessPath::HeapScan | AccessPath::ParallelHeapScan { .. } => has_scan = true,
                    AccessPath::IndexSeek { .. } | AccessPath::CoveringIndexScan { .. } => {
                        has_seek = true
                    }
                },
                SourceKind::Derived { plan } => match plan.plan_class() {
                    PlanClass::Scan | PlanClass::JoinScan => has_scan = true,
                    _ => has_seek = true,
                },
                SourceKind::TableFunction { .. } => {}
            }
        }
        if self.sources.len() > 1 && has_scan {
            PlanClass::JoinScan
        } else if has_scan {
            PlanClass::Scan
        } else if has_seek {
            PlanClass::IndexSeek
        } else {
            PlanClass::FunctionOnly
        }
    }

    /// Full `EXPLAIN` output: the plan tree plus the list of optimizer
    /// rules that fired (how the reproduction shows *why* a query got its
    /// Figure-10 or Figure-11 shape).
    pub fn render_explain(&self) -> String {
        let mut out = self.render();
        if self.rules_fired.is_empty() {
            out.push_str("-- optimizer rules fired: (none)\n");
        } else {
            out.push_str(&format!(
                "-- optimizer rules fired: {}\n",
                self.rules_fired.join(", ")
            ));
        }
        if let Some(release) = &self.release {
            out.push_str(&format!("-- release: {release}\n"));
        }
        out
    }

    /// Render the plan as an indented text tree (the EXPLAIN output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut indent = 0;
        if self.into.is_some() {
            push_line(
                &mut out,
                indent,
                &format!("InsertInto({})", self.into.as_deref().unwrap_or("")),
            );
            indent += 1;
        }
        if let Some(top) = self.top {
            push_line(&mut out, indent, &format!("Top({top})"));
            indent += 1;
        }
        if self.distinct {
            push_line(&mut out, indent, "Distinct");
            indent += 1;
        }
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|o| {
                    format!(
                        "{}{}",
                        render_expr(&o.expr),
                        if o.ascending { "" } else { " DESC" }
                    )
                })
                .collect();
            push_line(&mut out, indent, &format!("Sort({})", keys.join(", ")));
            indent += 1;
        }
        if self.has_aggregates || !self.group_by.is_empty() {
            let keys: Vec<String> = self.group_by.iter().map(render_expr).collect();
            push_line(
                &mut out,
                indent,
                &format!("Aggregate(group by: [{}])", keys.join(", ")),
            );
            indent += 1;
        }
        let proj: Vec<&str> = self.projections.iter().map(|(_, n)| n.as_str()).collect();
        push_line(
            &mut out,
            indent,
            &format!("Project({}){}", proj.join(", "), render_est(self.est_rows)),
        );
        indent += 1;
        if let Some(r) = &self.residual {
            push_line(&mut out, indent, &format!("Filter({})", render_expr(r)));
            indent += 1;
        }
        // Joins are left-deep: render innermost (first source) deepest.
        self.render_join_tree(&mut out, indent, self.sources.len());
        out
    }

    fn render_join_tree(&self, out: &mut String, indent: usize, upto: usize) {
        if upto == 1 {
            render_source(out, indent, &self.sources[0]);
            return;
        }
        let step = &self.joins[upto - 2];
        let strategy = match &step.strategy {
            JoinStrategy::IndexLookup {
                index,
                outer_key,
                inner_column,
            } => format!(
                "NestedLoopJoin[index lookup {index} on {} = {}]",
                render_expr(outer_key),
                inner_column
            ),
            JoinStrategy::Hash {
                outer_keys,
                inner_keys,
            } => format!(
                "HashJoin[{} = {}]",
                outer_keys
                    .iter()
                    .map(render_expr)
                    .collect::<Vec<_>>()
                    .join(", "),
                inner_keys
                    .iter()
                    .map(render_expr)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            JoinStrategy::NestedLoop => "NestedLoopJoin".to_string(),
        };
        let kind = match step.kind {
            JoinKind::Inner => "",
            JoinKind::Left => " (left outer)",
            JoinKind::Cross => " (cross)",
        };
        push_line(
            out,
            indent,
            &format!("{strategy}{kind}{}", render_est(step.est_rows)),
        );
        self.render_join_tree(out, indent + 1, upto - 1);
        render_source(out, indent + 1, &self.sources[upto - 1]);
    }
}

/// Plan classes used to bucket the 20 queries like Figure 13 does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PlanClass {
    /// Answered entirely by index seeks / covering index scans.
    IndexSeek,
    /// Requires at least one full heap scan.
    Scan,
    /// Multi-table plan containing a heap scan (spatial/self joins).
    JoinScan,
    /// Only table-valued functions (no base table access).
    FunctionOnly,
}

impl std::fmt::Display for PlanClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlanClass::IndexSeek => "index",
            PlanClass::Scan => "scan",
            PlanClass::JoinScan => "join-scan",
            PlanClass::FunctionOnly => "function",
        };
        f.write_str(s)
    }
}

fn render_source(out: &mut String, indent: usize, source: &SourcePlan) {
    match &source.kind {
        SourceKind::Table { table, path } => {
            let access = match path {
                AccessPath::HeapScan => format!("TableScan({table})"),
                AccessPath::ParallelHeapScan { workers } => {
                    format!("ParallelTableScan({table} x{workers})")
                }
                AccessPath::IndexSeek { index, bounds } => {
                    let mut b = Vec::new();
                    if let Some(e) = &bounds.equals {
                        b.push(format!("{} = {}", bounds.column, render_expr(e)));
                    }
                    if let Some((e, inc)) = &bounds.lower {
                        b.push(format!(
                            "{} {} {}",
                            bounds.column,
                            if *inc { ">=" } else { ">" },
                            render_expr(e)
                        ));
                    }
                    if let Some((e, inc)) = &bounds.upper {
                        b.push(format!(
                            "{} {} {}",
                            bounds.column,
                            if *inc { "<=" } else { "<" },
                            render_expr(e)
                        ));
                    }
                    format!("IndexSeek({table}.{index}: {})", b.join(" AND "))
                }
                AccessPath::CoveringIndexScan { index } => {
                    format!("CoveringIndexScan({table}.{index})")
                }
            };
            let pred = source
                .pushed_predicate
                .as_ref()
                .map(|p| format!(" where {}", render_expr(p)))
                .unwrap_or_default();
            let limit = source
                .limit_hint
                .map(|n| format!(" limit {n}"))
                .unwrap_or_default();
            let zones = if source.zone_constraints.is_empty() {
                String::new()
            } else {
                format!(
                    " zones({})",
                    source
                        .zone_constraints
                        .iter()
                        .map(ZoneConstraint::render)
                        .collect::<Vec<_>>()
                        .join("; ")
                )
            };
            push_line(
                out,
                indent,
                &format!(
                    "{access} AS {}{pred}{limit}{zones}{}",
                    source.alias,
                    render_est(source.est_rows)
                ),
            );
        }
        SourceKind::TableFunction { name, args } => {
            let a: Vec<String> = args.iter().map(render_expr).collect();
            push_line(
                out,
                indent,
                &format!(
                    "TableFunction({name}({})) AS {}{}",
                    a.join(", "),
                    source.alias,
                    render_est(source.est_rows)
                ),
            );
        }
        SourceKind::Derived { plan } => {
            push_line(
                out,
                indent,
                &format!("Derived AS {}{}", source.alias, render_est(source.est_rows)),
            );
            for line in plan.render().lines() {
                push_line(out, indent + 1, line.trim_start());
            }
        }
    }
}

/// ` est_rows=N` suffix for plan nodes carrying an estimate (empty before
/// the estimate annotation pass runs).
fn render_est(est: Option<u64>) -> String {
    est.map(|n| format!(" est_rows={n}")).unwrap_or_default()
}

fn push_line(out: &mut String, indent: usize, text: &str) {
    out.push_str(&"  ".repeat(indent));
    out.push_str(text);
    out.push('\n');
}

/// Compact textual rendering of an expression for EXPLAIN output.
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => v.to_string(),
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Variable(v) => format!("@{v}"),
        Expr::Star => "*".into(),
        Expr::Unary { op, expr } => format!(
            "{}{}",
            match op {
                crate::ast::UnaryOp::Neg => "-",
                crate::ast::UnaryOp::Not => "NOT ",
            },
            render_expr(expr)
        ),
        Expr::Binary { left, op, right } => {
            format!("({} {op} {})", render_expr(left), render_expr(right))
        }
        Expr::Function { name, args } => format!(
            "{name}({})",
            args.iter().map(render_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => format!(
            "{} {}BETWEEN {} AND {}",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            render_expr(low),
            render_expr(high)
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => format!(
            "{} {}IN ({})",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            list.iter().map(render_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            render_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{} {}LIKE {}",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            render_expr(pattern)
        ),
        Expr::Case { .. } => "CASE ... END".into(),
        Expr::Cast { expr, ty } => format!("CAST({} AS {ty})", render_expr(expr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinaryOp;

    fn simple_table_source(alias: &str, table: &str, path: AccessPath) -> SourcePlan {
        SourcePlan {
            alias: alias.into(),
            kind: SourceKind::Table {
                table: table.into(),
                path,
            },
            pushed_predicate: None,
            schema: RowSchema::for_table(Some(alias), &["objID", "ra"]),
            limit_hint: None,
            zone_constraints: Vec::new(),
            scan_columns: None,
            est_rows: None,
        }
    }

    fn minimal_plan(sources: Vec<SourcePlan>, joins: Vec<JoinStep>) -> SelectPlan {
        let input_schema = sources
            .iter()
            .map(|s| s.schema.clone())
            .reduce(|a, b| a.join(&b))
            .unwrap_or_default();
        SelectPlan {
            sources,
            joins,
            residual: None,
            projections: vec![(Expr::col("objID"), "objID".into())],
            select_items: vec![],
            group_by: vec![],
            having: None,
            has_aggregates: false,
            order_by: vec![],
            top: None,
            distinct: false,
            into: None,
            input_schema,
            rules_fired: Vec::new(),
            programs: None,
            vectorized: false,
            est_rows: None,
            release: None,
        }
    }

    #[test]
    fn plan_class_buckets() {
        let scan = minimal_plan(
            vec![simple_table_source("p", "photoObj", AccessPath::HeapScan)],
            vec![],
        );
        assert_eq!(scan.plan_class(), PlanClass::Scan);

        let seek = minimal_plan(
            vec![simple_table_source(
                "p",
                "photoObj",
                AccessPath::IndexSeek {
                    index: "pk".into(),
                    bounds: IndexBounds {
                        column: "objID".into(),
                        equals: Some(Expr::int(1)),
                        ..Default::default()
                    },
                },
            )],
            vec![],
        );
        assert_eq!(seek.plan_class(), PlanClass::IndexSeek);

        let join_scan = minimal_plan(
            vec![
                simple_table_source("r", "photoObj", AccessPath::HeapScan),
                simple_table_source("g", "photoObj", AccessPath::HeapScan),
            ],
            vec![JoinStep {
                kind: JoinKind::Inner,
                strategy: JoinStrategy::NestedLoop,
                residual: None,
                est_rows: None,
            }],
        );
        assert_eq!(join_scan.plan_class(), PlanClass::JoinScan);
    }

    #[test]
    fn render_contains_plan_shape() {
        let plan = minimal_plan(
            vec![
                SourcePlan {
                    alias: "GN".into(),
                    kind: SourceKind::TableFunction {
                        name: "fGetNearbyObjEq".into(),
                        args: vec![Expr::int(185), Expr::int(0), Expr::int(1)],
                    },
                    pushed_predicate: None,
                    schema: RowSchema::for_table(Some("GN"), &["objID", "distance"]),
                    limit_hint: None,
                    zone_constraints: Vec::new(),
                    scan_columns: None,
                    est_rows: None,
                },
                simple_table_source(
                    "G",
                    "photoObj",
                    AccessPath::IndexSeek {
                        index: "pk_photoObj".into(),
                        bounds: IndexBounds {
                            column: "objID".into(),
                            equals: Some(Expr::col("objID")),
                            ..Default::default()
                        },
                    },
                ),
            ],
            vec![JoinStep {
                kind: JoinKind::Inner,
                strategy: JoinStrategy::IndexLookup {
                    index: "pk_photoObj".into(),
                    outer_key: Expr::Column {
                        qualifier: Some("GN".into()),
                        name: "objID".into(),
                    },
                    inner_column: "objID".into(),
                },
                residual: None,
                est_rows: None,
            }],
        );
        let text = plan.render();
        assert!(text.contains("TableFunction(fGetNearbyObjEq"));
        assert!(text.contains("NestedLoopJoin[index lookup pk_photoObj"));
        assert!(text.contains("Project(objID)"));
    }

    #[test]
    fn render_expr_round_trip_shapes() {
        let e = Expr::Binary {
            left: Box::new(Expr::Binary {
                left: Box::new(Expr::col("flags")),
                op: BinaryOp::BitAnd,
                right: Box::new(Expr::Variable("saturated".into())),
            }),
            op: BinaryOp::Eq,
            right: Box::new(Expr::int(0)),
        };
        assert_eq!(render_expr(&e), "((flags & @saturated) = 0)");
    }

    #[test]
    fn bounds_unbounded() {
        assert!(IndexBounds::default().is_unbounded());
        let b = IndexBounds {
            column: "x".into(),
            lower: Some((Expr::int(1), true)),
            ..Default::default()
        };
        assert!(!b.is_unbounded());
    }
}
