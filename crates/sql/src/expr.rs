//! Expression evaluation over rows.
//!
//! The executor flattens each joined row into a single `&[Value]` slice and
//! describes it with a [`RowSchema`] mapping `(qualifier, column)` pairs to
//! positions.  Expressions are evaluated against that schema with SQL
//! semantics: three-valued logic, NULL propagation through arithmetic, and
//! the T-SQL operators the paper's queries use (bitwise `&` flag tests,
//! `BETWEEN`, `LIKE`, `IN`, `CASE`).

use crate::ast::{is_aggregate_name, BinaryOp, Expr, UnaryOp};
use crate::error::SqlError;
use crate::functions::{eval_builtin, FunctionRegistry};
use skyserver_storage::{DataType, Value};
use std::collections::HashMap;

/// Describes the columns of a (possibly joined) row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowSchema {
    columns: Vec<(Option<String>, String)>,
}

impl RowSchema {
    /// Build a schema from `(qualifier, column_name)` pairs.
    pub fn new(columns: Vec<(Option<String>, String)>) -> Self {
        RowSchema { columns }
    }

    /// Build a schema for a single table/alias.
    pub fn for_table(qualifier: Option<&str>, names: &[&str]) -> Self {
        RowSchema {
            columns: names
                .iter()
                .map(|n| (qualifier.map(str::to_string), n.to_string()))
                .collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The `(qualifier, name)` pairs.
    pub fn columns(&self) -> &[(Option<String>, String)] {
        &self.columns
    }

    /// Unqualified output names (used for result-set headers).
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|(_, n)| n.clone()).collect()
    }

    /// Concatenate two schemas (join).
    pub fn join(&self, other: &RowSchema) -> RowSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        RowSchema { columns }
    }

    /// Positions of the columns belonging to `qualifier`.
    pub fn positions_of_qualifier(&self, qualifier: &str) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, (q, _))| {
                q.as_deref()
                    .map(|q| q.eq_ignore_ascii_case(qualifier))
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Resolve a column reference to a position.
    ///
    /// Unqualified names must be unambiguous; qualified names must match the
    /// qualifier (table alias) and the column name.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, SqlError> {
        let mut matches = self.columns.iter().enumerate().filter(|(_, (q, n))| {
            n.eq_ignore_ascii_case(name)
                && match (qualifier, q) {
                    (None, _) => true,
                    (Some(want), Some(have)) => want.eq_ignore_ascii_case(have),
                    (Some(_), None) => false,
                }
        });
        match (matches.next(), matches.next()) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(SqlError::Plan(format!(
                "ambiguous column reference {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            (None, _) => Err(SqlError::Plan(format!(
                "unknown column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
        }
    }

    /// Can the reference be resolved?
    pub fn can_resolve(&self, qualifier: Option<&str>, name: &str) -> bool {
        self.resolve(qualifier, name).is_ok()
    }
}

/// Everything an expression evaluation needs besides the row itself.
pub struct EvalContext<'a> {
    /// Schema of the row being evaluated.
    pub schema: &'a RowSchema,
    /// Session variables (`@name`).
    pub variables: &'a HashMap<String, Value>,
    /// Scalar function registry.
    pub functions: &'a FunctionRegistry,
    /// Pre-computed aggregate values keyed by [`aggregate_key`] (present only
    /// while projecting grouped results).
    pub aggregates: Option<&'a HashMap<String, Value>>,
}

/// Canonical key used to look up a pre-computed aggregate value.
pub fn aggregate_key(expr: &Expr) -> String {
    format!("{expr:?}")
}

/// Evaluate an expression against a row.
pub fn eval(expr: &Expr, row: &[Value], ctx: &EvalContext<'_>) -> Result<Value, SqlError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { qualifier, name } => {
            let idx = ctx.schema.resolve(qualifier.as_deref(), name)?;
            row.get(idx)
                .cloned()
                .ok_or_else(|| SqlError::Execution(format!("row too short for column {name}")))
        }
        Expr::Variable(name) => ctx
            .variables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| SqlError::Execution(format!("variable @{name} is not defined"))),
        Expr::Star => Err(SqlError::Execution(
            "'*' is only valid inside count(*)".into(),
        )),
        Expr::Unary { op, expr } => {
            let v = eval(expr, row, ctx)?;
            apply_unary(*op, v)
        }
        Expr::Binary { left, op, right } => eval_binary(left, *op, right, row, ctx),
        Expr::Function { name, args } => eval_function(name, args, row, ctx),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, row, ctx)?;
            let lo = eval(low, row, ctx)?;
            let hi = eval(high, row, ctx)?;
            Ok(between_value(&v, &lo, &hi, *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let iv = eval(item, row, ctx)?;
                if v.sql_eq(&iv) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, row, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row, ctx)?;
            let p = eval(pattern, row, ctx)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let matched = like_match(&v.to_string(), &p.to_string());
            Ok(Value::Bool(matched != *negated))
        }
        Expr::Case {
            branches,
            else_value,
        } => {
            for (cond, value) in branches {
                if eval(cond, row, ctx)?.is_truthy() {
                    return eval(value, row, ctx);
                }
            }
            match else_value {
                Some(e) => eval(e, row, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, ty } => {
            let v = eval(expr, row, ctx)?;
            v.coerce(*ty)
                .ok_or_else(|| SqlError::Execution(format!("cannot cast {v} to {ty}")))
        }
    }
}

fn eval_function(
    name: &str,
    args: &[Expr],
    row: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Value, SqlError> {
    if is_aggregate_name(name) {
        // During grouped projection the executor provides pre-computed
        // aggregate values; anywhere else an aggregate is a planning error.
        let key = aggregate_key(&Expr::Function {
            name: name.to_string(),
            args: args.to_vec(),
        });
        if let Some(aggs) = ctx.aggregates {
            if let Some(v) = aggs.get(&key) {
                return Ok(v.clone());
            }
        }
        return Err(SqlError::Plan(format!(
            "aggregate {name}() is not valid in this context"
        )));
    }
    let mut values = Vec::with_capacity(args.len());
    for a in args {
        values.push(eval(a, row, ctx)?);
    }
    if let Some(result) = eval_builtin(name, &values) {
        return result;
    }
    if let Some(udf) = ctx.functions.scalar(name) {
        return udf(&values);
    }
    Err(SqlError::UnknownFunction(name.to_string()))
}

fn eval_binary(
    left: &Expr,
    op: BinaryOp,
    right: &Expr,
    row: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Value, SqlError> {
    // AND/OR need three-valued logic with short-circuiting.
    if op == BinaryOp::And {
        let l = eval(left, row, ctx)?;
        if !l.is_null() && !l.is_truthy() {
            return Ok(Value::Bool(false));
        }
        let r = eval(right, row, ctx)?;
        if !r.is_null() && !r.is_truthy() {
            return Ok(Value::Bool(false));
        }
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        return Ok(Value::Bool(true));
    }
    if op == BinaryOp::Or {
        let l = eval(left, row, ctx)?;
        if !l.is_null() && l.is_truthy() {
            return Ok(Value::Bool(true));
        }
        let r = eval(right, row, ctx)?;
        if !r.is_null() && r.is_truthy() {
            return Ok(Value::Bool(true));
        }
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        return Ok(Value::Bool(false));
    }
    let l = eval(left, row, ctx)?;
    let r = eval(right, row, ctx)?;
    apply_binary(&l, op, &r)
}

/// Apply a unary operator with the interpreter's NULL/type semantics.  The
/// single source of truth for both the interpreter and compiled programs.
pub(crate) fn apply_unary(op: UnaryOp, v: Value) -> Result<Value, SqlError> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(SqlError::Execution(format!("cannot negate {other}"))),
        },
        UnaryOp::Not => match v {
            Value::Null => Ok(Value::Null),
            other => Ok(Value::Bool(!other.is_truthy())),
        },
    }
}

/// Apply a non-logical binary operator (arithmetic, comparison, bitwise) to
/// two already-evaluated operands with NULL propagation.  `AND`/`OR` need
/// short-circuiting over unevaluated operands and are handled by the caller.
pub(crate) fn apply_binary(l: &Value, op: BinaryOp, r: &Value) -> Result<Value, SqlError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            arithmetic(l, op, r)
        }
        BinaryOp::Eq => Ok(Value::Bool(l.sql_eq(r))),
        BinaryOp::NotEq => Ok(Value::Bool(!l.sql_eq(r))),
        BinaryOp::Lt => Ok(Value::Bool(l.total_cmp(r) == std::cmp::Ordering::Less)),
        BinaryOp::LtEq => Ok(Value::Bool(l.total_cmp(r) != std::cmp::Ordering::Greater)),
        BinaryOp::Gt => Ok(Value::Bool(l.total_cmp(r) == std::cmp::Ordering::Greater)),
        BinaryOp::GtEq => Ok(Value::Bool(l.total_cmp(r) != std::cmp::Ordering::Less)),
        BinaryOp::BitAnd | BinaryOp::BitOr => {
            let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) else {
                return Err(SqlError::Execution(format!(
                    "bitwise operator {op} needs integer operands, got {l} and {r}"
                )));
            };
            Ok(Value::Int(if op == BinaryOp::BitAnd {
                a & b
            } else {
                a | b
            }))
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("logical operators are handled by callers"),
    }
}

/// `BETWEEN` over already-evaluated operands: NULL anywhere is unknown,
/// otherwise an inclusive [`Value::total_cmp`] range check.
pub(crate) fn between_value(v: &Value, lo: &Value, hi: &Value, negated: bool) -> Value {
    if v.is_null() || lo.is_null() || hi.is_null() {
        return Value::Null;
    }
    let within = v.total_cmp(lo) != std::cmp::Ordering::Less
        && v.total_cmp(hi) != std::cmp::Ordering::Greater;
    Value::Bool(within != negated)
}

fn arithmetic(l: &Value, op: BinaryOp, r: &Value) -> Result<Value, SqlError> {
    // String concatenation with '+' (T-SQL style).
    if op == BinaryOp::Add {
        if let (Value::Str(a), b) = (l, r) {
            return Ok(Value::str(format!("{a}{b}")));
        }
        if let (a, Value::Str(b)) = (l, r) {
            return Ok(Value::str(format!("{a}{b}")));
        }
    }
    let both_int = matches!((l, r), (Value::Int(_), Value::Int(_)));
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Err(SqlError::Execution(format!(
            "arithmetic operator {op} needs numeric operands, got {l} and {r}"
        )));
    };
    if both_int && op != BinaryOp::Div {
        let (a, b) = (l.as_i64().unwrap(), r.as_i64().unwrap());
        let out = match op {
            BinaryOp::Add => a.wrapping_add(b),
            BinaryOp::Sub => a.wrapping_sub(b),
            BinaryOp::Mul => a.wrapping_mul(b),
            BinaryOp::Mod => {
                if b == 0 {
                    return Err(SqlError::Execution("integer modulo by zero".into()));
                }
                a % b
            }
            _ => unreachable!(),
        };
        return Ok(Value::Int(out));
    }
    let out = match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => {
            if b == 0.0 {
                return Err(SqlError::Execution("division by zero".into()));
            }
            a / b
        }
        BinaryOp::Mod => {
            if b == 0.0 {
                return Err(SqlError::Execution("modulo by zero".into()));
            }
            a % b
        }
        _ => unreachable!(),
    };
    Ok(Value::Float(out))
}

/// SQL `LIKE` pattern matching: `%` matches any run of characters, `_`
/// matches exactly one.  Matching is case-insensitive (SQL Server default
/// collation).
///
/// One-shot convenience over [`crate::exec::compile::LikeMatcher`], which
/// parses the pattern into `%`-separated segments once and matches in
/// O(text x pattern) — pathological patterns like `a%a%a%...%b` cannot
/// trigger the exponential retry a naive recursive matcher suffers.  Hot
/// paths (compiled predicates) build the matcher once per query instead.
pub fn like_match(text: &str, pattern: &str) -> bool {
    crate::exec::compile::LikeMatcher::new(pattern).matches(text)
}

/// Infer the output type of an expression against a schema (best effort,
/// used for `CREATE TABLE ... INTO` and result metadata).
pub fn infer_type(expr: &Expr) -> DataType {
    match expr {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Float),
        Expr::Binary { op, .. } => match op {
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq
            | BinaryOp::And
            | BinaryOp::Or => DataType::Bool,
            BinaryOp::BitAnd | BinaryOp::BitOr => DataType::Int,
            _ => DataType::Float,
        },
        Expr::Function { name, .. } => match name.to_ascii_lowercase().as_str() {
            "count" => DataType::Int,
            "str" | "upper" | "lower" | "substring" => DataType::Str,
            _ => DataType::Float,
        },
        Expr::Between { .. } | Expr::InList { .. } | Expr::IsNull { .. } | Expr::Like { .. } => {
            DataType::Bool
        }
        Expr::Cast { ty, .. } => *ty,
        _ => DataType::Float,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn ctx<'a>(
        schema: &'a RowSchema,
        vars: &'a HashMap<String, Value>,
        funcs: &'a FunctionRegistry,
    ) -> EvalContext<'a> {
        EvalContext {
            schema,
            variables: vars,
            functions: funcs,
            aggregates: None,
        }
    }

    fn eval_where(sql_where: &str, schema: &RowSchema, row: &[Value]) -> Value {
        let stmt = parse_select(&format!("select * from t where {sql_where}")).unwrap();
        let vars = HashMap::new();
        let funcs = FunctionRegistry::new();
        eval(&stmt.selection.unwrap(), row, &ctx(schema, &vars, &funcs)).unwrap()
    }

    #[test]
    fn column_resolution_qualified_and_not() {
        let schema = RowSchema::new(vec![
            (Some("r".into()), "run".into()),
            (Some("g".into()), "run".into()),
            (None, "objID".into()),
        ]);
        assert_eq!(schema.resolve(Some("g"), "run").unwrap(), 1);
        assert_eq!(schema.resolve(None, "objid").unwrap(), 2);
        assert!(schema.resolve(None, "run").is_err(), "ambiguous");
        assert!(schema.resolve(Some("x"), "run").is_err(), "unknown alias");
        assert!(schema.can_resolve(Some("r"), "RUN"));
    }

    #[test]
    fn arithmetic_and_comparison() {
        let schema = RowSchema::for_table(None, &["rowv", "colv"]);
        let row = vec![Value::Float(10.0), Value::Float(20.0)];
        assert_eq!(
            eval_where("rowv*rowv + colv*colv between 50 and 1000", &schema, &row),
            Value::Bool(true)
        );
        assert_eq!(eval_where("rowv > colv", &schema, &row), Value::Bool(false));
        assert_eq!(
            eval_where("rowv + 5 = 15", &schema, &row),
            Value::Bool(true)
        );
        assert_eq!(
            eval_where("rowv / 4 = 2.5", &schema, &row),
            Value::Bool(true)
        );
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let schema = RowSchema::for_table(None, &["a", "b"]);
        let row = vec![Value::Int(7), Value::Int(3)];
        let stmt = parse_select("select a * b + 1 from t").unwrap();
        let vars = HashMap::new();
        let funcs = FunctionRegistry::new();
        let c = ctx(&schema, &vars, &funcs);
        if let crate::ast::SelectItem::Expr { expr, .. } = &stmt.projections[0] {
            assert_eq!(eval(expr, &row, &c).unwrap(), Value::Int(22));
        } else {
            panic!()
        }
        assert_eq!(eval_where("a % b = 1", &schema, &row), Value::Bool(true));
    }

    #[test]
    fn bitwise_flag_test() {
        let schema = RowSchema::for_table(None, &["flags"]);
        let row = vec![Value::Int(0b1010)];
        assert_eq!(
            eval_where("(flags & 2) = 0", &schema, &row),
            Value::Bool(false)
        );
        assert_eq!(
            eval_where("(flags & 4) = 0", &schema, &row),
            Value::Bool(true)
        );
        assert_eq!(
            eval_where("(flags | 1) = 11", &schema, &row),
            Value::Bool(true)
        );
    }

    #[test]
    fn three_valued_logic() {
        let schema = RowSchema::for_table(None, &["a"]);
        let row = vec![Value::Null];
        assert_eq!(eval_where("a > 1 and 1 = 1", &schema, &row), Value::Null);
        assert_eq!(
            eval_where("a > 1 and 1 = 2", &schema, &row),
            Value::Bool(false)
        );
        assert_eq!(
            eval_where("a > 1 or 1 = 1", &schema, &row),
            Value::Bool(true)
        );
        assert_eq!(eval_where("a is null", &schema, &row), Value::Bool(true));
        assert_eq!(
            eval_where("a is not null", &schema, &row),
            Value::Bool(false)
        );
        assert_eq!(eval_where("not a > 1", &schema, &row), Value::Null);
    }

    #[test]
    fn in_list_and_case() {
        let schema = RowSchema::for_table(None, &["type"]);
        let row = vec![Value::Int(3)];
        assert_eq!(
            eval_where("type in (3, 6)", &schema, &row),
            Value::Bool(true)
        );
        assert_eq!(
            eval_where("type not in (3, 6)", &schema, &row),
            Value::Bool(false)
        );
        let stmt = parse_select("select case when type = 3 then 'galaxy' else 'other' end from t")
            .unwrap();
        let vars = HashMap::new();
        let funcs = FunctionRegistry::new();
        let c = ctx(&schema, &vars, &funcs);
        if let crate::ast::SelectItem::Expr { expr, .. } = &stmt.projections[0] {
            assert_eq!(eval(expr, &row, &c).unwrap(), Value::str("galaxy"));
        }
    }

    #[test]
    fn like_matching() {
        assert!(like_match("NGC1234", "ngc%"));
        assert!(like_match("skyserver", "%server"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("anything", "%"));
        assert!(!like_match("", "_"));
        let schema = RowSchema::for_table(None, &["name"]);
        let row = vec![Value::str("M64")];
        assert_eq!(
            eval_where("name like 'm%'", &schema, &row),
            Value::Bool(true)
        );
    }

    #[test]
    fn functions_and_variables() {
        let schema = RowSchema::for_table(None, &["rowv", "colv"]);
        let row = vec![Value::Float(3.0), Value::Float(4.0)];
        let mut vars = HashMap::new();
        vars.insert("limit".to_string(), Value::Float(4.5));
        let funcs = FunctionRegistry::new();
        let c = EvalContext {
            schema: &schema,
            variables: &vars,
            functions: &funcs,
            aggregates: None,
        };
        let stmt =
            parse_select("select sqrt(rowv*rowv + colv*colv) from t where sqrt(rowv) < @limit")
                .unwrap();
        if let crate::ast::SelectItem::Expr { expr, .. } = &stmt.projections[0] {
            assert_eq!(eval(expr, &row, &c).unwrap(), Value::Float(5.0));
        }
        assert_eq!(
            eval(&stmt.selection.unwrap(), &row, &c).unwrap(),
            Value::Bool(true)
        );
        // Unknown variable errors.
        let bad = parse_select("select * from t where rowv < @missing").unwrap();
        assert!(eval(&bad.selection.unwrap(), &row, &c).is_err());
    }

    #[test]
    fn unknown_function_is_reported() {
        let schema = RowSchema::for_table(None, &["x"]);
        let row = vec![Value::Int(1)];
        let vars = HashMap::new();
        let funcs = FunctionRegistry::new();
        let c = ctx(&schema, &vars, &funcs);
        let stmt = parse_select("select dbo.fNoSuchThing(x) from t").unwrap();
        if let crate::ast::SelectItem::Expr { expr, .. } = &stmt.projections[0] {
            assert!(matches!(
                eval(expr, &row, &c),
                Err(SqlError::UnknownFunction(_))
            ));
        }
    }

    #[test]
    fn string_concatenation() {
        let schema = RowSchema::for_table(None, &["objid"]);
        let row = vec![Value::Int(42)];
        let vars = HashMap::new();
        let funcs = FunctionRegistry::new();
        let c = ctx(&schema, &vars, &funcs);
        let stmt = parse_select("select 'http://skyserver/expid=' + str(objid) from t").unwrap();
        if let crate::ast::SelectItem::Expr { expr, .. } = &stmt.projections[0] {
            assert_eq!(
                eval(expr, &row, &c).unwrap(),
                Value::str("http://skyserver/expid=42")
            );
        }
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let schema = RowSchema::for_table(None, &["a"]);
        let row = vec![Value::Int(1)];
        let vars = HashMap::new();
        let funcs = FunctionRegistry::new();
        let c = ctx(&schema, &vars, &funcs);
        let stmt = parse_select("select a / 0 from t").unwrap();
        if let crate::ast::SelectItem::Expr { expr, .. } = &stmt.projections[0] {
            assert!(eval(expr, &row, &c).is_err());
        }
    }

    #[test]
    fn type_inference() {
        let stmt =
            parse_select("select count(*), a > 1, a & 2, sqrt(a), cast(a as varchar) from t")
                .unwrap();
        let types: Vec<DataType> = stmt
            .projections
            .iter()
            .map(|p| match p {
                crate::ast::SelectItem::Expr { expr, .. } => infer_type(expr),
                _ => panic!(),
            })
            .collect();
        assert_eq!(
            types,
            vec![
                DataType::Int,
                DataType::Bool,
                DataType::Int,
                DataType::Float,
                DataType::Str
            ]
        );
    }
}
