//! Error type for the SQL layer.

use skyserver_storage::StorageError;
use std::fmt;

/// Errors raised while parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexing/parsing failure.
    Parse(String),
    /// Binder/planner failure (unknown table, ambiguous column, ...).
    Plan(String),
    /// Runtime failure (type error in an expression, bad function args, ...).
    Execution(String),
    /// Underlying storage failure.
    Storage(StorageError),
    /// A public-interface limit was hit (row budget or time budget, §4:
    /// "The public SkyServer limits queries to 1,000 records or 30 seconds
    /// of computation").
    LimitExceeded(String),
    /// Unknown scalar or table-valued function.
    UnknownFunction(String),
    /// `AS OF` (or the web tier's `?release=`) named a release that is not
    /// in the engine's release catalog.
    UnknownRelease(String),
    /// A write statement (DML, DDL, `SELECT ... INTO`) reached the shared
    /// read-only query path.
    ReadOnly(String),
    /// The query's [`crate::QueryMonitor`] was cancelled while it ran; the
    /// executor stopped at the next row-batch boundary.
    Cancelled,
    /// The query tried to materialize more bytes than its
    /// [`crate::QueryLimits::max_bytes`] memory budget allows (hash-join
    /// build, GROUP BY table, sort buffer or result accumulation).  The
    /// governor raises this instead of letting one hostile query OOM the
    /// whole server.
    ResourceExhausted(String),
}

impl SqlError {
    /// A stable, machine-readable error code for this error class.
    ///
    /// The web tier's `/api/v1` error envelope exposes these codes to
    /// programmatic clients, so they are part of the public contract: a
    /// code, once published, keeps its meaning.  (The human-readable
    /// [`fmt::Display`] message may change freely.)
    pub fn code(&self) -> &'static str {
        match self {
            SqlError::Parse(_) => "sql_parse_error",
            SqlError::Plan(_) => "sql_plan_error",
            SqlError::Execution(_) => "sql_execution_error",
            SqlError::Storage(_) => "storage_error",
            // The row budget truncates (flagged, not an error); the limits
            // that raise are the wall-clock computation budget (here) and
            // the memory budget (ResourceExhausted below).
            SqlError::LimitExceeded(_) => "query_timeout",
            SqlError::UnknownFunction(_) => "sql_unknown_function",
            SqlError::UnknownRelease(_) => "unknown_release",
            SqlError::ReadOnly(_) => "read_only",
            SqlError::Cancelled => "query_cancelled",
            SqlError::ResourceExhausted(_) => "resource_exhausted",
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "SQL parse error: {m}"),
            SqlError::Plan(m) => write!(f, "SQL planning error: {m}"),
            SqlError::Execution(m) => write!(f, "SQL execution error: {m}"),
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
            SqlError::LimitExceeded(m) => write!(f, "query limit exceeded: {m}"),
            SqlError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            SqlError::UnknownRelease(r) => write!(f, "unknown release {r}"),
            SqlError::ReadOnly(m) => {
                write!(f, "read-only interface: {m} is not allowed here")
            }
            SqlError::Cancelled => write!(f, "query cancelled"),
            SqlError::ResourceExhausted(m) => {
                write!(f, "query memory budget exhausted: {m}")
            }
        }
    }
}

impl std::error::Error for SqlError {}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(SqlError::Parse("x".into()).to_string().contains("parse"));
        assert!(SqlError::LimitExceeded("1000 rows".into())
            .to_string()
            .contains("limit"));
        let s: SqlError = StorageError::UnknownTable("t".into()).into();
        assert!(s.to_string().contains("t"));
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(SqlError::Parse("x".into()).code(), "sql_parse_error");
        assert_eq!(SqlError::LimitExceeded("t".into()).code(), "query_timeout");
        assert_eq!(SqlError::ReadOnly("drop".into()).code(), "read_only");
        assert_eq!(SqlError::Cancelled.code(), "query_cancelled");
        assert_eq!(
            SqlError::UnknownRelease("dr9".into()).code(),
            "unknown_release"
        );
        assert_eq!(
            SqlError::ResourceExhausted("64 MiB".into()).code(),
            "resource_exhausted"
        );
    }
}
