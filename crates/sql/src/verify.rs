//! Static plan/program verification — the engine's analogue of LLVM's IR
//! verifier.
//!
//! [`verify_plan`] walks a finalized [`SelectPlan`] and structurally checks
//! every invariant the compiled/vectorized executors rely on but never
//! re-validate at runtime:
//!
//! * **Ordinal bounds** — every [`CompiledExpr`] program references only
//!   columns that exist in the exact runtime row layout it will be evaluated
//!   against, including the index-lookup-join corner where the inner side
//!   keeps its *full heap schema* regardless of its planned access path.
//! * **Schema arithmetic** — the combined `input_schema` equals the join of
//!   the planned source schemas, accumulated step by step.
//! * **Zone-constraint soundness** — declared [`ZoneConstraint`]s name real
//!   columns of compatible types, require a fully *total* pushed predicate,
//!   and are never stricter than what re-derivation from that predicate
//!   yields (a stricter interval could skip segments holding matching rows).
//! * **Scan-column coverage** — the columns compiled programs actually read
//!   from a base-table source are a subset of the annotated per-alias
//!   scan-column union that byte accounting and `BatchProgram` construction
//!   consume.
//! * **Plan-shape consistency** — `rules_fired` agrees with the physical
//!   shape (e.g. a `limit_hint` appears only on base-table scans and only
//!   when `limit_pushdown` fired).
//!
//! The pass runs automatically after planner finalization in debug builds,
//! on demand via [`crate::SqlEngine::set_plan_verification`], and is exposed
//! to users as `EXPLAIN VERIFY <select>`.

use crate::exec::compile::{CompiledExpr, SortKey};
use crate::expr::RowSchema;
use crate::plan::{AccessPath, SelectPlan, SourceKind, SourcePlan, ZoneConstraint};
use crate::planner::annotate;
use skyserver_storage::{DataType, Database, TableSchema, Value};
use std::cmp::Ordering;
use std::fmt;

/// The structural invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A compiled program references a column ordinal outside the runtime
    /// row layout it executes against.
    OrdinalOutOfRange,
    /// The combined `input_schema` disagrees with the join of the planned
    /// source schemas.
    SchemaWidthMismatch,
    /// A compiled-program vector's length disagrees with the plan structure
    /// it parallels, or a program exists for a slot the plan does not have.
    ProgramArityMismatch,
    /// A declared zone constraint could prune a segment that contains
    /// satisfying rows (bad ordinal/type, non-total predicate, or an
    /// interval stricter than the pushed predicate implies).
    ZoneConstraintUnsound,
    /// A compiled program reads a base-table column missing from the
    /// annotated scan-column union byte accounting charges.
    ScanColumnNotCovered,
    /// `rules_fired`, annotations or hints disagree with the physical plan
    /// shape.
    PlanShapeInconsistent,
    /// A cardinality annotation is impossible (a base-table estimate above
    /// the table's live row count) or the annotation pass left holes.
    EstimateUnsound,
    /// The plan pins its scans to a release that is not in the engine's
    /// release catalog — executing it would read a snapshot that does not
    /// exist.
    UnknownRelease,
}

impl ViolationKind {
    /// Stable lowercase identifier (tests and EXPLAIN VERIFY output).
    pub fn as_str(&self) -> &'static str {
        match self {
            ViolationKind::OrdinalOutOfRange => "ordinal_out_of_range",
            ViolationKind::SchemaWidthMismatch => "schema_width_mismatch",
            ViolationKind::ProgramArityMismatch => "program_arity_mismatch",
            ViolationKind::ZoneConstraintUnsound => "zone_constraint_unsound",
            ViolationKind::ScanColumnNotCovered => "scan_column_not_covered",
            ViolationKind::PlanShapeInconsistent => "plan_shape_inconsistent",
            ViolationKind::EstimateUnsound => "estimate_unsound",
            ViolationKind::UnknownRelease => "unknown_release",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structural violation found by [`verify_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant is broken.
    pub kind: ViolationKind,
    /// Where in the plan (e.g. `sources[1].zone_constraints[0]`).
    pub site: String,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.site, self.detail)
    }
}

/// The outcome of verifying one plan (including its derived sub-plans).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// Number of compiled expression programs inspected.
    pub programs_checked: usize,
    /// Number of individual structural checks performed.
    pub checks_run: usize,
    /// Violations found; empty for a well-formed plan.
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The one-line success summary `EXPLAIN VERIFY` prints.
    pub fn summary(&self) -> String {
        format!(
            "plan verified: {} programs, {} checks",
            self.programs_checked, self.checks_run
        )
    }

    /// All violations, one per line (error messages).
    pub fn render_violations(&self) -> String {
        self.violations
            .iter()
            .map(Violation::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Verify a finalized plan against `db`. Walks derived sub-plans too.
/// Release pins are not checked (no catalog in scope); callers that know
/// the published releases use [`verify_plan_with_releases`].
pub fn verify_plan(plan: &SelectPlan, db: &Database) -> VerifyReport {
    verify_plan_with_releases(plan, db, None)
}

/// Verify a finalized plan against `db`, additionally checking that any
/// release the plan is pinned to exists in `releases` (the engine's release
/// catalog).  `None` skips the release check.
pub fn verify_plan_with_releases(
    plan: &SelectPlan,
    db: &Database,
    releases: Option<&[String]>,
) -> VerifyReport {
    let mut v = Verifier {
        db,
        releases,
        report: VerifyReport::default(),
    };
    v.verify(plan, "");
    v.report
}

struct Verifier<'a> {
    db: &'a Database,
    releases: Option<&'a [String]>,
    report: VerifyReport,
}

impl Verifier<'_> {
    fn violation(&mut self, kind: ViolationKind, site: String, detail: String) {
        self.report
            .violations
            .push(Violation { kind, site, detail });
    }

    fn check(
        &mut self,
        ok: bool,
        kind: ViolationKind,
        site: &str,
        detail: impl FnOnce() -> String,
    ) {
        self.report.checks_run += 1;
        if !ok {
            self.violation(kind, site.to_string(), detail());
        }
    }

    fn verify(&mut self, plan: &SelectPlan, prefix: &str) {
        self.check_release(plan, prefix);
        self.check_join_count(plan, prefix);
        self.check_input_schema(plan, prefix);
        self.check_sources(plan, prefix);
        self.check_estimates(plan, prefix);
        self.check_programs(plan, prefix);
        for (i, source) in plan.sources.iter().enumerate() {
            if let SourceKind::Derived { plan: sub } = &source.kind {
                self.verify(sub, &format!("{prefix}sources[{i}].derived."));
            }
        }
    }

    /// A pinned release must exist in the catalog the caller handed us.
    fn check_release(&mut self, plan: &SelectPlan, prefix: &str) {
        let (Some(pinned), Some(known)) = (&plan.release, self.releases) else {
            return;
        };
        self.check(
            known.iter().any(|r| r.eq_ignore_ascii_case(pinned)),
            ViolationKind::UnknownRelease,
            &format!("{prefix}release"),
            || {
                format!(
                    "plan is pinned to release {pinned} which is not in the \
                     catalog ({})",
                    if known.is_empty() {
                        "no releases published".to_string()
                    } else {
                        known.join(", ")
                    }
                )
            },
        );
    }

    /// `joins[i]` connects `sources[i + 1]`; the counts must agree.
    fn check_join_count(&mut self, plan: &SelectPlan, prefix: &str) {
        let expected = plan.sources.len().saturating_sub(1);
        self.check(
            plan.joins.len() == expected,
            ViolationKind::PlanShapeInconsistent,
            &format!("{prefix}joins"),
            || {
                format!(
                    "{} sources need {} join steps, plan has {}",
                    plan.sources.len(),
                    expected,
                    plan.joins.len()
                )
            },
        );
    }

    /// Check (b): left width + right width accumulates to `input_schema`.
    fn check_input_schema(&mut self, plan: &SelectPlan, prefix: &str) {
        let mut planned = RowSchema::default();
        for (i, source) in plan.sources.iter().enumerate() {
            planned = planned.join(&source.schema);
            let prefix_width = planned.len();
            self.check(
                plan.input_schema.len() >= prefix_width,
                ViolationKind::SchemaWidthMismatch,
                &format!("{prefix}input_schema"),
                || {
                    format!(
                        "sources[0..={i}] contribute {prefix_width} columns but \
                         input_schema has only {}",
                        plan.input_schema.len()
                    )
                },
            );
        }
        self.check(
            plan.input_schema == planned,
            ViolationKind::SchemaWidthMismatch,
            &format!("{prefix}input_schema"),
            || {
                format!(
                    "input_schema ({} columns) is not the join of the planned \
                     source schemas ({} columns)",
                    plan.input_schema.len(),
                    planned.len()
                )
            },
        );
    }

    /// Checks (c) and the per-source half of (e): zone constraints, scan
    /// columns, limit hints, access-path/rule agreement.
    fn check_sources(&mut self, plan: &SelectPlan, prefix: &str) {
        for (i, source) in plan.sources.iter().enumerate() {
            let site = format!("{prefix}sources[{i}]");
            match &source.kind {
                SourceKind::Table { table, path } => {
                    if let AccessPath::ParallelHeapScan { .. } = path {
                        self.check(
                            plan.rules_fired.contains(&"parallel_scan_fallback"),
                            ViolationKind::PlanShapeInconsistent,
                            &site,
                            || {
                                "parallel heap scan without parallel_scan_fallback \
                                 in rules_fired"
                                    .to_string()
                            },
                        );
                    }
                    let Ok(t) = self.db.table(table) else {
                        self.violation(
                            ViolationKind::PlanShapeInconsistent,
                            site,
                            format!("source table {table} does not exist"),
                        );
                        continue;
                    };
                    let schema = t.schema().clone();
                    self.check_zone_constraints(source, &schema, &site);
                    if let Some(cols) = &source.scan_columns {
                        for (c, ordinal) in cols.iter().enumerate() {
                            self.check(
                                *ordinal < schema.columns().len(),
                                ViolationKind::OrdinalOutOfRange,
                                &format!("{site}.scan_columns[{c}]"),
                                || {
                                    format!(
                                        "storage ordinal {ordinal} out of range for \
                                         {table} ({} columns)",
                                        schema.columns().len()
                                    )
                                },
                            );
                        }
                    }
                }
                _ => {
                    self.check(
                        source.zone_constraints.is_empty(),
                        ViolationKind::PlanShapeInconsistent,
                        &site,
                        || "zone constraints on a non-base-table source".to_string(),
                    );
                    self.check(
                        source.scan_columns.is_none(),
                        ViolationKind::PlanShapeInconsistent,
                        &site,
                        || "scan columns annotated on a non-base-table source".to_string(),
                    );
                    self.check(
                        source.limit_hint.is_none(),
                        ViolationKind::PlanShapeInconsistent,
                        &site,
                        || "limit hint on a non-base-table source".to_string(),
                    );
                }
            }
            if source.limit_hint.is_some() {
                self.check(
                    plan.rules_fired.contains(&"limit_pushdown"),
                    ViolationKind::PlanShapeInconsistent,
                    &site,
                    || "limit hint without limit_pushdown in rules_fired".to_string(),
                );
            }
        }
    }

    /// Cardinality annotations: when the statistics pass stamped the plan
    /// (`plan.est_rows` present) it must have stamped *every* node, and a
    /// base-table estimate can never exceed the table's live row count (the
    /// model clamps at the base cardinality — a larger number means the
    /// annotation drifted from the plan it describes).
    fn check_estimates(&mut self, plan: &SelectPlan, prefix: &str) {
        if plan.est_rows.is_none() {
            // Unannotated plan (e.g. constructed directly in tests): the
            // absence of per-node estimates is consistent.
            return;
        }
        for (i, source) in plan.sources.iter().enumerate() {
            let site = format!("{prefix}sources[{i}]");
            let Some(est) = source.est_rows else {
                self.violation(
                    ViolationKind::EstimateUnsound,
                    site,
                    "plan is annotated but this source carries no est_rows".to_string(),
                );
                continue;
            };
            if let SourceKind::Table { table, .. } = &source.kind {
                if let Ok(t) = self.db.table(table) {
                    let rows = t.row_count() as u64;
                    self.check(
                        est <= rows.max(1),
                        ViolationKind::EstimateUnsound,
                        &site,
                        || {
                            format!(
                                "base-table estimate {est} exceeds {table}'s live \
                                 row count {rows}"
                            )
                        },
                    );
                }
            }
        }
        for (i, step) in plan.joins.iter().enumerate() {
            self.check(
                step.est_rows.is_some(),
                ViolationKind::EstimateUnsound,
                &format!("{prefix}joins[{i}]"),
                || "plan is annotated but this join step carries no est_rows".to_string(),
            );
        }
    }

    /// Check (c): every declared zone constraint must be satisfiable-set
    /// preserving — bad ordinals, type mismatches, non-total predicates or
    /// intervals stricter than re-derivation yields are all unsound.
    fn check_zone_constraints(&mut self, source: &SourcePlan, schema: &TableSchema, site: &str) {
        if source.zone_constraints.is_empty() {
            return;
        }
        let zsite = format!("{site}.zone_constraints");
        let Some(pred) = &source.pushed_predicate else {
            self.violation(
                ViolationKind::ZoneConstraintUnsound,
                zsite,
                "zone constraints declared without a pushed predicate".to_string(),
            );
            return;
        };
        self.check(
            pred.conjuncts()
                .iter()
                .all(|c| annotate::is_total(c, &source.alias, schema)),
            ViolationKind::ZoneConstraintUnsound,
            &zsite,
            || {
                "zone constraints declared but a pushed conjunct is not total \
                 (pruning could suppress an execution error)"
                    .to_string()
            },
        );
        let derived = annotate::zone_constraints(pred, &source.alias, schema);
        for (z, constraint) in source.zone_constraints.iter().enumerate() {
            let csite = format!("{site}.zone_constraints[{z}]");
            self.report.checks_run += 1;
            if constraint.ordinal >= schema.columns().len() {
                self.violation(
                    ViolationKind::OrdinalOutOfRange,
                    csite,
                    format!(
                        "constraint ordinal {} out of range ({} columns)",
                        constraint.ordinal,
                        schema.columns().len()
                    ),
                );
                continue;
            }
            let col = &schema.columns()[constraint.ordinal];
            self.check(
                col.name == constraint.column,
                ViolationKind::ZoneConstraintUnsound,
                &csite,
                || {
                    format!(
                        "constraint names column {} but ordinal {} is {}",
                        constraint.column, constraint.ordinal, col.name
                    )
                },
            );
            for (value, _) in constraint.low.iter().chain(constraint.high.iter()) {
                self.check(
                    bound_type_compatible(value, col.ty),
                    ViolationKind::ZoneConstraintUnsound,
                    &csite,
                    || {
                        format!(
                            "bound {value} is type-incompatible with {} column {}",
                            col.ty, col.name
                        )
                    },
                );
            }
            match derived.iter().find(|d| d.ordinal == constraint.ordinal) {
                None => self.violation(
                    ViolationKind::ZoneConstraintUnsound,
                    csite,
                    format!(
                        "pushed predicate implies no interval for column {}",
                        constraint.column
                    ),
                ),
                Some(d) => {
                    self.check(
                        !bound_stricter(&constraint.low, &d.low, Ordering::Greater),
                        ViolationKind::ZoneConstraintUnsound,
                        &csite,
                        || stricter_detail(constraint, d, "lower"),
                    );
                    self.check(
                        !bound_stricter(&constraint.high, &d.high, Ordering::Less),
                        ViolationKind::ZoneConstraintUnsound,
                        &csite,
                        || stricter_detail(constraint, d, "upper"),
                    );
                }
            }
        }
    }

    /// Checks (a), (d) and the program half of the arity checks: reconstruct
    /// the executor's runtime row layouts exactly as program compilation did
    /// and bound every compiled ordinal against them.
    fn check_programs(&mut self, plan: &SelectPlan, prefix: &str) {
        self.check(
            !plan.vectorized || plan.programs.is_some(),
            ViolationKind::PlanShapeInconsistent,
            &format!("{prefix}vectorized"),
            || "vectorized execution requested without compiled programs".to_string(),
        );
        let Some(programs) = &plan.programs else {
            return;
        };
        let site = |s: &str| format!("{prefix}programs.{s}");

        // Arity: program vectors parallel the plan structure.
        let arity: [(&str, usize, usize); 4] = [
            (
                "source_predicates",
                programs.source_predicates.len(),
                plan.sources.len(),
            ),
            (
                "join_outer_keys",
                programs.join_outer_keys.len(),
                plan.joins.len(),
            ),
            (
                "join_hash_keys",
                programs.join_hash_keys.len(),
                plan.joins.len(),
            ),
            (
                "join_residuals",
                programs.join_residuals.len(),
                plan.joins.len(),
            ),
        ];
        for (name, got, want) in arity {
            self.check(
                got == want,
                ViolationKind::ProgramArityMismatch,
                &site(name),
                || format!("{got} programs for {want} plan slots"),
            );
        }
        if let Some(p) = &programs.projections {
            let (got, want) = (p.len(), plan.projections.len());
            self.check(
                got == want,
                ViolationKind::ProgramArityMismatch,
                &site("projections"),
                || format!("{got} programs for {want} projections"),
            );
        }
        if let Some(g) = &programs.group_by {
            let (got, want) = (g.len(), plan.group_by.len());
            self.check(
                got == want,
                ViolationKind::ProgramArityMismatch,
                &site("group_by"),
                || format!("{got} programs for {want} group-by keys"),
            );
        }
        if let Some(o) = &programs.order_by {
            let (got, want) = (o.len(), plan.order_by.len());
            self.check(
                got == want,
                ViolationKind::ProgramArityMismatch,
                &site("order_by"),
                || format!("{got} sort keys for {want} order-by items"),
            );
        }
        self.check(
            programs.having.is_none() || plan.having.is_some(),
            ViolationKind::ProgramArityMismatch,
            &site("having"),
            || "compiled HAVING program but the plan has no HAVING".to_string(),
        );
        self.check(
            programs.residual.is_none() || plan.residual.is_some(),
            ViolationKind::ProgramArityMismatch,
            &site("residual"),
            || "compiled residual program but the plan has no residual".to_string(),
        );

        // Reconstruct the runtime row layouts the executor will hand each
        // program — per-source predicate schemas and the accumulated
        // combined schema before/after each join (index-lookup joins fetch
        // whole heap rows on the inner side).
        let mut pred_schemas: Vec<RowSchema> = Vec::with_capacity(plan.sources.len());
        let mut combined = RowSchema::default();
        for (i, source) in plan.sources.iter().enumerate() {
            let runtime = if i > 0
                && matches!(
                    plan.joins.get(i - 1).map(|j| &j.strategy),
                    Some(crate::plan::JoinStrategy::IndexLookup { .. })
                ) {
                crate::planner::full_table_schema(source, self.db)
            } else {
                crate::planner::exec_source_schema(source, self.db)
            };
            let Some(runtime) = runtime else {
                self.violation(
                    ViolationKind::PlanShapeInconsistent,
                    format!("{prefix}sources[{i}]"),
                    "runtime schema of the source cannot be derived".to_string(),
                );
                return;
            };
            combined = combined.join(&runtime);
            pred_schemas.push(runtime);
        }
        let offsets: Vec<usize> = pred_schemas
            .iter()
            .scan(0usize, |acc, s| {
                let start = *acc;
                *acc += s.len();
                Some(start)
            })
            .collect();

        // Scan-column unions, translated to storage ordinals per source.
        let scan_unions: Vec<Option<(TableSchema, Vec<usize>)>> = plan
            .sources
            .iter()
            .map(|s| match (&s.kind, &s.scan_columns) {
                (SourceKind::Table { table, .. }, Some(cols)) => self
                    .db
                    .table(table)
                    .ok()
                    .map(|t| (t.schema().clone(), cols.clone())),
                _ => None,
            })
            .collect();

        let ctx = ProgramContext {
            pred_schemas,
            combined,
            offsets,
            scan_unions,
        };

        for (i, p) in programs.source_predicates.iter().enumerate() {
            if let Some(p) = p {
                self.check(
                    plan.sources
                        .get(i)
                        .is_some_and(|s| s.pushed_predicate.is_some()),
                    ViolationKind::ProgramArityMismatch,
                    &site(&format!("source_predicates[{i}]")),
                    || "compiled predicate for a source with none pushed".to_string(),
                );
                self.check_expr_source(p, i, &ctx, &site(&format!("source_predicates[{i}]")));
            }
        }
        for (i, step) in plan.joins.iter().enumerate() {
            use crate::plan::JoinStrategy;
            let outer_width = ctx
                .offsets
                .get(i + 1)
                .copied()
                .unwrap_or(ctx.combined.len());
            if let Some(Some(k)) = programs.join_outer_keys.get(i) {
                self.check(
                    matches!(step.strategy, JoinStrategy::IndexLookup { .. }),
                    ViolationKind::ProgramArityMismatch,
                    &site(&format!("join_outer_keys[{i}]")),
                    || "outer-key program on a non-index-lookup join".to_string(),
                );
                self.check_expr_combined(
                    k,
                    outer_width,
                    &ctx,
                    &site(&format!("join_outer_keys[{i}]")),
                );
            }
            if let Some(Some((outer, inner))) = programs.join_hash_keys.get(i) {
                match &step.strategy {
                    JoinStrategy::Hash {
                        outer_keys,
                        inner_keys,
                    } => {
                        self.check(
                            outer.len() == outer_keys.len() && inner.len() == inner_keys.len(),
                            ViolationKind::ProgramArityMismatch,
                            &site(&format!("join_hash_keys[{i}]")),
                            || {
                                format!(
                                    "{}/{} compiled keys for {}/{} plan keys",
                                    outer.len(),
                                    inner.len(),
                                    outer_keys.len(),
                                    inner_keys.len()
                                )
                            },
                        );
                    }
                    _ => self.violation(
                        ViolationKind::ProgramArityMismatch,
                        site(&format!("join_hash_keys[{i}]")),
                        "hash-key programs on a non-hash join".to_string(),
                    ),
                }
                for (k, key) in outer.iter().enumerate() {
                    self.check_expr_combined(
                        key,
                        outer_width,
                        &ctx,
                        &site(&format!("join_hash_keys[{i}].outer[{k}]")),
                    );
                }
                for (k, key) in inner.iter().enumerate() {
                    self.check_expr_source(
                        key,
                        i + 1,
                        &ctx,
                        &site(&format!("join_hash_keys[{i}].inner[{k}]")),
                    );
                }
            }
            if let Some(Some(r)) = programs.join_residuals.get(i) {
                let width = ctx
                    .offsets
                    .get(i + 2)
                    .copied()
                    .unwrap_or(ctx.combined.len());
                self.check_expr_combined(r, width, &ctx, &site(&format!("join_residuals[{i}]")));
            }
        }
        let full = ctx.combined.len();
        if let Some(r) = &programs.residual {
            self.check_expr_combined(r, full, &ctx, &site("residual"));
        }
        if let Some(projs) = &programs.projections {
            for (i, p) in projs.iter().enumerate() {
                self.check_expr_combined(p, full, &ctx, &site(&format!("projections[{i}]")));
            }
        }
        if let Some(groups) = &programs.group_by {
            for (i, g) in groups.iter().enumerate() {
                self.check_expr_combined(g, full, &ctx, &site(&format!("group_by[{i}]")));
            }
        }
        if let Some(h) = &programs.having {
            self.check_expr_combined(h, full, &ctx, &site("having"));
        }
        if let Some(aggs) = &programs.aggregates {
            for (i, agg) in aggs.iter().enumerate() {
                self.report.checks_run += 1;
                if agg.count_star != agg.arg.is_none() {
                    self.violation(
                        ViolationKind::ProgramArityMismatch,
                        site(&format!("aggregates[{i}]")),
                        format!(
                            "{} must have an argument program exactly when it is \
                             not count(*)",
                            agg.name
                        ),
                    );
                }
                if let Some(arg) = &agg.arg {
                    self.check_expr_combined(arg, full, &ctx, &site(&format!("aggregates[{i}]")));
                }
            }
        }
        if let Some(keys) = &programs.order_by {
            for (i, key) in keys.iter().enumerate() {
                match key {
                    SortKey::Output(idx) => self.check(
                        *idx < plan.projections.len(),
                        ViolationKind::OrdinalOutOfRange,
                        &site(&format!("order_by[{i}]")),
                        || {
                            format!(
                                "sort key targets output column {idx} of {}",
                                plan.projections.len()
                            )
                        },
                    ),
                    SortKey::Input(e) => {
                        self.check_expr_combined(e, full, &ctx, &site(&format!("order_by[{i}]")));
                    }
                }
            }
        }
    }

    /// Bound-check a program over one source's runtime schema and verify
    /// scan-column coverage for that source.
    fn check_expr_source(&mut self, e: &CompiledExpr, i: usize, ctx: &ProgramContext, site: &str) {
        self.report.programs_checked += 1;
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        let Some(schema) = ctx.pred_schemas.get(i) else {
            return;
        };
        for ordinal in cols {
            self.report.checks_run += 1;
            if ordinal >= schema.len() {
                self.violation(
                    ViolationKind::OrdinalOutOfRange,
                    site.to_string(),
                    format!(
                        "program reads column {ordinal} of a {}-column source row",
                        schema.len()
                    ),
                );
                continue;
            }
            self.check_coverage(i, ordinal, ctx, site);
        }
    }

    /// Bound-check a program over a prefix of the combined runtime schema
    /// (width `limit`) and verify scan-column coverage per base table.
    fn check_expr_combined(
        &mut self,
        e: &CompiledExpr,
        limit: usize,
        ctx: &ProgramContext,
        site: &str,
    ) {
        self.report.programs_checked += 1;
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        for ordinal in cols {
            self.report.checks_run += 1;
            if ordinal >= limit {
                self.violation(
                    ViolationKind::OrdinalOutOfRange,
                    site.to_string(),
                    format!("program reads column {ordinal} of a {limit}-column row"),
                );
                continue;
            }
            // Map the combined ordinal back to (source, local ordinal).
            let src = match ctx.offsets.binary_search(&ordinal) {
                Ok(i) => i,
                Err(i) => i.saturating_sub(1),
            };
            self.check_coverage(src, ordinal - ctx.offsets[src], ctx, site);
        }
    }

    /// Check (d): the base-table column a program reads must be inside the
    /// annotated scan-column union byte accounting and `BatchProgram`
    /// construction rely on.
    fn check_coverage(&mut self, source: usize, local: usize, ctx: &ProgramContext, site: &str) {
        let Some(Some((table_schema, union))) = ctx.scan_unions.get(source) else {
            return;
        };
        let Some((_, name)) = ctx
            .pred_schemas
            .get(source)
            .and_then(|s| s.columns().get(local))
        else {
            return;
        };
        let Some(storage_ordinal) = table_schema.column_index(name) else {
            return;
        };
        self.check(
            union.contains(&storage_ordinal),
            ViolationKind::ScanColumnNotCovered,
            site,
            || {
                format!(
                    "program reads column {name} (storage ordinal {storage_ordinal}) \
                     outside the annotated scan-column union {union:?}"
                )
            },
        );
    }
}

/// Runtime layout context shared by the per-program checks.
struct ProgramContext {
    pred_schemas: Vec<RowSchema>,
    combined: RowSchema,
    offsets: Vec<usize>,
    scan_unions: Vec<Option<(TableSchema, Vec<usize>)>>,
}

/// Can a zone-map comparison against `value` be meaningful for a column of
/// type `ty`?  Numeric kinds (int/float/bool) compare with each other under
/// [`Value::total_cmp`]; strings and blobs only with themselves.
fn bound_type_compatible(value: &Value, ty: DataType) -> bool {
    let numeric = |t: DataType| matches!(t, DataType::Int | DataType::Float | DataType::Bool);
    match value.data_type() {
        None => false, // NULL bounds never prune soundly
        Some(vt) if numeric(vt) => numeric(ty),
        Some(vt) => vt == ty,
    }
}

/// Is `declared` strictly tighter than `derived` on this side?  `prefer` is
/// the ordering that makes a bound tighter (`Greater` for lower bounds,
/// `Less` for upper bounds).  A declared bound where derivation found none
/// is tighter by definition.
fn bound_stricter(
    declared: &Option<(Value, bool)>,
    derived: &Option<(Value, bool)>,
    prefer: Ordering,
) -> bool {
    match (declared, derived) {
        (None, _) => false,
        (Some(_), None) => true,
        (Some((dv, dinc)), Some((rv, rinc))) => match dv.total_cmp(rv) {
            o if o == prefer => true,
            Ordering::Equal => *rinc && !*dinc,
            _ => false,
        },
    }
}

fn stricter_detail(declared: &ZoneConstraint, derived: &ZoneConstraint, side: &str) -> String {
    format!(
        "declared interval {} is stricter than the pushed predicate implies \
         ({}) on the {side} bound — pruning could skip satisfying rows",
        declared.render(),
        derived.render()
    )
}
