//! Accounting regression: `ScanStats` counters and EXPLAIN output for a
//! fixed, deterministic catalog must not drift when the executor changes.
//!
//! The vectorized / row-at-a-time / interpreted executors all promise that
//! `rows_scanned`, `predicates_evaluated`, `bytes_scanned` (and friends) are
//! *identical*.  Every expected string below pins the columnar accounting:
//! heap `bytes_scanned` charges only the columns a plan touches, index paths
//! charge real entry bytes plus the gathered heap columns, and heap scans
//! report `pruned` segments and `batches` processed.  All three executors
//! must reproduce these lines byte for byte.

use skyserver_sql::{FunctionRegistry, QueryLimits, SqlEngine};
use skyserver_storage::{ColumnDef, DataType, Database, IndexDef, TableSchema, Value};

/// A deterministic 1,000-row catalog (no RNG: every value is a formula of
/// the row number), with the index/view shapes the planner rules target.
fn fixed_engine() -> SqlEngine {
    let mut db = Database::new("fixed");
    let schema = TableSchema::new(vec![
        ColumnDef::new("objID", DataType::Int),
        ColumnDef::new("htmID", DataType::Int),
        ColumnDef::new("ra", DataType::Float),
        ColumnDef::new("dec", DataType::Float),
        ColumnDef::new("type", DataType::Int),
        ColumnDef::new("flags", DataType::Int),
        ColumnDef::new("magr", DataType::Float),
        ColumnDef::new("name", DataType::Str),
    ])
    .with_primary_key(&["objID"]);
    db.create_table("photo", schema).unwrap();
    db.create_index(IndexDef::new("pk_photo", "photo", &["objID"]).unique())
        .unwrap();
    db.create_index(IndexDef::new("ix_htm", "photo", &["htmID"]))
        .unwrap();
    db.create_index(IndexDef::new("ix_type_mag", "photo", &["type", "magr"]).include(&["objID"]))
        .unwrap();
    db.create_view("Galaxy", "select * from photo where type = 3", "galaxies")
        .unwrap();
    for i in 0..1000i64 {
        db.insert(
            "photo",
            vec![
                Value::Int(i),
                Value::Int(7_000 + i / 4),
                Value::Float(180.0 + (i as f64) * 0.01),
                Value::Float(-1.0 + (i as f64) * 0.001),
                Value::Int(if i % 2 == 0 { 3 } else { 6 }),
                Value::Int(if i % 10 == 0 { 64 } else { 0 }),
                Value::Float(14.0 + (i % 80) as f64 * 0.1),
                Value::str(format!("obj-{i:04}")),
            ],
        )
        .unwrap();
    }
    SqlEngine::new(db, FunctionRegistry::new())
}

/// Compact, order-stable rendering of every counter in `ScanStats`.
fn stats_line(engine: &mut SqlEngine, sql: &str) -> String {
    let outcome = engine.execute(sql, QueryLimits::UNLIMITED).unwrap();
    let s = outcome.stats.stats;
    format!(
        "scanned={} bytes={} idx_rows={} idx_bytes={} seeks={} probes={} preds={} returned={} pruned={} batches={}",
        s.rows_scanned,
        s.bytes_scanned,
        s.rows_from_index,
        s.bytes_from_index,
        s.index_seeks,
        s.join_probes,
        s.predicates_evaluated,
        s.rows_returned,
        s.segments_pruned,
        s.batches_processed
    )
}

struct Case {
    what: &'static str,
    sql: &'static str,
    expected: &'static str,
}

const CASES: &[Case] = &[
    Case {
        what: "full heap scan with a non-sargable pushed predicate",
        sql: "select ra from photo where ra + dec > 186",
        expected: "scanned=1000 bytes=16000 idx_rows=0 idx_bytes=0 seeks=0 probes=0 preds=1000 returned=363 pruned=0 batches=1",
    },
    Case {
        what: "point index seek on the primary key",
        sql: "select ra from photo where objID = 5",
        expected: "scanned=0 bytes=16 idx_rows=1 idx_bytes=24 seeks=1 probes=0 preds=1 returned=1 pruned=0 batches=0",
    },
    Case {
        what: "range index seek on htmID",
        sql: "select ra from photo where htmID between 7010 and 7019",
        expected: "scanned=0 bytes=640 idx_rows=40 idx_bytes=960 seeks=1 probes=0 preds=40 returned=40 pruned=0 batches=0",
    },
    Case {
        what: "covering index scan with a residual-style pushed predicate",
        sql: "select objID, magr from photo where magr * 2 > 30",
        expected: "scanned=0 bytes=0 idx_rows=1000 idx_bytes=40000 seeks=0 probes=0 preds=1000 returned=857 pruned=0 batches=0",
    },
    Case {
        what: "hash self-join on an unindexed float column",
        sql: "select count(*) from photo a join photo b on a.ra = b.ra",
        expected: "scanned=2000 bytes=16000 idx_rows=0 idx_bytes=0 seeks=0 probes=1000 preds=1000 returned=1 pruned=0 batches=2",
    },
    Case {
        what: "index-lookup join probing the primary key",
        sql: "select count(*) from photo a join photo b on a.objID = b.objID",
        expected: "scanned=0 bytes=8000 idx_rows=2000 idx_bytes=48000 seeks=1000 probes=0 preds=1000 returned=1 pruned=0 batches=0",
    },
    Case {
        what: "merged view scan (Galaxy qualifiers pushed into the scan)",
        sql: "select count(*) from Galaxy where magr < 17",
        expected: "scanned=0 bytes=8000 idx_rows=500 idx_bytes=20000 seeks=1 probes=0 preds=500 returned=1 pruned=0 batches=0",
    },
    Case {
        what: "group by with aggregate over a heap scan",
        sql: "select type, count(*) from photo where flags = 0 group by type",
        expected: "scanned=1000 bytes=16000 idx_rows=0 idx_bytes=0 seeks=0 probes=0 preds=1000 returned=2 pruned=0 batches=1",
    },
    Case {
        what: "distinct over a covering scan",
        sql: "select distinct type from photo",
        expected: "scanned=0 bytes=0 idx_rows=1000 idx_bytes=40000 seeks=0 probes=0 preds=0 returned=2 pruned=0 batches=0",
    },
    Case {
        what: "TOP with a pushed limit hint stops the covering scan early",
        sql: "select top 7 objID from photo",
        expected: "scanned=0 bytes=0 idx_rows=7 idx_bytes=168 seeks=0 probes=0 preds=0 returned=7 pruned=0 batches=0",
    },
    Case {
        what: "LIKE scan over the string column",
        sql: "select count(*) from photo where name like 'obj-00%'",
        expected: "scanned=1000 bytes=10000 idx_rows=0 idx_bytes=0 seeks=0 probes=0 preds=1000 returned=1 pruned=0 batches=1",
    },
    Case {
        what: "left join keeps NULL-extended rows, residual after the join",
        sql: "select count(*) from photo a left join Galaxy g on a.objID = g.objID where g.objID is null",
        expected: "scanned=0 bytes=16000 idx_rows=2000 idx_bytes=48000 seeks=1000 probes=0 preds=2500 returned=1 pruned=0 batches=0",
    },
    Case {
        what: "order by an arithmetic expression over a filtered scan",
        sql: "select objID from photo where flags = 64 order by magr * -1",
        expected: "scanned=1000 bytes=24000 idx_rows=0 idx_bytes=0 seeks=0 probes=0 preds=1000 returned=100 pruned=0 batches=1",
    },
];

#[test]
fn scan_stats_accounting_is_stable_on_the_fixed_catalog() {
    let mut engine = fixed_engine();
    let mut failures = Vec::new();
    for case in CASES {
        let actual = stats_line(&mut engine, case.sql);
        if actual != case.expected {
            failures.push(format!(
                "{}\n  sql:      {}\n  expected: {}\n  actual:   {}",
                case.what, case.sql, case.expected, actual
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "stats drifted:\n{}",
        failures.join("\n")
    );
}

#[test]
fn compiled_and_interpreted_executors_agree_on_rows_and_stats() {
    let mut compiled = fixed_engine();
    let mut interpreted = fixed_engine();
    interpreted.set_expression_compilation(false);
    let extra = [
        "select name, magr from photo where name like '%1_' order by magr desc, objID",
        "select type, avg(magr) as m, count(*) as n from photo group by type having count(*) > 1",
        "select distinct flags from photo where type = 3 order by flags",
        "select a.objID, g.magr from photo a left join Galaxy g on a.objID = g.objID \
         where a.objID < 20 order by a.objID",
        "select count(*) from photo a join photo b on a.htmID = b.htmID where a.objID < b.objID",
        "select top 9 objID, magr * 2 + 1 as m2 from photo where flags = 0",
        "select case when type = 3 then 'galaxy' else 'star' end as kind, count(*) \
         from photo group by case when type = 3 then 'galaxy' else 'star' end order by kind",
    ];
    for sql in CASES.iter().map(|c| c.sql).chain(extra) {
        let a = compiled.execute(sql, QueryLimits::UNLIMITED).unwrap();
        let b = interpreted.execute(sql, QueryLimits::UNLIMITED).unwrap();
        assert_eq!(a.result.rows, b.result.rows, "row divergence for {sql}");
        assert_eq!(a.stats.stats, b.stats.stats, "stats divergence for {sql}");
    }
}

/// A 10,000-row table spans three 4,096-row segments; `objID` is inserted in
/// order, so each segment's zone map covers a disjoint range and a range
/// predicate lets the scan skip whole segments without touching a row.
#[test]
fn zone_map_pruning_skips_cold_segments() {
    let mut db = Database::new("zones");
    let schema = TableSchema::new(vec![
        ColumnDef::new("objID", DataType::Int),
        ColumnDef::new("val", DataType::Float),
    ]);
    db.create_table("sweep", schema).unwrap();
    for i in 0..10_000i64 {
        db.insert("sweep", vec![Value::Int(i), Value::Float((i % 100) as f64)])
            .unwrap();
    }
    let mut engine = SqlEngine::new(db, FunctionRegistry::new());
    // Only segment 0 (objID 0..=4095) can contain matches; segments 1 and 2
    // are pruned by their zone maps, so the scan visits 4,096 rows in four
    // 1,024-row batches and charges bytes for the objID column alone.
    let line = stats_line(&mut engine, "select count(*) from sweep where objID < 1000");
    assert_eq!(
        line,
        "scanned=4096 bytes=32768 idx_rows=0 idx_bytes=0 seeks=0 probes=0 \
         preds=4096 returned=1 pruned=2 batches=4"
    );
    // A predicate outside every zone prunes all three segments.
    let none = stats_line(
        &mut engine,
        "select count(*) from sweep where objID > 50000",
    );
    assert_eq!(
        none,
        "scanned=0 bytes=0 idx_rows=0 idx_bytes=0 seeks=0 probes=0 \
         preds=0 returned=1 pruned=3 batches=0"
    );
}

#[test]
fn parallel_scan_accounting_matches_the_serial_scan() {
    let mut serial = fixed_engine();
    let serial_line = stats_line(&mut serial, "select ra from photo where ra + dec > 186");
    let mut parallel = fixed_engine();
    parallel.set_parallel_scan_threshold(1);
    let parallel_line = stats_line(&mut parallel, "select ra from photo where ra + dec > 186");
    assert_eq!(serial_line, parallel_line);
}

#[test]
fn explain_output_is_stable_on_the_fixed_catalog() {
    let engine = fixed_engine();
    let fig_scan = engine
        .explain("select ra from photo where ra + dec > 186")
        .unwrap();
    // Without an ANALYZE pass the estimates come from the default
    // selectivities (1/3 for an opaque comparison), so the numbers below pin
    // the fallback model as much as the plan shape.
    assert_eq!(
        fig_scan,
        "Project(ra) est_rows=333\n  \
         TableScan(photo) AS photo where ((ra + dec) > 186) est_rows=333\n\
         -- optimizer rules fired: predicate_pushdown\n"
    );
    let fig_join = engine
        .explain("select count(*) from photo a join photo b on a.objID = b.objID")
        .unwrap();
    // The join estimate is NDV-containment: 1000 x 1000 / max(ndv, ndv)
    // with ndv = 1000 from the unique pk fallback, i.e. key-preserving.
    assert_eq!(
        fig_join,
        "Aggregate(group by: [])\n  Project(count) est_rows=1\n    \
         NestedLoopJoin[index lookup pk_photo on a.objID = objID] est_rows=1000\n      \
         CoveringIndexScan(photo.pk_photo) AS a est_rows=1000\n      \
         CoveringIndexScan(photo.pk_photo) AS b est_rows=1000\n\
         -- optimizer rules fired: covering_index, join_strategy\n"
    );
}
