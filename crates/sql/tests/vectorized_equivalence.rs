//! Property test: the vectorized batch executor is observationally
//! equivalent to the row-at-a-time compiled executor and to the
//! tree-walking interpreter, at the whole-query level.
//!
//! Random single-table queries (sargable and non-sargable predicates,
//! NULL-laden columns, LIKE, bitmask tests, IN lists, mod-by-zero error
//! paths, TOP limits that land exactly on batch boundaries) run over a
//! randomly sized table — sometimes smaller than one 1,024-row batch,
//! sometimes spanning several 4,096-row segments, sometimes with deleted
//! rows punched into it.  All three execution modes must return the same
//! rows *and* the same `ScanStats` counters, or all must fail.  Error
//! ordering inside a conjunction may differ (the batch executor evaluates
//! conjunct-major), so errors are compared by presence, not message.

use proptest::prelude::*;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use skyserver_sql::{FunctionRegistry, QueryLimits, SqlEngine};
use skyserver_storage::{ColumnDef, DataType, Database, TableSchema, Value};

/// Deterministically build one engine from a seeded RNG: `id` is monotonic
/// (so segment zone maps are disjoint and range predicates can prune),
/// every other column gets NULLs sprinkled in.
fn build_engine(rng: &mut ChaCha8Rng, n_rows: usize) -> SqlEngine {
    let mut db = Database::new("prop");
    let schema = TableSchema::new(vec![
        ColumnDef::new("id", DataType::Int),
        ColumnDef::new("a", DataType::Int).nullable(),
        ColumnDef::new("f", DataType::Float).nullable(),
        ColumnDef::new("s", DataType::Str).nullable(),
        ColumnDef::new("flags", DataType::Int),
    ]);
    db.create_table("obj", schema).unwrap();
    for i in 0..n_rows {
        let nullable = |rng: &mut ChaCha8Rng, v: Value| {
            if rng.gen_range(0..6usize) == 0 {
                Value::Null
            } else {
                v
            }
        };
        let a = Value::Int(rng.gen_range(-5i64..50));
        let f = Value::Float(rng.gen_range(-10.0f64..10.0));
        let len = rng.gen_range(0usize..5);
        let s: String = (0..len)
            .map(|_| ['a', 'b', 'N', '_'][rng.gen_range(0..4usize)])
            .collect();
        let row = vec![
            Value::Int(i as i64 * 3),
            nullable(rng, a),
            nullable(rng, f),
            nullable(rng, Value::str(s)),
            Value::Int(rng.gen_range(0i64..16)),
        ];
        db.insert("obj", row).unwrap();
    }
    SqlEngine::new(db, FunctionRegistry::new())
}

/// One random predicate atom.  Covers every vectorized kernel (constant
/// comparisons, BETWEEN, IN, IS NULL, LIKE, flag masks) plus shapes that
/// force the scalar fallback (arithmetic, column-column comparison,
/// disjunction) and an occasional mod-by-zero to exercise error paths.
fn atom(rng: &mut ChaCha8Rng) -> String {
    match rng.gen_range(0..12usize) {
        0 => format!("a > {}", rng.gen_range(-5i64..50)),
        1 => format!("a = {}", rng.gen_range(-5i64..50)),
        2 => format!("f <= {:.1}", rng.gen_range(-10.0f64..10.0)),
        3 => {
            let lo = rng.gen_range(0i64..15_000);
            format!("id between {lo} and {}", lo + rng.gen_range(0i64..6_000))
        }
        4 => format!(
            "s {}like '{}'",
            if rng.gen_range(0..3) == 0 { "not " } else { "" },
            ["a%", "%b", "_a%", "%", "ab", "%a%b%"][rng.gen_range(0..6usize)]
        ),
        5 => format!(
            "s is {}null",
            if rng.gen_range(0..2) == 0 { "" } else { "not " }
        ),
        6 => format!(
            "a {}in ({}, {}, {})",
            if rng.gen_range(0..3) == 0 { "not " } else { "" },
            rng.gen_range(-5i64..50),
            rng.gen_range(-5i64..50),
            rng.gen_range(-5i64..50)
        ),
        7 => format!("flags & {} = 0", rng.gen_range(0i64..8)),
        8 => format!("a + f > {}", rng.gen_range(-5i64..40)),
        9 => format!("a % {} = 1", rng.gen_range(0i64..5)),
        10 => format!("not (a < {})", rng.gen_range(-5i64..50)),
        _ => "f > a".to_string(),
    }
}

fn predicate(rng: &mut ChaCha8Rng) -> String {
    let n = rng.gen_range(1..4usize);
    (0..n)
        .map(|_| {
            let lhs = atom(rng);
            if rng.gen_range(0..4usize) == 0 {
                format!("({lhs} or {})", atom(rng))
            } else {
                lhs
            }
        })
        .collect::<Vec<_>>()
        .join(" and ")
}

fn query(rng: &mut ChaCha8Rng) -> String {
    let select = match rng.gen_range(0..6usize) {
        0 => "*",
        1 => "id, a, s",
        2 => "count(*)",
        3 => "a + 1 as x, f",
        4 => "id",
        _ => "s, flags",
    };
    // TOP values straddling the 1,024-row batch size pin the
    // only-at-chunk-boundary limit semantics.
    let top = if rng.gen_range(0..4usize) == 0 {
        format!(
            "top {} ",
            [7, 1023, 1024, 1025, 4096][rng.gen_range(0..5usize)]
        )
    } else {
        String::new()
    };
    let filter = if rng.gen_range(0..8usize) == 0 {
        String::new()
    } else {
        format!(" where {}", predicate(rng))
    };
    format!("select {top}{select} from obj{filter}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Vectorized ≡ row-at-a-time compiled ≡ interpreted: rows and stats.
    #[test]
    fn all_three_execution_modes_agree(seed in any::<u64>(),
                                       n_rows in 1usize..5_200,
                                       n_queries in 4usize..9) {
        use rand::SeedableRng;
        // Three engines built from clones of the same RNG hold identical
        // data; a fourth RNG stream drives the query generator.
        let data_rng = ChaCha8Rng::seed_from_u64(seed);
        let mut vectorized = build_engine(&mut data_rng.clone(), n_rows);
        let mut row_compiled = build_engine(&mut data_rng.clone(), n_rows);
        let mut interpreted = build_engine(&mut data_rng.clone(), n_rows);
        row_compiled.set_vectorized_execution(false);
        interpreted.set_expression_compilation(false);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);

        // Punch deleted rows into all three engines identically so the
        // selection vector has holes to skip.
        for _ in 0..rng.gen_range(0..3usize) {
            let delete = format!("delete from obj where {}", atom(&mut rng));
            let d1 = vectorized.execute(&delete, QueryLimits::UNLIMITED);
            let d2 = row_compiled.execute(&delete, QueryLimits::UNLIMITED);
            let d3 = interpreted.execute(&delete, QueryLimits::UNLIMITED);
            prop_assert_eq!(d1.is_ok(), d2.is_ok(), "delete divergence: {}", &delete);
            prop_assert_eq!(d1.is_ok(), d3.is_ok(), "delete divergence: {}", &delete);
        }

        for _ in 0..n_queries {
            let sql = query(&mut rng);
            let v = vectorized.execute(&sql, QueryLimits::UNLIMITED);
            let r = row_compiled.execute(&sql, QueryLimits::UNLIMITED);
            let i = interpreted.execute(&sql, QueryLimits::UNLIMITED);
            match (&v, &r, &i) {
                (Ok(v), Ok(r), Ok(i)) => {
                    // Debug formatting keeps float comparisons bitwise.
                    let vr = format!("{:?}", v.result.rows);
                    prop_assert_eq!(&vr, &format!("{:?}", r.result.rows),
                                    "vectorized vs row rows for {}", &sql);
                    prop_assert_eq!(&vr, &format!("{:?}", i.result.rows),
                                    "vectorized vs interpreted rows for {}", &sql);
                    prop_assert_eq!(v.stats.stats, r.stats.stats,
                                    "vectorized vs row stats for {}", &sql);
                    prop_assert_eq!(v.stats.stats, i.stats.stats,
                                    "vectorized vs interpreted stats for {}", &sql);
                }
                (Err(_), Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "mode divergence for {}: vectorized={:?} row={:?} interpreted={:?}",
                    &sql,
                    v.as_ref().err(),
                    r.as_ref().err(),
                    i.as_ref().err()
                ),
            }
        }
    }
}
