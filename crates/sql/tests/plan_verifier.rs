//! The static plan verifier ([`skyserver_sql::verify_plan`]): clean plans
//! stay clean (property-tested over generated queries), and seeded plan
//! mutations are rejected with the right structured [`ViolationKind`].

use proptest::prelude::*;
use skyserver_sql::plan::ZoneConstraint;
use skyserver_sql::{
    parse_select, verify_plan, FunctionRegistry, Planner, SelectPlan, SqlEngine, ViolationKind,
};
use skyserver_storage::{ColumnDef, DataType, Database, IndexDef, TableSchema, Value};

/// A small catalog: `t(id int indexed, v float, name str)` with enough rows
/// that heap scans annotate zone constraints and scan columns.
fn test_db(rows: usize) -> Database {
    let mut db = Database::new("verify");
    db.create_table(
        "t",
        TableSchema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("v", DataType::Float),
            ColumnDef::new("name", DataType::Str),
        ]),
    )
    .unwrap();
    db.create_index(IndexDef::new("ix_id", "t", &["id"]))
        .unwrap();
    for i in 0..rows {
        db.insert(
            "t",
            vec![
                Value::Int(i as i64),
                Value::Float(i as f64 / 3.0),
                Value::str(format!("row{i}")),
            ],
        )
        .unwrap();
    }
    db
}

/// Plan `sql` against a fresh catalog and hand back plan + db for mutation.
fn planned(sql: &str) -> (SelectPlan, Database) {
    let db = test_db(64);
    let functions = FunctionRegistry::new();
    let stmt = parse_select(sql).expect("test SQL parses");
    let plan = Planner::new(&db, &functions)
        .plan_select(&stmt)
        .expect("test SQL plans");
    (plan, db)
}

fn kinds(plan: &SelectPlan, db: &Database) -> Vec<ViolationKind> {
    verify_plan(plan, db)
        .violations
        .iter()
        .map(|v| v.kind)
        .collect()
}

#[test]
fn well_formed_plans_verify_clean() {
    for sql in [
        "select count(*) from t",
        "select id, v from t where id = 7",
        "select top 5 v from t where v < 10.0 order by v desc",
        "select name, count(*) as n from t group by name having count(*) > 0",
        "select a.id, b.v from t as a join t as b on a.id = b.id where a.v < 3.0",
    ] {
        let (plan, db) = planned(sql);
        let report = verify_plan(&plan, &db);
        assert!(
            report.is_clean(),
            "{sql}: unexpected violations: {}",
            report.render_violations()
        );
        assert!(report.checks_run > 0, "{sql}: verifier ran no checks");
    }
}

#[test]
fn out_of_range_scan_column_is_rejected() {
    let (mut plan, db) = planned("select count(*) from t where v < 10.0");
    plan.sources[0].scan_columns = Some(vec![999]);
    let found = kinds(&plan, &db);
    assert!(
        found.contains(&ViolationKind::OrdinalOutOfRange),
        "expected ordinal_out_of_range, got {found:?}"
    );
}

#[test]
fn wrong_input_schema_width_is_rejected() {
    let (mut plan, db) = planned("select id, v from t where id = 3");
    plan.input_schema = Default::default();
    let found = kinds(&plan, &db);
    assert!(
        found.contains(&ViolationKind::SchemaWidthMismatch),
        "expected schema_width_mismatch, got {found:?}"
    );
}

#[test]
fn overgrown_input_schema_is_rejected() {
    let (mut plan, db) = planned("select id, v from t where id = 3");
    plan.input_schema = plan.input_schema.join(&plan.input_schema);
    let found = kinds(&plan, &db);
    assert!(
        found.contains(&ViolationKind::SchemaWidthMismatch),
        "expected schema_width_mismatch, got {found:?}"
    );
}

#[test]
fn unsound_zone_constraint_is_rejected() {
    // `v < 10.0` derives an upper bound for v; declaring a *lower* bound the
    // predicate never implied could prune segments holding matching rows.
    let (mut plan, db) = planned("select count(*) from t where v < 10.0");
    assert!(
        plan.sources[0].pushed_predicate.is_some(),
        "test premise: the predicate is pushed to the scan"
    );
    plan.sources[0].zone_constraints.push(ZoneConstraint {
        ordinal: 1,
        column: "v".to_string(),
        low: Some((Value::Float(5.0), true)),
        high: None,
    });
    let found = kinds(&plan, &db);
    assert!(
        found.contains(&ViolationKind::ZoneConstraintUnsound),
        "expected zone_constraint_unsound, got {found:?}"
    );
}

#[test]
fn tightened_zone_bound_is_rejected() {
    let (mut plan, db) = planned("select count(*) from t where v < 10.0");
    let constraint = plan.sources[0]
        .zone_constraints
        .iter_mut()
        .find(|z| z.column == "v")
        .expect("test premise: the scan annotates a zone constraint for v");
    // The predicate implies v < 10.0; claiming v < 2.0 would prune segments
    // whose rows satisfy the real predicate.
    constraint.high = Some((Value::Float(2.0), false));
    let found = kinds(&plan, &db);
    assert!(
        found.contains(&ViolationKind::ZoneConstraintUnsound),
        "expected zone_constraint_unsound, got {found:?}"
    );
}

#[test]
fn program_arity_mismatch_is_rejected() {
    let (mut plan, db) = planned("select id, v from t where v < 10.0");
    let programs = plan.programs.as_mut().expect("plans compile by default");
    programs.source_predicates.push(None);
    let found = kinds(&plan, &db);
    assert!(
        found.contains(&ViolationKind::ProgramArityMismatch),
        "expected program_arity_mismatch, got {found:?}"
    );
}

#[test]
fn limit_hint_without_its_rule_is_rejected() {
    let (mut plan, db) = planned("select id from t where v < 10.0");
    assert!(
        !plan.rules_fired.contains(&"limit_pushdown"),
        "test premise: no TOP means limit_pushdown must not fire"
    );
    plan.sources[0].limit_hint = Some(5);
    let found = kinds(&plan, &db);
    assert!(
        found.contains(&ViolationKind::PlanShapeInconsistent),
        "expected plan_shape_inconsistent, got {found:?}"
    );
}

#[test]
fn explain_verify_reports_the_summary_row() {
    let db = test_db(16);
    let engine = SqlEngine::new(db, FunctionRegistry::new());
    let result = engine
        .query("explain verify select top 3 id, v from t where id = 5 order by v")
        .unwrap();
    assert_eq!(result.columns, vec!["plan_verify".to_string()]);
    assert_eq!(result.rows.len(), 1);
    let cell = result.rows[0][0].to_string();
    assert!(
        cell.starts_with("plan verified:"),
        "unexpected EXPLAIN VERIFY output: {cell}"
    );
}

#[test]
fn engine_verify_returns_a_structured_report() {
    let db = test_db(16);
    let engine = SqlEngine::new(db, FunctionRegistry::new());
    let report = engine
        .verify("select name, count(*) from t group by name")
        .unwrap();
    assert!(report.is_clean(), "{}", report.render_violations());
    assert!(report.programs_checked > 0);
    assert!(
        engine.verify("set nocount on").is_err(),
        "no SELECT to verify"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every plan the optimizer produces for a generated query passes the
    /// verifier with zero findings — the pass never false-positives on
    /// plans the planner actually emits.
    #[test]
    fn generated_queries_verify_clean(
        rows in 0usize..80,
        projection in 0usize..4,
        predicate in 0usize..5,
        needle in 0i64..80,
        bound in -10.0..30.0f64,
        top in 0u64..10,
        order in 0usize..2,
    ) {
        let projection = ["count(*)", "id", "id, v", "name, v"][projection];
        let predicate = match predicate {
            0 => String::new(),
            1 => format!(" where id = {needle}"),
            2 => format!(" where id between {} and {}", needle / 2, needle),
            3 => format!(" where v < {bound:.3}"),
            _ => format!(" where v >= {bound:.3} and name like 'row%'"),
        };
        let top = if top == 0 { String::new() } else { format!("top {top} ") };
        let aggregated = projection == "count(*)";
        let order = if order == 1 && !aggregated { " order by id desc" } else { "" };
        let sql = format!("select {top}{projection} from t{predicate}{order}");

        let db = test_db(rows);
        let functions = FunctionRegistry::new();
        let stmt = parse_select(&sql).expect("generated SQL parses");
        let plan = Planner::new(&db, &functions)
            .with_verification(false)
            .plan_select(&stmt)
            .expect("generated SQL plans");
        let report = verify_plan(&plan, &db);
        prop_assert!(
            report.is_clean(),
            "{sql}: {}",
            report.render_violations()
        );
    }
}
