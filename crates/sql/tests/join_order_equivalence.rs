//! Property test: the cost-based join-ordering pass never changes results.
//!
//! Random 2–4-table inner-join queries (chained equi-joins plus random
//! pushed filters) run over seeded random catalogs twice — once with the
//! default cost-based ordering and once with the syntactic baseline
//! (`SqlEngine::set_cost_based_ordering(false)`, the same escape hatch the
//! join-ordering bench phase uses).  The two result multisets must be
//! identical: reordering may only change *how* rows are found, never which
//! rows.  Catalogs vary in row counts, index shapes and whether ANALYZE has
//! run, so the pass is exercised with rich, sparse and absent statistics.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use skyserver_sql::{FunctionRegistry, QueryLimits, SqlEngine};
use skyserver_storage::{ColumnDef, DataType, Database, IndexDef, TableSchema, Value};

/// Deterministically build the catalog a seed describes.  Called twice per
/// case (once per engine) because `Database` is not clonable.
fn build_catalog(rng: &mut ChaCha8Rng, tables: usize) -> Database {
    let mut db = Database::new("join_order_prop");
    for t in 0..tables {
        let name = format!("t{t}");
        let schema = TableSchema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("fk", DataType::Int),
            ColumnDef::new("val", DataType::Float),
            ColumnDef::new("cat", DataType::Int),
        ]);
        db.create_table(&name, schema).unwrap();
        if rng.gen_range(0..3usize) > 0 {
            db.create_index(IndexDef::new(format!("pk_{name}"), &name, &["id"]).unique())
                .unwrap();
        }
        if rng.gen_range(0..2usize) == 0 {
            db.create_index(IndexDef::new(format!("ix_{name}_fk"), &name, &["fk"]))
                .unwrap();
        }
        let rows = rng.gen_range(0usize..200);
        for i in 0..rows as i64 {
            db.insert(
                &name,
                vec![
                    Value::Int(i),
                    Value::Int(rng.gen_range(0i64..180)),
                    Value::Float(rng.gen_range(-10.0f64..10.0)),
                    Value::Int(rng.gen_range(0i64..5)),
                ],
            )
            .unwrap();
        }
    }
    if rng.gen_range(0..3usize) > 0 {
        db.analyze_all();
    }
    db
}

/// A random chained inner join with random pushed filters, as SQL text.
fn build_query(rng: &mut ChaCha8Rng, tables: usize) -> String {
    let aliases: Vec<String> = (0..tables).map(|t| format!("a{t}")).collect();
    let from: Vec<String> = (0..tables)
        .map(|t| format!("t{t} {}", aliases[t]))
        .collect();
    let mut conjuncts = Vec::new();
    for i in 0..tables - 1 {
        let (l, r) = (&aliases[i], &aliases[i + 1]);
        conjuncts.push(match rng.gen_range(0..3usize) {
            0 => format!("{l}.fk = {r}.id"),
            1 => format!("{l}.id = {r}.fk"),
            _ => format!("{l}.cat = {r}.cat"),
        });
    }
    for alias in &aliases {
        match rng.gen_range(0..5usize) {
            0 => conjuncts.push(format!("{alias}.val < {:.2}", rng.gen_range(-5.0f64..8.0))),
            1 => conjuncts.push(format!("{alias}.cat = {}", rng.gen_range(0i64..5))),
            2 => conjuncts.push(format!("{alias}.id > {}", rng.gen_range(0i64..150))),
            _ => {}
        }
    }
    let select: Vec<String> = aliases.iter().map(|a| format!("{a}.id, {a}.cat")).collect();
    format!(
        "select {} from {} where {}",
        select.join(", "),
        from.join(", "),
        conjuncts.join(" and ")
    )
}

/// Execute and return the result as a sorted multiset of row renderings.
fn run(engine: &mut SqlEngine, sql: &str) -> Vec<String> {
    let out = engine
        .execute(sql, QueryLimits::UNLIMITED)
        .unwrap_or_else(|e| panic!("query failed: {e}\n  sql: {sql}"));
    let mut rows: Vec<String> = out.result.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_based_and_syntactic_orders_return_identical_multisets(
        seed in any::<u64>(),
        tables in 2usize..=4,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let db_cost = build_catalog(&mut rng.clone(), tables);
        let db_syntactic = build_catalog(&mut rng.clone(), tables);
        let sql = build_query(&mut rng, tables);

        let mut cost_based = SqlEngine::new(db_cost, FunctionRegistry::new());
        let mut syntactic = SqlEngine::new(db_syntactic, FunctionRegistry::new());
        syntactic.set_cost_based_ordering(false);

        let a = run(&mut cost_based, &sql);
        let b = run(&mut syntactic, &sql);
        prop_assert_eq!(a, b, "result multisets diverged for {}", sql);
    }
}
