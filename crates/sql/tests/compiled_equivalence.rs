//! Property test: compiled expression programs are observationally
//! equivalent to the tree-walking interpreter.
//!
//! Random expression trees (covering NULLs, cross-type coercion, short-
//! circuiting three-valued logic, LIKE, CASE, CAST, built-ins and session
//! variables — including undefined ones) are evaluated over random rows by
//! both paths.  For every (expression, row) pair the two must agree: same
//! value (exact variant and bits) or both an error.

use proptest::prelude::*;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use skyserver_sql::ast::{BinaryOp, Expr, UnaryOp};
use skyserver_sql::exec::compile::compile;
use skyserver_sql::expr::{eval, EvalContext, RowSchema};
use skyserver_sql::FunctionRegistry;
use skyserver_storage::{DataType, Value};
use std::collections::HashMap;

/// Fixed test schema: a few numeric columns, a string, a bool.  Rows are
/// generated with NULLs sprinkled into every column.
const COLUMNS: &[&str] = &["a", "b", "c", "s", "flag"];

fn schema() -> RowSchema {
    RowSchema::for_table(Some("t"), COLUMNS)
}

fn random_value(rng: &mut ChaCha8Rng, column: usize) -> Value {
    if rng.gen_range(0..6usize) == 0 {
        return Value::Null;
    }
    match column {
        0 => Value::Int(rng.gen_range(-5i64..50)),
        1 => Value::Float(rng.gen_range(-10.0f64..10.0)),
        2 => Value::Int(rng.gen_range(0i64..8)),
        3 => {
            let len = rng.gen_range(0usize..6);
            let s: String = (0..len)
                .map(|_| {
                    *[b'a', b'b', b'N', b'_', b'%']
                        .get(rng.gen_range(0..5usize))
                        .unwrap() as char
                })
                .collect();
            Value::str(s)
        }
        _ => Value::Bool(rng.gen_range(0..2) == 1),
    }
}

fn random_literal(rng: &mut ChaCha8Rng) -> Expr {
    Expr::Literal(match rng.gen_range(0..6usize) {
        0 => Value::Null,
        1 => Value::Int(rng.gen_range(-4i64..10)),
        2 => Value::Float(rng.gen_range(-4.0f64..4.0)),
        3 => Value::Bool(rng.gen_range(0..2) == 1),
        4 => Value::str(["", "a", "ab", "aNb", "b%"][rng.gen_range(0..5usize)]),
        _ => Value::Int(0),
    })
}

fn random_column(rng: &mut ChaCha8Rng) -> Expr {
    let idx = rng.gen_range(0..COLUMNS.len());
    Expr::Column {
        qualifier: if rng.gen_range(0..2) == 0 {
            Some("t".into())
        } else {
            None
        },
        name: COLUMNS[idx].to_string(),
    }
}

/// Build a random expression of bounded depth.  Only names the compiler can
/// resolve are generated (columns of the schema, built-in functions, the
/// `@lim` variable plus the deliberately undefined `@missing`), so that a
/// compilation failure in the test is a real bug, not a generator artifact.
fn random_expr(rng: &mut ChaCha8Rng, depth: usize) -> Expr {
    if depth == 0 {
        return match rng.gen_range(0..5usize) {
            0 | 1 => random_literal(rng),
            2 | 3 => random_column(rng),
            _ => Expr::Variable(if rng.gen_range(0..4) == 0 {
                "missing".into()
            } else {
                "lim".into()
            }),
        };
    }
    let next = depth - 1;
    match rng.gen_range(0..10usize) {
        0 => Expr::Unary {
            op: if rng.gen_range(0..2) == 0 {
                UnaryOp::Neg
            } else {
                UnaryOp::Not
            },
            expr: Box::new(random_expr(rng, next)),
        },
        1..=3 => {
            const OPS: &[BinaryOp] = &[
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::Mul,
                BinaryOp::Div,
                BinaryOp::Mod,
                BinaryOp::Eq,
                BinaryOp::NotEq,
                BinaryOp::Lt,
                BinaryOp::LtEq,
                BinaryOp::Gt,
                BinaryOp::GtEq,
                BinaryOp::And,
                BinaryOp::Or,
                BinaryOp::BitAnd,
                BinaryOp::BitOr,
            ];
            Expr::Binary {
                left: Box::new(random_expr(rng, next)),
                op: OPS[rng.gen_range(0..OPS.len())],
                right: Box::new(random_expr(rng, next)),
            }
        }
        4 => Expr::Between {
            expr: Box::new(random_expr(rng, next)),
            low: Box::new(random_expr(rng, next)),
            high: Box::new(random_expr(rng, next)),
            negated: rng.gen_range(0..2) == 0,
        },
        5 => {
            let n = rng.gen_range(1..4usize);
            Expr::InList {
                expr: Box::new(random_expr(rng, next)),
                list: (0..n).map(|_| random_expr(rng, next)).collect(),
                negated: rng.gen_range(0..2) == 0,
            }
        }
        6 => Expr::IsNull {
            expr: Box::new(random_expr(rng, next)),
            negated: rng.gen_range(0..2) == 0,
        },
        7 => {
            // Mostly constant patterns (the precompiled-matcher path),
            // sometimes a computed one (the dynamic path).
            let pattern = if rng.gen_range(0..4) != 0 {
                Expr::Literal(Value::str(
                    ["%", "a%", "%b", "a_b", "%a%b%", "", "_", "aN%"][rng.gen_range(0..8usize)],
                ))
            } else {
                random_expr(rng, next)
            };
            Expr::Like {
                expr: Box::new(random_expr(rng, next)),
                pattern: Box::new(pattern),
                negated: rng.gen_range(0..2) == 0,
            }
        }
        8 => {
            let n = rng.gen_range(1..3usize);
            Expr::Case {
                branches: (0..n)
                    .map(|_| (random_expr(rng, next), random_expr(rng, next)))
                    .collect(),
                else_value: if rng.gen_range(0..2) == 0 {
                    Some(Box::new(random_expr(rng, next)))
                } else {
                    None
                },
            }
        }
        _ => match rng.gen_range(0..3usize) {
            0 => Expr::Cast {
                expr: Box::new(random_expr(rng, next)),
                ty: [
                    DataType::Int,
                    DataType::Float,
                    DataType::Str,
                    DataType::Bool,
                ][rng.gen_range(0..4usize)],
            },
            1 => Expr::Function {
                name: ["sqrt", "abs", "floor", "upper", "len", "str", "sign"]
                    [rng.gen_range(0..7usize)]
                .to_string(),
                args: vec![random_expr(rng, next)],
            },
            _ => Expr::Function {
                name: ["coalesce", "nullif", "power"][rng.gen_range(0..3usize)].to_string(),
                args: vec![random_expr(rng, next), random_expr(rng, next)],
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Compiled evaluation ≡ interpreted evaluation, per (expression, row).
    #[test]
    fn compiled_matches_interpreted(seed in any::<u64>(),
                                    depth in 1usize..4,
                                    n_rows in 1usize..12) {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let schema = schema();
        let funcs = FunctionRegistry::new();
        let mut vars = HashMap::new();
        vars.insert("lim".to_string(), Value::Float(2.5));
        let ctx = EvalContext {
            schema: &schema,
            variables: &vars,
            functions: &funcs,
            aggregates: None,
        };
        let expr = random_expr(&mut rng, depth);
        let compiled = compile(&expr, &schema, &funcs)
            .expect("generated expressions only reference resolvable names");
        for _ in 0..n_rows {
            let row: Vec<Value> = (0..COLUMNS.len())
                .map(|c| random_value(&mut rng, c))
                .collect();
            let interpreted = eval(&expr, &row, &ctx);
            let compiled_result = compiled.eval(&row, &ctx);
            match (&interpreted, &compiled_result) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "value mismatch for {:?} over {:?}",
                    expr,
                    row
                ),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "divergence for {:?} over {:?}: interpreted={:?} compiled={:?}",
                    expr, row, interpreted, compiled_result
                ),
            }
        }
    }
}
