//! Estimated-vs-actual cardinality harness: runs every documented query on
//! the deterministic Tiny catalog and pins the q-error of the statistics
//! model's top-level estimate, plus the presence of `est_rows` annotations
//! on every plan node `EXPLAIN` renders.
//!
//! The q-error is the symmetric ratio `max(est/actual, actual/est)` with +1
//! smoothing so empty results stay finite.  The bounds below are pinned a
//! little above the measured values: loosening one is a conscious decision
//! (the model got worse), and a estimate drifting past its bound is exactly
//! the regression this harness exists to catch.  The catalog is seeded, so
//! every number here is deterministic.

use skyserver_bench::{build_server, Scale};
use skyserver_queries::{run_all, twenty_queries};

/// Per-query ceilings for the q-error of the whole-plan estimate.  Queries
/// answered by histogram-backed range cuts sit near 2; the hard cases are
/// documented inline.
const Q_ERROR_BOUNDS: [(&str, f64); 21] = [
    ("Q1", 4.0),
    ("Q2", 25.0),  // correlated colour cuts: independence underestimates
    ("Q3", 16.0),  // same colour-cut correlation as Q2
    ("Q4", 12.0),  // empty result: smoothing caps the error at est+1
    ("Q5", 110.0), // OR of correlated colour cuts, worst miss in the suite
    ("Q6", 4.0),
    ("Q7", 2.0),
    ("Q8", 8.0),
    ("Q9", 5.0),
    ("Q10", 2.0),
    ("Q11", 3.0),
    ("Q12", 30.0), // colour cut again, over the gridded subset
    ("Q13", 8.0),
    ("Q14", 14.0), // three-way join: containment misses the distance cut
    // SELECT INTO: the report's row count is the 1-row acknowledgement,
    // not the 578 rows materialized, so the "q-error" here is really the
    // estimate itself — pinned loosely, it still catches model blow-ups.
    ("Q15A", 600.0),
    ("Q15B", 8.0),
    ("Q16", 25.0), // near-empty dropout cut
    ("Q17", 3.0),
    ("Q18", 4.0),
    ("Q19", 16.0), // four-way snowflake join, empty at Tiny scale
    ("Q20", 7.0),
];

fn q_error(est: u64, actual: u64) -> f64 {
    let e = est as f64 + 1.0;
    let a = actual as f64 + 1.0;
    (e / a).max(a / e)
}

#[test]
fn every_documented_query_estimate_is_within_its_pinned_q_error() {
    let mut server = build_server(Scale::Tiny);
    let queries = twenty_queries();
    let reports = run_all(&mut server, &queries).expect("the documented suite must run");
    assert_eq!(reports.len(), Q_ERROR_BOUNDS.len());
    let mut failures = Vec::new();
    for r in &reports {
        let bound = Q_ERROR_BOUNDS
            .iter()
            .find(|(id, _)| *id == r.id)
            .unwrap_or_else(|| panic!("no pinned q-error bound for {}", r.id))
            .1;
        let est = r
            .est_rows
            .unwrap_or_else(|| panic!("{}: planner produced no estimate", r.id));
        let q = q_error(est, r.rows as u64);
        if q > bound {
            failures.push(format!(
                "{}: q-error {q:.2} exceeds pinned bound {bound} (est {est}, actual {})",
                r.id, r.rows
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "cardinality estimates drifted:\n{}",
        failures.join("\n")
    );
}

#[test]
fn explain_renders_est_rows_on_every_plan_node() {
    let server = build_server(Scale::Tiny);
    for q in twenty_queries() {
        let rendered = server
            .explain(q.sql.trim())
            .unwrap_or_else(|e| panic!("{}: explain failed: {e}", q.id));
        for line in rendered.lines() {
            let is_node = line.contains(" AS ")
                || line.contains("Join")
                || line.trim_start().starts_with("Project(");
            if is_node {
                assert!(
                    line.contains("est_rows="),
                    "{}: plan node lacks an est_rows annotation: {line:?}",
                    q.id
                );
            }
        }
    }
}

#[test]
fn estimates_never_exceed_the_base_cardinality_on_single_table_scans() {
    // The model clamps a filtered scan at its table's live row count; the
    // plan verifier enforces this too, but here it is pinned end-to-end
    // through the public API.
    let server = build_server(Scale::Tiny);
    let summaries = server.table_summaries();
    let photo_rows = summaries
        .iter()
        .find(|t| t.name.eq_ignore_ascii_case("PhotoObj"))
        .expect("PhotoObj exists at Tiny scale")
        .rows as u64;
    let summary = server
        .plan_summary("select objID from PhotoObj where type = 6")
        .expect("plan a filtered scan");
    let est = summary.est_rows.expect("scan estimate present");
    assert!(
        est <= photo_rows,
        "estimate {est} exceeds PhotoObj's {photo_rows} rows"
    );
    assert!(est > 0, "a populated table's filtered scan estimates > 0");
}
