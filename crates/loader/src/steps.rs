//! DTS-style load steps with UNDO (§9.4).
//!
//! A load step takes one CSV document, validates and inserts it into its
//! target table, and journals the outcome in `loadEvents`.  A failed (or
//! simply regretted) step can be undone: every row whose insert timestamp
//! falls inside the step's window is deleted -- exactly the mechanism the
//! paper describes for its UNDO button.

use crate::csv::{parse_document, CsvError};
use crate::events::{
    ensure_load_events_table, read_events, record_event, update_event_status, LoadEvent, LoadStatus,
};
use skyserver_storage::{Database, StorageError};

/// Outcome of one load step.
#[derive(Debug, Clone)]
pub struct LoadStepResult {
    pub event: LoadEvent,
    /// Row-level parse errors (the step still loads the good rows; the
    /// operator decides whether to undo).
    pub row_errors: Vec<CsvError>,
}

/// Execute one load step: parse `document` and insert it into `table_name`.
pub fn load_csv_step(
    db: &mut Database,
    table_name: &str,
    document: &str,
) -> Result<LoadStepResult, StorageError> {
    ensure_load_events_table(db)?;
    let event_id = read_events(db)?.last().map(|e| e.event_id).unwrap_or(0) + 1;
    let schema = db.table(table_name)?.schema().clone();
    let start_ts = db.next_timestamp();
    let parsed = match parse_document(document, &schema) {
        Ok(p) => p,
        Err(fatal) => {
            let stop_ts = db.next_timestamp();
            let event = LoadEvent {
                event_id,
                table_name: table_name.to_string(),
                start_ts,
                stop_ts,
                rows_in_file: 0,
                rows_inserted: 0,
                status: LoadStatus::Failed,
                trace: format!("fatal: {fatal}"),
            };
            record_event(db, &event)?;
            return Ok(LoadStepResult {
                event,
                row_errors: vec![fatal],
            });
        }
    };
    let rows_in_file = parsed.rows.len() as u64 + parsed.errors.len() as u64;
    let mut inserted = 0u64;
    let mut insert_errors: Vec<String> = Vec::new();
    for row in parsed.rows {
        match db.insert_with_timestamp(table_name, row, start_ts) {
            Ok(_) => inserted += 1,
            Err(e) => insert_errors.push(e.to_string()),
        }
    }
    if inserted > 0 {
        // Each load step is a publish point: refresh the table's optimizer
        // statistics while the batch is hot.
        db.analyze_table(table_name)?;
    }
    let stop_ts = db.next_timestamp();
    let failed = !parsed.errors.is_empty() || !insert_errors.is_empty();
    let mut trace = format!(
        "loaded {inserted}/{rows_in_file} rows from a {} byte file",
        parsed.source_bytes
    );
    for e in parsed.errors.iter().take(5) {
        trace.push_str(&format!("; {e}"));
    }
    for e in insert_errors.iter().take(5) {
        trace.push_str(&format!("; {e}"));
    }
    let event = LoadEvent {
        event_id,
        table_name: table_name.to_string(),
        start_ts,
        stop_ts,
        rows_in_file,
        rows_inserted: inserted,
        status: if failed {
            LoadStatus::Failed
        } else {
            LoadStatus::Success
        },
        trace,
    };
    record_event(db, &event)?;
    Ok(LoadStepResult {
        event,
        row_errors: parsed.errors,
    })
}

/// Undo a load step: delete every row of the step's table whose insert
/// timestamp lies inside the step window, and mark the journal entry undone.
/// Returns the number of rows removed.
pub fn undo_step(db: &mut Database, event_id: i64) -> Result<usize, StorageError> {
    let events = read_events(db)?;
    let Some(event) = events.into_iter().find(|e| e.event_id == event_id) else {
        return Err(StorageError::ConstraintViolation(format!(
            "no load event with id {event_id}"
        )));
    };
    if event.status == LoadStatus::Undone {
        return Ok(0);
    }
    let removed = db.delete_by_timestamp_range(&event.table_name, event.start_ts, event.stop_ts)?;
    update_event_status(
        db,
        event_id,
        LoadStatus::Undone,
        &format!("undo removed {removed} rows"),
    )?;
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver_storage::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new("steps");
        db.create_table(
            "Plate",
            TableSchema::new(vec![
                ColumnDef::new("plateID", DataType::Int),
                ColumnDef::new("ra", DataType::Float),
                ColumnDef::new("dec", DataType::Float),
                ColumnDef::new("mjd", DataType::Int),
                ColumnDef::new("nFibers", DataType::Int),
            ])
            .with_primary_key(&["plateID"]),
        )
        .unwrap();
        db
    }

    const GOOD: &str =
        "plateID,ra,dec,mjd,nFibers\n300,180.0,0.0,52000,600\n301,181.0,0.5,52003,598\n";

    #[test]
    fn successful_step_loads_and_journals() {
        let mut db = db();
        let result = load_csv_step(&mut db, "Plate", GOOD).unwrap();
        assert_eq!(result.event.status, LoadStatus::Success);
        assert_eq!(result.event.rows_inserted, 2);
        assert_eq!(result.event.rows_in_file, 2);
        assert!(result.row_errors.is_empty());
        assert_eq!(db.table("Plate").unwrap().row_count(), 2);
        assert_eq!(read_events(&db).unwrap().len(), 1);
    }

    #[test]
    fn bad_rows_mark_the_step_failed_but_load_good_rows() {
        let mut db = db();
        let doc = "plateID,ra,dec,mjd,nFibers\n300,180.0,0.0,52000,600\nnot_a_number,1,2,3,4\n";
        let result = load_csv_step(&mut db, "Plate", doc).unwrap();
        assert_eq!(result.event.status, LoadStatus::Failed);
        assert_eq!(result.event.rows_inserted, 1);
        assert_eq!(result.event.rows_in_file, 2);
        assert_eq!(result.row_errors.len(), 1);
        assert!(result.event.trace.contains("bad integer"));
    }

    #[test]
    fn fatal_header_error_is_journaled() {
        let mut db = db();
        let doc = "plateID,mysteryColumn\n1,2\n";
        let result = load_csv_step(&mut db, "Plate", doc).unwrap();
        assert_eq!(result.event.status, LoadStatus::Failed);
        assert_eq!(result.event.rows_inserted, 0);
        assert_eq!(db.table("Plate").unwrap().row_count(), 0);
    }

    #[test]
    fn undo_removes_exactly_the_steps_rows() {
        let mut db = db();
        let first = load_csv_step(&mut db, "Plate", GOOD).unwrap();
        let second = load_csv_step(
            &mut db,
            "Plate",
            "plateID,ra,dec,mjd,nFibers\n400,170.0,1.0,52010,590\n",
        )
        .unwrap();
        assert_eq!(db.table("Plate").unwrap().row_count(), 3);
        // Undo the first step: only its two rows disappear.
        let removed = undo_step(&mut db, first.event.event_id).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(db.table("Plate").unwrap().row_count(), 1);
        let events = read_events(&db).unwrap();
        assert_eq!(events[0].status, LoadStatus::Undone);
        assert_eq!(events[1].status, LoadStatus::Success);
        // Undoing again is a no-op; undoing the other step empties the table.
        assert_eq!(undo_step(&mut db, first.event.event_id).unwrap(), 0);
        assert_eq!(undo_step(&mut db, second.event.event_id).unwrap(), 1);
        assert_eq!(db.table("Plate").unwrap().row_count(), 0);
    }

    #[test]
    fn undo_then_reload_recovers() {
        // The paper's operator workflow: UNDO the failed step, fix the file,
        // re-execute the load.
        let mut db = db();
        let bad = "plateID,ra,dec,mjd,nFibers\n300,180.0,0.0,52000,600\nbroken,1,2,3,4\n";
        let failed = load_csv_step(&mut db, "Plate", bad).unwrap();
        assert_eq!(failed.event.status, LoadStatus::Failed);
        undo_step(&mut db, failed.event.event_id).unwrap();
        assert_eq!(db.table("Plate").unwrap().row_count(), 0);
        let fixed = load_csv_step(&mut db, "Plate", GOOD).unwrap();
        assert_eq!(fixed.event.status, LoadStatus::Success);
        assert_eq!(db.table("Plate").unwrap().row_count(), 2);
    }

    #[test]
    fn unknown_event_or_table_errors() {
        let mut db = db();
        assert!(undo_step(&mut db, 42).is_err());
        assert!(load_csv_step(&mut db, "NoSuchTable", GOOD).is_err());
    }
}
