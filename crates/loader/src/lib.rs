//! # skyserver-loader
//!
//! The SkyServer data-loading pipeline (§9.4 of the paper):
//!
//! 1. the processing pipeline (here: `skyserver-skygen`) emits CSV files,
//! 2. DTS-style **load steps** parse, validate and insert each file,
//!    journaling the outcome in the `loadEvents` table,
//! 3. failed steps can be **undone** by deleting every row whose insert
//!    timestamp lies inside the step window,
//! 4. post-load steps build the secondary indices, compute the `Neighbors`
//!    materialised view and the image pyramid, and validate every foreign
//!    key,
//! 5. the loader reports its throughput (the paper: ~5 GB/hour, CPU bound in
//!    data conversion).

#![forbid(unsafe_code)]

pub mod csv;
pub mod events;
pub mod neighbors;
pub mod pyramid;
pub mod steps;

pub use csv::{parse_document, parse_field, split_line, CsvError, ParsedCsv};
pub use events::{
    ensure_load_events_table, read_events, record_event, update_event_status, LoadEvent,
    LoadStatus, LOAD_EVENTS_TABLE,
};
pub use neighbors::{compute_neighbors, NeighborsReport, NEIGHBOR_RADIUS_ARCMIN};
pub use pyramid::{build_pyramid, PyramidReport, Tile, ZOOM_LEVELS};
pub use steps::{load_csv_step, undo_step, LoadStepResult};

use skyserver_schema::create_indexes;
use skyserver_skygen::{export_survey, Survey};
use skyserver_sql::SqlEngine;
use skyserver_storage::StorageError;
use std::time::Instant;

/// Report of a full survey load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// One journal entry per table loaded.
    pub events: Vec<LoadEvent>,
    pub neighbors: NeighborsReport,
    pub pyramid: PyramidReport,
    /// Foreign-key violations found by the post-load validation (empty on a
    /// clean load).
    pub fk_violations: Vec<String>,
    /// Total rows inserted across all tables.
    pub total_rows: u64,
    /// Total CSV bytes processed.
    pub total_bytes: u64,
    /// Wall-clock seconds for the whole load.
    pub wall_seconds: f64,
}

impl LoadReport {
    /// Load rate in MB per hour (the paper reports ~5 GB/hour on the 2001
    /// hardware; data conversion is CPU bound).
    pub fn mb_per_hour(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        (self.total_bytes as f64 / 1e6) / self.wall_seconds * 3600.0
    }

    /// Did every step succeed and every constraint validate?
    pub fn is_clean(&self) -> bool {
        self.fk_violations.is_empty() && self.events.iter().all(|e| e.status == LoadStatus::Success)
    }
}

/// Load a generated survey into an engine that already has the SkyServer
/// schema installed (see [`skyserver_schema::create_engine`]).
///
/// Foreign-key enforcement is deferred during the bulk insert and validated
/// once at the end, mirroring how the real DTS load validates integrity per
/// step; indices are built after the data arrives.
pub fn load_survey(engine: &mut SqlEngine, survey: &Survey) -> Result<LoadReport, StorageError> {
    let started = Instant::now();
    let csv_tables = export_survey(survey);
    let db = engine.db_mut();
    ensure_load_events_table(db)?;
    db.set_enforce_foreign_keys(false);
    let mut events = Vec::new();
    let mut total_rows = 0u64;
    let mut total_bytes = 0u64;
    for table in &csv_tables {
        let document = table.to_document();
        total_bytes += document.len() as u64;
        let result = load_csv_step(db, &table.name, &document)?;
        total_rows += result.event.rows_inserted;
        events.push(result.event);
    }
    // Post-load steps: indices, neighbors, pyramid.
    create_indexes(db)?;
    let ts = db.next_timestamp();
    let neighbors = compute_neighbors(db, NEIGHBOR_RADIUS_ARCMIN, ts)?;
    let ts = db.next_timestamp();
    let pyramid = build_pyramid(db, ts)?;
    let fk_violations = db.validate_foreign_keys();
    db.set_enforce_foreign_keys(true);
    // Final publish point: every table (including the derived Neighbors and
    // pyramid tables) gets fresh optimizer statistics.
    db.analyze_all();
    // Let the engine report paper-scale timing projections.
    engine.set_paper_scale_factor(Some(survey.paper_scale_factor()));
    Ok(LoadReport {
        events,
        neighbors,
        pyramid,
        fk_violations,
        total_rows,
        total_bytes,
        wall_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver_skygen::SurveyConfig;
    use skyserver_sql::QueryLimits;
    use skyserver_storage::Value;

    fn loaded_engine() -> (SqlEngine, LoadReport, Survey) {
        let survey = Survey::generate(SurveyConfig::tiny()).unwrap();
        let mut engine = skyserver_schema::create_engine("skyserver_tiny").unwrap();
        let report = load_survey(&mut engine, &survey).unwrap();
        (engine, report, survey)
    }

    #[test]
    fn full_load_is_clean_and_queryable() {
        let (engine, report, survey) = loaded_engine();
        assert!(report.is_clean(), "violations: {:?}", report.fk_violations);
        assert!(report.total_rows > 0);
        assert!(report.mb_per_hour() > 0.0);
        // Row counts visible through SQL match the generator.
        let counts = survey.counts();
        let photo = engine.query("select count(*) from PhotoObj").unwrap();
        assert_eq!(
            photo.scalar().unwrap().as_i64().unwrap() as usize,
            counts.photo_obj
        );
        let spec = engine.query("select count(*) from SpecObj").unwrap();
        assert_eq!(
            spec.scalar().unwrap().as_i64().unwrap() as usize,
            counts.spec_obj
        );
        // The journal recorded one event per CSV table.
        assert_eq!(report.events.len(), 13);
        // Load events are also visible through SQL.
        let events = engine.query("select count(*) from loadEvents").unwrap();
        assert_eq!(events.scalar().unwrap().as_i64().unwrap() as usize, 13);
    }

    #[test]
    fn views_indices_and_spatial_functions_work_after_load() {
        let (mut engine, _, _) = loaded_engine();
        // Views: the Galaxy count is a strict subset of PhotoPrimary.
        let galaxies = engine.query("select count(*) from Galaxy").unwrap();
        let primaries = engine.query("select count(*) from PhotoPrimary").unwrap();
        let g = galaxies.scalar().unwrap().as_i64().unwrap();
        let p = primaries.scalar().unwrap().as_i64().unwrap();
        assert!(g > 0 && g < p);
        // A spatial query through the TVF returns sorted distances.
        let r = engine
            .execute(
                "select objID, distance from fGetNearbyObjEq(181.0, -0.8, 10)",
                QueryLimits::UNLIMITED,
            )
            .unwrap();
        let d = r.result.column_values("distance");
        for w in d.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // The neighbors materialised view answers proximity queries.
        let n = engine.query("select count(*) from Neighbors").unwrap();
        assert!(n.scalar().unwrap().as_i64().unwrap() >= 0);
    }

    #[test]
    fn undo_after_load_removes_one_tables_rows() {
        let (mut engine, report, _) = loaded_engine();
        let usno_event = report
            .events
            .iter()
            .find(|e| e.table_name == "USNO")
            .unwrap();
        let before = engine.query("select count(*) from USNO").unwrap();
        assert!(before.scalar().unwrap().as_i64().unwrap() > 0);
        let removed = undo_step(engine.db_mut(), usno_event.event_id).unwrap();
        assert_eq!(removed as u64, usno_event.rows_inserted);
        let after = engine.query("select count(*) from USNO").unwrap();
        assert_eq!(after.scalar(), Some(&Value::Int(0)));
        // Other tables are untouched.
        let photo = engine.query("select count(*) from PhotoObj").unwrap();
        assert!(photo.scalar().unwrap().as_i64().unwrap() > 0);
    }

    #[test]
    fn primary_fraction_survives_the_load() {
        let (engine, _, survey) = loaded_engine();
        let total = engine
            .query("select count(*) from PhotoObj")
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap() as f64;
        let primary = engine
            .query("select count(*) from PhotoPrimary")
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap() as f64;
        let fraction = primary / total;
        assert!((fraction - survey.primary_fraction()).abs() < 0.01);
        assert!((0.7..0.95).contains(&fraction));
    }

    #[test]
    fn pyramid_frames_exist_at_higher_zooms() {
        let (engine, report, _) = loaded_engine();
        assert!(report.pyramid.tiles > 0);
        let r = engine
            .query("select count(*) from Frame where zoom > 0")
            .unwrap();
        assert_eq!(
            r.scalar().unwrap().as_i64().unwrap() as usize,
            report.pyramid.tiles
        );
    }
}
