//! The `Neighbors` materialised view (§3, §9.1.1).
//!
//! "One table, neighbors, is computed after the data is loaded.  For every
//! object the neighbors table contains a list of all other objects within
//! ½ arcminute of the object (typically 10 objects).  This speeds proximity
//! searches."
//!
//! The computation uses a simple spatial hash grid (cells slightly larger
//! than the search radius) rather than an all-pairs scan, so it stays linear
//! in the number of objects -- the same role the HTM zone trick plays in the
//! real loader.

use skyserver_htm::angular_distance_arcmin;
use skyserver_storage::{Database, StorageError, Value};
use std::collections::HashMap;

/// The paper's neighbourhood radius: half an arcminute.
pub const NEIGHBOR_RADIUS_ARCMIN: f64 = 0.5;

/// Result of the neighbours computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NeighborsReport {
    /// Number of (objID, neighborObjID) pairs inserted.
    pub pairs: usize,
    /// Number of objects considered.
    pub objects: usize,
}

/// Compute the Neighbors table for every object currently in `PhotoObj`.
///
/// Pairs are symmetric: if A is within the radius of B, both (A,B) and (B,A)
/// are stored, mirroring the real table.
pub fn compute_neighbors(
    db: &mut Database,
    radius_arcmin: f64,
    timestamp: u64,
) -> Result<NeighborsReport, StorageError> {
    #[derive(Clone, Copy)]
    struct Pos {
        obj_id: i64,
        ra: f64,
        dec: f64,
        obj_type: i64,
    }
    let positions: Vec<Pos> = {
        let table = db.table("PhotoObj")?;
        let schema = table.schema();
        let i_id = schema.column_index("objID").expect("objID column");
        let i_ra = schema.column_index("ra").expect("ra column");
        let i_dec = schema.column_index("dec").expect("dec column");
        let i_type = schema.column_index("type").expect("type column");
        table
            .iter()
            .map(|(_, row)| Pos {
                obj_id: row[i_id].as_i64().unwrap_or(0),
                ra: row[i_ra].as_f64().unwrap_or(0.0),
                dec: row[i_dec].as_f64().unwrap_or(0.0),
                obj_type: row[i_type].as_i64().unwrap_or(0),
            })
            .collect()
    };
    // Spatial hash: cell edge of one radius in degrees (so all neighbours of
    // a point lie within the 3x3 cell block around it).
    let cell = (radius_arcmin / 60.0).max(1e-6);
    let key = |ra: f64, dec: f64| -> (i64, i64) {
        ((ra / cell).floor() as i64, (dec / cell).floor() as i64)
    };
    let mut grid: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (i, p) in positions.iter().enumerate() {
        grid.entry(key(p.ra, p.dec)).or_default().push(i);
    }
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for p in &positions {
        let (kx, ky) = key(p.ra, p.dec);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(bucket) = grid.get(&(kx + dx, ky + dy)) else {
                    continue;
                };
                for &j in bucket {
                    let q = &positions[j];
                    if q.obj_id == p.obj_id {
                        continue;
                    }
                    let d = angular_distance_arcmin(p.ra, p.dec, q.ra, q.dec);
                    if d <= radius_arcmin {
                        rows.push(vec![
                            Value::Int(p.obj_id),
                            Value::Int(q.obj_id),
                            Value::Float(d),
                            Value::Int(q.obj_type),
                        ]);
                    }
                }
            }
        }
    }
    let pairs = rows.len();
    // Neighbors has a composite primary key; clear any previous computation
    // before inserting (recomputation is idempotent).
    db.table_mut("Neighbors")?.truncate();
    let was_enforcing = true;
    db.set_enforce_foreign_keys(false);
    db.insert_many("Neighbors", rows, timestamp)?;
    db.set_enforce_foreign_keys(was_enforcing);
    Ok(NeighborsReport {
        pairs,
        objects: positions.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver_htm::{lookup_id, SDSS_DEPTH};
    use skyserver_schema::install_schema;

    fn insert_object(db: &mut Database, id: i64, ra: f64, dec: f64) {
        let schema = skyserver_schema::photo_obj_schema();
        let mut row = Vec::new();
        for c in schema.columns() {
            let v = match c.name.as_str() {
                "objID" => Value::Int(id),
                "ra" => Value::Float(ra),
                "dec" => Value::Float(dec),
                "htmID" => Value::Int(lookup_id(ra, dec, SDSS_DEPTH) as i64),
                "type" => Value::Int(3),
                _ => match c.ty {
                    skyserver_storage::DataType::Int => Value::Int(1),
                    skyserver_storage::DataType::Float => Value::Float(0.0),
                    skyserver_storage::DataType::Str => Value::str(""),
                    skyserver_storage::DataType::Bytes => Value::bytes([]),
                    skyserver_storage::DataType::Bool => Value::Bool(false),
                },
            };
            row.push(v);
        }
        db.insert("PhotoObj", row).unwrap();
    }

    fn test_db() -> Database {
        let mut db = Database::new("neighbors_test");
        install_schema(&mut db).unwrap();
        db.set_enforce_foreign_keys(false);
        // Two close objects (0.3' apart), one at 0.4' from the first, one far.
        insert_object(&mut db, 1, 185.0, -0.5);
        insert_object(&mut db, 2, 185.0 + 0.3 / 60.0, -0.5);
        insert_object(&mut db, 3, 185.0, -0.5 + 0.4 / 60.0);
        insert_object(&mut db, 4, 186.0, -0.5);
        db
    }

    #[test]
    fn finds_symmetric_pairs_within_radius() {
        let mut db = test_db();
        let report = compute_neighbors(&mut db, NEIGHBOR_RADIUS_ARCMIN, 1).unwrap();
        assert_eq!(report.objects, 4);
        // Pairs: (1,2),(2,1),(1,3),(3,1) and 2-3 are ~0.5' apart -- depends on
        // exact distance; at least the four certain pairs must exist.
        assert!(report.pairs >= 4);
        let table = db.table("Neighbors").unwrap();
        assert_eq!(table.row_count(), report.pairs);
        // Symmetry: every (a,b) has a (b,a).
        let pairs: Vec<(i64, i64)> = table
            .iter()
            .map(|(_, r)| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        for (a, b) in &pairs {
            assert!(
                pairs.contains(&(*b, *a)),
                "missing symmetric pair for ({a},{b})"
            );
        }
        // The far object has no neighbours.
        assert!(!pairs.iter().any(|(a, b)| *a == 4 || *b == 4));
    }

    #[test]
    fn recomputation_is_idempotent() {
        let mut db = test_db();
        let first = compute_neighbors(&mut db, NEIGHBOR_RADIUS_ARCMIN, 1).unwrap();
        let second = compute_neighbors(&mut db, NEIGHBOR_RADIUS_ARCMIN, 2).unwrap();
        assert_eq!(first.pairs, second.pairs);
        assert_eq!(db.table("Neighbors").unwrap().row_count(), second.pairs);
    }

    #[test]
    fn larger_radius_finds_more_pairs() {
        let mut db = test_db();
        let small = compute_neighbors(&mut db, 0.2, 1).unwrap();
        let big = compute_neighbors(&mut db, 2.0, 2).unwrap();
        assert!(big.pairs > small.pairs);
    }
}
