//! CSV parsing for the load pipeline.
//!
//! The pipeline hands the loader comma-separated files with a header line
//! (§9.4).  The parser handles quoted fields (with `""` escapes), maps
//! header names onto table columns case-insensitively, and converts fields
//! into typed [`Value`]s (including `0x...` hex blobs for the profile and
//! image columns).

use skyserver_storage::{hex_decode, DataType, TableSchema, Value};

/// A parse failure with its line number (1-based, counting the header).
#[derive(Debug, Clone, PartialEq)]
pub struct CsvError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Split one CSV line into fields, honouring double quotes.
pub fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' if current.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    fields.push(current);
    fields
}

/// Convert one CSV field into a [`Value`] of the target type.  Empty fields
/// become NULL (which the NOT NULL schema will reject later -- that is the
/// validation the paper's DTS steps perform).
pub fn parse_field(field: &str, ty: DataType) -> Result<Value, String> {
    let trimmed = field.trim();
    if trimmed.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Int => trimmed
            .parse::<i64>()
            .map(Value::Int)
            .or_else(|_| {
                // Allow float-typed text for integer columns (e.g. "3.0").
                trimmed
                    .parse::<f64>()
                    .map(|f| Value::Int(f as i64))
                    .map_err(|e| e.to_string())
            })
            .map_err(|e| format!("bad integer {trimmed:?}: {e}")),
        DataType::Float => trimmed
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad float {trimmed:?}: {e}")),
        DataType::Bool => match trimmed {
            "0" | "false" | "f" => Ok(Value::Bool(false)),
            "1" | "true" | "t" => Ok(Value::Bool(true)),
            other => Err(format!("bad boolean {other:?}")),
        },
        DataType::Bytes => hex_decode(trimmed).map(Value::bytes).ok_or_else(|| {
            format!(
                "bad hex blob starting {:?}",
                &trimmed[..trimmed.len().min(12)]
            )
        }),
        DataType::Str => Ok(Value::str(trimmed)),
    }
}

/// A parsed CSV document bound to a table schema: rows are in table-column
/// order, ready to insert.
#[derive(Debug, Clone, Default)]
pub struct ParsedCsv {
    pub rows: Vec<Vec<Value>>,
    /// Total bytes of the source document (for load-rate reporting).
    pub source_bytes: usize,
    /// Lines that failed to parse, with reasons.
    pub errors: Vec<CsvError>,
}

/// Parse a CSV document against a table schema.
///
/// The header row names the columns present in the file; they are matched to
/// schema columns case-insensitively.  Schema columns missing from the file
/// are filled with NULL (and will fail NOT NULL validation unless the column
/// has a default).
pub fn parse_document(document: &str, schema: &TableSchema) -> Result<ParsedCsv, CsvError> {
    let mut lines = document.lines();
    let header = lines.next().ok_or(CsvError {
        line: 0,
        message: "empty CSV document".into(),
    })?;
    let header_fields = split_line(header);
    // Map each CSV column to its schema position.
    let mut mapping = Vec::with_capacity(header_fields.len());
    for name in &header_fields {
        match schema.column_index(name.trim()) {
            Some(idx) => mapping.push(idx),
            None => {
                return Err(CsvError {
                    line: 1,
                    message: format!("CSV column {name:?} does not exist in the table"),
                })
            }
        }
    }
    let mut parsed = ParsedCsv {
        source_bytes: document.len(),
        ..Default::default()
    };
    for (lineno, line) in lines.enumerate() {
        let line_number = lineno + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(line);
        if fields.len() != mapping.len() {
            parsed.errors.push(CsvError {
                line: line_number,
                message: format!(
                    "expected {} fields but found {}",
                    mapping.len(),
                    fields.len()
                ),
            });
            continue;
        }
        let mut row = vec![Value::Null; schema.len()];
        let mut ok = true;
        for (field, &target) in fields.iter().zip(&mapping) {
            match parse_field(field, schema.columns()[target].ty) {
                Ok(v) => row[target] = v,
                Err(message) => {
                    parsed.errors.push(CsvError {
                        line: line_number,
                        message: format!("column {}: {message}", schema.columns()[target].name),
                    });
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            parsed.rows.push(row);
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyserver_storage::ColumnDef;

    fn schema() -> TableSchema {
        TableSchema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("mag", DataType::Float),
            ColumnDef::new("name", DataType::Str).nullable(),
            ColumnDef::new("blob", DataType::Bytes).nullable(),
        ])
    }

    #[test]
    fn split_respects_quotes() {
        assert_eq!(split_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(split_line(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(split_line(r#""say ""hi""",x"#), vec![r#"say "hi""#, "x"]);
        assert_eq!(split_line(""), vec![""]);
        assert_eq!(split_line("a,,c"), vec!["a", "", "c"]);
    }

    #[test]
    fn parse_fields_by_type() {
        assert_eq!(parse_field("42", DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(parse_field("42.0", DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            parse_field("-1.5", DataType::Float).unwrap(),
            Value::Float(-1.5)
        );
        assert_eq!(
            parse_field("hello", DataType::Str).unwrap(),
            Value::str("hello")
        );
        assert_eq!(parse_field("1", DataType::Bool).unwrap(), Value::Bool(true));
        assert_eq!(
            parse_field("0x0102ff", DataType::Bytes).unwrap(),
            Value::bytes([1u8, 2, 255])
        );
        assert_eq!(parse_field("", DataType::Int).unwrap(), Value::Null);
        assert!(parse_field("xyz", DataType::Int).is_err());
        assert!(parse_field("zz", DataType::Bytes).is_err());
    }

    #[test]
    fn parse_document_maps_header_to_columns() {
        let doc = "mag,id,name\n17.5,1,first\n18.5,2,second\n";
        let parsed = parse_document(doc, &schema()).unwrap();
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[0][0], Value::Int(1));
        assert_eq!(parsed.rows[0][1], Value::Float(17.5));
        assert_eq!(parsed.rows[1][2], Value::str("second"));
        // The blob column was absent: NULL.
        assert!(parsed.rows[0][3].is_null());
        assert!(parsed.errors.is_empty());
    }

    #[test]
    fn parse_document_collects_row_errors() {
        let doc = "id,mag\n1,17.5\nnot_an_int,18.0\n3\n4,19.5\n";
        let parsed = parse_document(doc, &schema()).unwrap();
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.errors.len(), 2);
        assert_eq!(parsed.errors[0].line, 3);
        assert!(parsed.errors[0].message.contains("id"));
        assert_eq!(parsed.errors[1].line, 4);
    }

    #[test]
    fn unknown_header_column_is_fatal() {
        let doc = "id,mystery\n1,2\n";
        assert!(parse_document(doc, &schema()).is_err());
        assert!(parse_document("", &schema()).is_err());
    }
}
