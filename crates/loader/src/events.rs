//! The `loadEvents` journal (§9.4).
//!
//! "In addition to loading the data, these DTS scripts write records in a
//! loadEvents table recording the load time, the number of records in the
//! source file, and the number of inserted records. ... Hence, the web
//! interface has an UNDO button for each step."

use skyserver_storage::{ColumnDef, DataType, Database, StorageError, TableSchema, Value};

/// Status of a load step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LoadStatus {
    Success,
    Failed,
    Undone,
}

impl LoadStatus {
    /// Stable string form stored in the journal table.
    pub fn as_str(self) -> &'static str {
        match self {
            LoadStatus::Success => "success",
            LoadStatus::Failed => "failed",
            LoadStatus::Undone => "undone",
        }
    }

    /// Parse the stored string form.
    pub fn parse(s: &str) -> Option<LoadStatus> {
        match s {
            "success" => Some(LoadStatus::Success),
            "failed" => Some(LoadStatus::Failed),
            "undone" => Some(LoadStatus::Undone),
            _ => None,
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoadEvent {
    pub event_id: i64,
    pub table_name: String,
    /// Logical timestamp at the start of the step (inclusive UNDO bound).
    pub start_ts: u64,
    /// Logical timestamp at the end of the step (inclusive UNDO bound).
    pub stop_ts: u64,
    pub rows_in_file: u64,
    pub rows_inserted: u64,
    pub status: LoadStatus,
    /// Human-readable trace of what happened (errors, validation output).
    pub trace: String,
}

/// Name of the journal table.
pub const LOAD_EVENTS_TABLE: &str = "loadEvents";

/// Create the journal table if it does not exist yet.
pub fn ensure_load_events_table(db: &mut Database) -> Result<(), StorageError> {
    if db.has_table(LOAD_EVENTS_TABLE) {
        return Ok(());
    }
    let schema = TableSchema::new(vec![
        ColumnDef::new("eventID", DataType::Int),
        ColumnDef::new("tableName", DataType::Str),
        ColumnDef::new("startTime", DataType::Int),
        ColumnDef::new("stopTime", DataType::Int),
        ColumnDef::new("rowsInFile", DataType::Int),
        ColumnDef::new("rowsInserted", DataType::Int),
        ColumnDef::new("status", DataType::Str),
        ColumnDef::new("trace", DataType::Str),
    ])
    .with_primary_key(&["eventID"]);
    db.create_table(LOAD_EVENTS_TABLE, schema)?;
    db.table_mut(LOAD_EVENTS_TABLE)?.set_description(
        "Journal of data-load steps: one row per DTS-style step, driving the UNDO button.",
    );
    Ok(())
}

/// Append an event to the journal.  Returns the assigned event id.
pub fn record_event(db: &mut Database, event: &LoadEvent) -> Result<i64, StorageError> {
    ensure_load_events_table(db)?;
    let row = vec![
        Value::Int(event.event_id),
        Value::str(&event.table_name),
        Value::Int(event.start_ts as i64),
        Value::Int(event.stop_ts as i64),
        Value::Int(event.rows_in_file as i64),
        Value::Int(event.rows_inserted as i64),
        Value::str(event.status.as_str()),
        Value::str(&event.trace),
    ];
    db.insert(LOAD_EVENTS_TABLE, row)?;
    Ok(event.event_id)
}

/// Read the whole journal back (ordered by event id).
pub fn read_events(db: &Database) -> Result<Vec<LoadEvent>, StorageError> {
    if !db.has_table(LOAD_EVENTS_TABLE) {
        return Ok(Vec::new());
    }
    let table = db.table(LOAD_EVENTS_TABLE)?;
    let mut events: Vec<LoadEvent> = table
        .iter()
        .map(|(_, row)| LoadEvent {
            event_id: row[0].as_i64().unwrap_or(0),
            table_name: row[1].as_str().unwrap_or("").to_string(),
            start_ts: row[2].as_i64().unwrap_or(0) as u64,
            stop_ts: row[3].as_i64().unwrap_or(0) as u64,
            rows_in_file: row[4].as_i64().unwrap_or(0) as u64,
            rows_inserted: row[5].as_i64().unwrap_or(0) as u64,
            status: LoadStatus::parse(row[6].as_str().unwrap_or("")).unwrap_or(LoadStatus::Failed),
            trace: row[7].as_str().unwrap_or("").to_string(),
        })
        .collect();
    events.sort_by_key(|e| e.event_id);
    Ok(events)
}

/// Update the status of an event (used by UNDO).
pub fn update_event_status(
    db: &mut Database,
    event_id: i64,
    status: LoadStatus,
    extra_trace: &str,
) -> Result<bool, StorageError> {
    let table = db.table(LOAD_EVENTS_TABLE)?;
    let target = table
        .iter()
        .find(|(_, row)| row[0].as_i64() == Some(event_id))
        .map(|(id, row)| (id, row.to_vec()));
    let Some((row_id, mut row)) = target else {
        return Ok(false);
    };
    row[6] = Value::str(status.as_str());
    let old_trace = row[7].as_str().unwrap_or("").to_string();
    row[7] = Value::str(format!("{old_trace}\n{extra_trace}").trim());
    db.table_mut(LOAD_EVENTS_TABLE)?.update(row_id, row)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: i64) -> LoadEvent {
        LoadEvent {
            event_id: id,
            table_name: "PhotoObj".into(),
            start_ts: 10,
            stop_ts: 20,
            rows_in_file: 100,
            rows_inserted: 99,
            status: LoadStatus::Success,
            trace: "ok".into(),
        }
    }

    #[test]
    fn record_and_read_round_trip() {
        let mut db = Database::new("load");
        record_event(&mut db, &sample(1)).unwrap();
        record_event(&mut db, &sample(2)).unwrap();
        let events = read_events(&db).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], sample(1));
        assert_eq!(events[1].event_id, 2);
    }

    #[test]
    fn read_from_missing_table_is_empty() {
        let db = Database::new("load");
        assert!(read_events(&db).unwrap().is_empty());
    }

    #[test]
    fn status_update() {
        let mut db = Database::new("load");
        record_event(&mut db, &sample(7)).unwrap();
        assert!(update_event_status(&mut db, 7, LoadStatus::Undone, "undo requested").unwrap());
        assert!(!update_event_status(&mut db, 99, LoadStatus::Undone, "nope").unwrap());
        let events = read_events(&db).unwrap();
        assert_eq!(events[0].status, LoadStatus::Undone);
        assert!(events[0].trace.contains("undo requested"));
    }

    #[test]
    fn status_string_round_trip() {
        for s in [LoadStatus::Success, LoadStatus::Failed, LoadStatus::Undone] {
            assert_eq!(LoadStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(LoadStatus::parse("bogus"), None);
    }
}
