//! Image pyramid construction.
//!
//! "The PNG files are converted to JPEG at various zoom levels, and an image
//! pyramid is built before loading" (§9.4); "A 4-level image pyramid of the
//! images is precomputed, allowing users to see an overview of the sky, and
//! then zoom into specific areas" (§5).
//!
//! We have no telescope pixels, so tiles are synthesised from the catalog:
//! each tile is a tiny grayscale bitmap onto which the field's objects are
//! splatted with brightness proportional to their r-band flux.  What matters
//! for the reproduction is the pyramid *structure* (zoom levels, tile
//! addressing, blobs stored as database rows) and its byte budget -- both of
//! which the navigator page and Table 1 exercise.

use skyserver_storage::{Database, StorageError, Value};

/// Number of zoom levels in the pyramid (the paper's pyramid has 4).
pub const ZOOM_LEVELS: i64 = 4;
/// Edge length (pixels) of a synthesised tile.
pub const TILE_SIZE: usize = 32;

/// Report of a pyramid build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PyramidReport {
    /// Tiles added (zoom levels 1..4; zoom 0 frames come from the pipeline).
    pub tiles: usize,
    /// Total bytes of tile imagery.
    pub bytes: u64,
}

/// A synthesised grayscale tile.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    pub zoom: i64,
    pub pixels: Vec<u8>,
}

impl Tile {
    /// Render the objects of a sky rectangle into a tile.  `objects` are
    /// `(ra, dec, r_magnitude)` triples.
    pub fn render(
        ra_min: f64,
        ra_max: f64,
        dec_min: f64,
        dec_max: f64,
        zoom: i64,
        objects: &[(f64, f64, f64)],
    ) -> Tile {
        let mut pixels = vec![0u8; TILE_SIZE * TILE_SIZE];
        let ra_span = (ra_max - ra_min).max(1e-9);
        let dec_span = (dec_max - dec_min).max(1e-9);
        for &(ra, dec, mag) in objects {
            if ra < ra_min || ra > ra_max || dec < dec_min || dec > dec_max {
                continue;
            }
            let x = (((ra - ra_min) / ra_span) * (TILE_SIZE as f64 - 1.0)) as usize;
            let y = (((dec - dec_min) / dec_span) * (TILE_SIZE as f64 - 1.0)) as usize;
            // Brighter (smaller magnitude) objects paint brighter pixels.
            let brightness = (255.0 * ((24.0 - mag).clamp(0.0, 10.0) / 10.0)) as u8;
            let idx = y * TILE_SIZE + x;
            pixels[idx] = pixels[idx].max(brightness);
        }
        Tile { zoom, pixels }
    }

    /// Serialise the tile as a minimal PGM (portable graymap) blob.
    pub fn to_blob(&self) -> Vec<u8> {
        let mut blob = format!("P5 {TILE_SIZE} {TILE_SIZE} 255\n").into_bytes();
        blob.extend_from_slice(&self.pixels);
        blob
    }

    /// Fraction of non-black pixels (used to sanity-check that fields with
    /// objects produce non-empty imagery).
    pub fn coverage(&self) -> f64 {
        self.pixels.iter().filter(|&&p| p > 0).count() as f64 / self.pixels.len() as f64
    }
}

/// Build the zoomed-out pyramid levels as extra `Frame` rows (band = -1
/// marks a colour-composite tile, zoom 1..=3 are the coarser levels).
pub fn build_pyramid(db: &mut Database, timestamp: u64) -> Result<PyramidReport, StorageError> {
    // Collect field geometry and object photometry up front.
    struct FieldInfo {
        field_id: i64,
        ra: f64,
        dec: f64,
        ra_width: f64,
        dec_width: f64,
    }
    let fields: Vec<FieldInfo> = {
        let table = db.table("Field")?;
        let s = table.schema();
        let (i_id, i_ra, i_dec, i_rw, i_dw) = (
            s.column_index("fieldID").expect("fieldID"),
            s.column_index("ra").expect("ra"),
            s.column_index("dec").expect("dec"),
            s.column_index("raWidth").expect("raWidth"),
            s.column_index("decWidth").expect("decWidth"),
        );
        table
            .iter()
            .map(|(_, r)| FieldInfo {
                field_id: r[i_id].as_i64().unwrap_or(0),
                ra: r[i_ra].as_f64().unwrap_or(0.0),
                dec: r[i_dec].as_f64().unwrap_or(0.0),
                ra_width: r[i_rw].as_f64().unwrap_or(0.1),
                dec_width: r[i_dw].as_f64().unwrap_or(0.1),
            })
            .collect()
    };
    let objects: Vec<(f64, f64, f64, i64)> = {
        let table = db.table("PhotoObj")?;
        let s = table.schema();
        let (i_ra, i_dec, i_mag, i_field) = (
            s.column_index("ra").expect("ra"),
            s.column_index("dec").expect("dec"),
            s.column_index("modelMag_r").expect("modelMag_r"),
            s.column_index("fieldID").expect("fieldID"),
        );
        table
            .iter()
            .map(|(_, r)| {
                (
                    r[i_ra].as_f64().unwrap_or(0.0),
                    r[i_dec].as_f64().unwrap_or(0.0),
                    r[i_mag].as_f64().unwrap_or(22.0),
                    r[i_field].as_i64().unwrap_or(0),
                )
            })
            .collect()
    };
    let mut next_frame_id = {
        let frame = db.table("Frame")?;
        let idx = frame.schema().column_index("frameID").expect("frameID");
        frame
            .iter()
            .map(|(_, r)| r[idx].as_i64().unwrap_or(0))
            .max()
            .unwrap_or(0)
    };
    let mut report = PyramidReport { tiles: 0, bytes: 0 };
    let mut rows = Vec::new();
    // Zoom level z groups 4^z fields into one tile; we approximate by taking
    // every 4^z-th field as the tile anchor and widening its footprint.
    for zoom in 1..ZOOM_LEVELS {
        let step = 4usize.pow(zoom as u32);
        for anchor in fields.iter().step_by(step) {
            let scale = step as f64;
            let ra_min = anchor.ra - anchor.ra_width * scale / 2.0;
            let ra_max = anchor.ra + anchor.ra_width * scale / 2.0;
            let dec_min = anchor.dec - anchor.dec_width * scale / 2.0;
            let dec_max = anchor.dec + anchor.dec_width * scale / 2.0;
            let in_area: Vec<(f64, f64, f64)> = objects
                .iter()
                .filter(|(ra, dec, _, _)| {
                    *ra >= ra_min && *ra <= ra_max && *dec >= dec_min && *dec <= dec_max
                })
                .map(|(ra, dec, mag, _)| (*ra, *dec, *mag))
                .collect();
            let tile = Tile::render(ra_min, ra_max, dec_min, dec_max, zoom, &in_area);
            let blob = tile.to_blob();
            next_frame_id += 1;
            report.tiles += 1;
            report.bytes += blob.len() as u64;
            rows.push(vec![
                Value::Int(next_frame_id),
                Value::Int(anchor.field_id),
                Value::Int(-1), // composite "colour" band
                Value::Int(zoom),
                Value::Int(blob.len() as i64),
            ]);
        }
    }
    db.insert_many("Frame", rows, timestamp)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_rendering_places_bright_objects() {
        let objects = vec![(10.05, 0.05, 14.0), (10.02, 0.08, 21.0)];
        let tile = Tile::render(10.0, 10.1, 0.0, 0.1, 1, &objects);
        assert!(tile.coverage() > 0.0);
        let blob = tile.to_blob();
        assert!(blob.starts_with(b"P5"));
        assert_eq!(blob.len(), TILE_SIZE * TILE_SIZE + b"P5 32 32 255\n".len());
        // The bright (mag 14) object must paint a brighter pixel than the
        // faint one.
        let max = *tile.pixels.iter().max().unwrap();
        assert!(max > 200);
    }

    #[test]
    fn objects_outside_the_tile_are_ignored() {
        let tile = Tile::render(10.0, 10.1, 0.0, 0.1, 1, &[(50.0, 50.0, 12.0)]);
        assert_eq!(tile.coverage(), 0.0);
    }
}
