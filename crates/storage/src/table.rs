//! Heap tables: the base row storage.
//!
//! Rows are appended to a vector and addressed by a stable [`RowId`].
//! Deletions flip a tombstone flag instead of moving rows, which keeps
//! RowIds valid for secondary indices.  Every row carries a logical insert
//! timestamp; this is what the loader's **UNDO** step uses (§9.4: "Undo
//! consists of deleting all records of that table with an insert time
//! between the bad load step start and stop times").

use crate::schema::{SchemaError, TableSchema};
use crate::value::Value;

/// Stable identifier of a row within a table (its slot index).
pub type RowId = usize;

/// Logical timestamp type (monotonically increasing, supplied by the
/// database-wide clock).
pub type Timestamp = u64;

/// A heap table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: TableSchema,
    rows: Vec<Vec<Value>>,
    /// Insert timestamp per row (parallel to `rows`).
    insert_ts: Vec<Timestamp>,
    /// Tombstones (parallel to `rows`).
    deleted: Vec<bool>,
    live_rows: usize,
    data_bytes: u64,
    /// Free-text description shown by the schema browser.
    description: String,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: TableSchema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            insert_ts: Vec::new(),
            deleted: Vec::new(),
            live_rows: 0,
            data_bytes: 0,
            description: String::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Human-readable description (documentation).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Set the description.
    pub fn set_description(&mut self, d: impl Into<String>) {
        self.description = d.into();
    }

    /// Number of live (non-deleted) rows.
    pub fn row_count(&self) -> usize {
        self.live_rows
    }

    /// Number of slots including tombstones.
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Approximate bytes of live row data (the paper's Table 1 reports data
    /// bytes per table; indices roughly double it).
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Average bytes per live row (0 for an empty table).
    pub fn avg_row_bytes(&self) -> u64 {
        if self.live_rows == 0 {
            0
        } else {
            self.data_bytes / self.live_rows as u64
        }
    }

    /// Insert a row after validating it against the schema.  Returns the new
    /// RowId.
    pub fn insert(&mut self, row: Vec<Value>, ts: Timestamp) -> Result<RowId, SchemaError> {
        let row = self.schema.validate_row(row)?;
        let bytes: u64 = row.iter().map(|v| v.byte_size() as u64).sum();
        let id = self.rows.len();
        self.rows.push(row);
        self.insert_ts.push(ts);
        self.deleted.push(false);
        self.live_rows += 1;
        self.data_bytes += bytes;
        Ok(id)
    }

    /// Fetch a live row by id.
    pub fn get(&self, id: RowId) -> Option<&[Value]> {
        if id < self.rows.len() && !self.deleted[id] {
            Some(&self.rows[id])
        } else {
            None
        }
    }

    /// Fetch a single cell of a live row.
    pub fn get_cell(&self, id: RowId, column: usize) -> Option<&Value> {
        self.get(id).and_then(|r| r.get(column))
    }

    /// Insert timestamp of a row (even if deleted).
    pub fn insert_timestamp(&self, id: RowId) -> Option<Timestamp> {
        self.insert_ts.get(id).copied()
    }

    /// Mark a row deleted; returns true if it was live.
    pub fn delete(&mut self, id: RowId) -> bool {
        if id < self.rows.len() && !self.deleted[id] {
            self.deleted[id] = true;
            self.live_rows -= 1;
            let bytes: u64 = self.rows[id].iter().map(|v| v.byte_size() as u64).sum();
            self.data_bytes = self.data_bytes.saturating_sub(bytes);
            true
        } else {
            false
        }
    }

    /// Update a live row in place (validating the new values).
    pub fn update(&mut self, id: RowId, row: Vec<Value>) -> Result<bool, SchemaError> {
        if id >= self.rows.len() || self.deleted[id] {
            return Ok(false);
        }
        let row = self.schema.validate_row(row)?;
        let old_bytes: u64 = self.rows[id].iter().map(|v| v.byte_size() as u64).sum();
        let new_bytes: u64 = row.iter().map(|v| v.byte_size() as u64).sum();
        self.rows[id] = row;
        self.data_bytes = self.data_bytes - old_bytes + new_bytes;
        Ok(true)
    }

    /// Delete every row whose insert timestamp falls in `[start, stop]`.
    /// This is the loader's UNDO primitive.  Returns the number of rows
    /// removed.
    pub fn delete_by_timestamp_range(&mut self, start: Timestamp, stop: Timestamp) -> usize {
        let mut removed = 0;
        for id in 0..self.rows.len() {
            if !self.deleted[id] && self.insert_ts[id] >= start && self.insert_ts[id] <= stop {
                self.delete(id);
                removed += 1;
            }
        }
        removed
    }

    /// Iterate over live rows as `(RowId, &row)`.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .filter(move |(i, _)| !self.deleted[*i])
            .map(|(i, r)| (i, r.as_slice()))
    }

    /// Iterate over all live RowIds.
    pub fn row_ids(&self) -> impl Iterator<Item = RowId> + '_ {
        (0..self.rows.len()).filter(move |&i| !self.deleted[i])
    }

    /// Split the live row-id space into `n` roughly equal chunks for the
    /// parallel scan operator.
    pub fn partition_row_ids(&self, n: usize) -> Vec<(RowId, RowId)> {
        let total = self.rows.len();
        if total == 0 || n == 0 {
            return vec![];
        }
        let n = n.min(total);
        let chunk = total.div_ceil(n);
        (0..n)
            .map(|i| (i * chunk, ((i + 1) * chunk).min(total)))
            .filter(|(lo, hi)| lo < hi)
            .collect()
    }

    /// Iterate live rows whose slot index lies in `[lo, hi)` (for parallel
    /// scan partitions).
    pub fn iter_range(&self, lo: RowId, hi: RowId) -> impl Iterator<Item = (RowId, &[Value])> {
        let hi = hi.min(self.rows.len());
        (lo..hi)
            .filter(move |&i| !self.deleted[i])
            .map(move |i| (i, self.rows[i].as_slice()))
    }

    /// Remove all rows (used by reload steps and tests).
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.insert_ts.clear();
        self.deleted.clear();
        self.live_rows = 0;
        self.data_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("mag", DataType::Float),
            ColumnDef::new("name", DataType::Str).nullable(),
        ])
        .with_primary_key(&["id"]);
        Table::new("objects", schema)
    }

    fn row(id: i64, mag: f64, name: &str) -> Vec<Value> {
        vec![Value::Int(id), Value::Float(mag), Value::str(name)]
    }

    #[test]
    fn insert_and_get() {
        let mut t = table();
        let r0 = t.insert(row(1, 17.5, "a"), 10).unwrap();
        let r1 = t.insert(row(2, 18.5, "b"), 11).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get(r0).unwrap()[0], Value::Int(1));
        assert_eq!(t.get(r1).unwrap()[2], Value::str("b"));
        assert_eq!(t.get_cell(r1, 1), Some(&Value::Float(18.5)));
        assert_eq!(t.insert_timestamp(r1), Some(11));
    }

    #[test]
    fn delete_hides_rows_and_updates_counts() {
        let mut t = table();
        let r0 = t.insert(row(1, 17.5, "a"), 1).unwrap();
        t.insert(row(2, 18.5, "b"), 1).unwrap();
        let bytes_before = t.data_bytes();
        assert!(t.delete(r0));
        assert!(!t.delete(r0), "double delete reports false");
        assert_eq!(t.row_count(), 1);
        assert!(t.get(r0).is_none());
        assert!(t.data_bytes() < bytes_before);
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn update_replaces_values() {
        let mut t = table();
        let r0 = t.insert(row(1, 17.5, "a"), 1).unwrap();
        assert!(t.update(r0, row(1, 12.0, "brighter")).unwrap());
        assert_eq!(t.get_cell(r0, 1), Some(&Value::Float(12.0)));
        assert!(!t.update(999, row(9, 9.0, "x")).unwrap());
    }

    #[test]
    fn undo_by_timestamp_window() {
        let mut t = table();
        t.insert(row(1, 10.0, "keep"), 100).unwrap();
        t.insert(row(2, 11.0, "bad"), 200).unwrap();
        t.insert(row(3, 12.0, "bad"), 205).unwrap();
        t.insert(row(4, 13.0, "keep"), 300).unwrap();
        let removed = t.delete_by_timestamp_range(150, 250);
        assert_eq!(removed, 2);
        assert_eq!(t.row_count(), 2);
        let remaining: Vec<i64> = t.iter().map(|(_, r)| r[0].as_i64().unwrap()).collect();
        assert_eq!(remaining, vec![1, 4]);
    }

    #[test]
    fn schema_violations_bubble_up() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)], 0).is_err());
        assert!(t
            .insert(vec![Value::Null, Value::Float(1.0), Value::Null], 0)
            .is_err());
    }

    #[test]
    fn byte_accounting_tracks_inserts() {
        let mut t = table();
        assert_eq!(t.data_bytes(), 0);
        t.insert(row(1, 1.0, "abcd"), 0).unwrap();
        // 8 (int) + 8 (float) + 2+4 (str) = 22
        assert_eq!(t.data_bytes(), 22);
        assert_eq!(t.avg_row_bytes(), 22);
    }

    #[test]
    fn partition_covers_all_rows() {
        let mut t = table();
        for i in 0..100 {
            t.insert(row(i, i as f64, "x"), 0).unwrap();
        }
        let parts = t.partition_row_ids(7);
        let mut seen = 0;
        for (lo, hi) in &parts {
            seen += t.iter_range(*lo, *hi).count();
        }
        assert_eq!(seen, 100);
        assert!(parts.len() <= 7);
    }

    #[test]
    fn partition_of_empty_table_is_empty() {
        let t = table();
        assert!(t.partition_row_ids(4).is_empty());
    }

    #[test]
    fn truncate_resets() {
        let mut t = table();
        t.insert(row(1, 1.0, "a"), 0).unwrap();
        t.truncate();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.data_bytes(), 0);
        assert_eq!(t.iter().count(), 0);
    }
}
