//! Columnar tables: typed column segments with zone maps.
//!
//! Rows are appended into fixed-size **segments** of [`SEGMENT_ROWS`] slots.
//! Within a segment every column is a typed array (`i64` / `f64` /
//! dictionary-encoded strings / bools / byte blobs) plus a validity bitmap,
//! and each column carries a **zone map**: the min/max of its non-null
//! values and a null count.  Scans can prune a whole segment when a
//! predicate's range is disjoint from the zone, and the vectorized executor
//! runs tight monomorphic loops directly over the arrays.
//!
//! The row-oriented API (insert / get / iter / update / delete) is kept as a
//! compatibility surface so the loader, indexes and admin writes keep
//! working; `get`/`iter` now materialize owned rows from the columns.
//!
//! Rows are addressed by a stable [`RowId`] (global slot index: segment
//! number x [`SEGMENT_ROWS`] + offset).  Deletions flip a tombstone flag
//! instead of moving rows, which keeps RowIds valid for secondary indices.
//! Every row carries a logical insert timestamp; this is what the loader's
//! **UNDO** step uses (§9.4: "Undo consists of deleting all records of that
//! table with an insert time between the bad load step start and stop
//! times").
//!
//! Zone maps are maintained conservatively: inserts tighten them, updates
//! only widen them, and deletes leave them untouched — a zone is always a
//! superset of the live values, so pruning on it is sound (it can only be
//! less effective than optimal, never wrong).

use crate::schema::{SchemaError, TableSchema};
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Stable identifier of a row within a table (its global slot index).
pub type RowId = usize;

/// Logical timestamp type (monotonically increasing, supplied by the
/// database-wide clock).
pub type Timestamp = u64;

/// Number of row slots per segment.  Fixed so `RowId -> (segment, offset)`
/// is a shift/mask, and sized so a segment's hot columns fit in L2 while
/// zone maps stay selective.
pub const SEGMENT_ROWS: usize = 4096;

// ---------------------------------------------------------------------------
// Column storage
// ---------------------------------------------------------------------------

/// The typed array behind one column of one segment.
///
/// Slots whose validity bit is false (NULLs) hold an unspecified sentinel
/// (`0` / `0.0` / `u32::MAX` / `false` / empty) — readers must consult the
/// validity bitmap before touching the array value.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// `bigint` columns.
    Int(Vec<i64>),
    /// `float` columns.
    Float(Vec<f64>),
    /// `varchar` columns, dictionary-encoded per segment: `codes[i]`
    /// indexes into `dict` (except NULL slots, which hold `u32::MAX`).
    Str {
        /// Distinct strings of this segment, in first-seen order.
        dict: Vec<Arc<str>>,
        /// Per-slot dictionary codes.
        codes: Vec<u32>,
    },
    /// `varbinary` columns.
    Bytes(Vec<Arc<[u8]>>),
    /// `bit` columns.
    Bool(Vec<bool>),
}

impl ColumnData {
    fn new(ty: DataType) -> ColumnData {
        match ty {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str {
                dict: Vec::new(),
                codes: Vec::new(),
            },
            DataType::Bytes => ColumnData::Bytes(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        }
    }
}

/// One column of one segment: the typed array, its validity bitmap and its
/// zone map.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    /// `true` = the slot holds a real value; `false` = NULL.
    validity: Vec<bool>,
    /// Minimum non-null value ever stored in this segment (conservative
    /// under deletes/updates).
    zone_min: Option<Value>,
    /// Maximum non-null value ever stored in this segment (conservative).
    zone_max: Option<Value>,
    /// Number of NULLs ever stored in this segment (conservative: deletes
    /// do not decrement it).
    null_count: usize,
    /// Exact bytes of this column's *live* values.
    bytes: u64,
    /// Dictionary lookup for `Str` columns (dedup on append).
    dict_lookup: HashMap<Arc<str>, u32>,
}

impl Column {
    fn new(ty: DataType) -> Column {
        Column {
            data: ColumnData::new(ty),
            validity: Vec::new(),
            zone_min: None,
            zone_max: None,
            null_count: 0,
            bytes: 0,
            dict_lookup: HashMap::new(),
        }
    }

    /// The typed value array.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Validity bitmap (`true` = non-null).
    pub fn validity(&self) -> &[bool] {
        &self.validity
    }

    /// Zone-map minimum over the segment's non-null values (None when the
    /// segment holds no non-null value for this column).
    pub fn zone_min(&self) -> Option<&Value> {
        self.zone_min.as_ref()
    }

    /// Zone-map maximum over the segment's non-null values.
    pub fn zone_max(&self) -> Option<&Value> {
        self.zone_max.as_ref()
    }

    /// Conservative count of NULLs stored in this segment (never less than
    /// the number of live NULLs).
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Exact bytes of this column's live values.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Widen the zone map to cover `v` (non-null values only).
    fn widen_zone(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        match &self.zone_min {
            Some(m) if v.total_cmp(m) != std::cmp::Ordering::Less => {}
            _ => self.zone_min = Some(v.clone()),
        }
        match &self.zone_max {
            Some(m) if v.total_cmp(m) != std::cmp::Ordering::Greater => {}
            _ => self.zone_max = Some(v.clone()),
        }
    }

    /// Append a validated value (matching the column's declared type, or
    /// NULL) to the end of the array.
    fn push(&mut self, v: &Value) {
        let valid = !v.is_null();
        self.validity.push(valid);
        self.widen_zone(v);
        self.bytes += v.byte_size() as u64;
        match (&mut self.data, v) {
            (ColumnData::Int(arr), Value::Int(i)) => arr.push(*i),
            (ColumnData::Int(arr), Value::Null) => arr.push(0),
            (ColumnData::Float(arr), Value::Float(f)) => arr.push(*f),
            (ColumnData::Float(arr), Value::Null) => arr.push(0.0),
            (ColumnData::Str { dict, codes }, Value::Str(s)) => {
                let code = match self.dict_lookup.get(s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(Arc::clone(s));
                        self.dict_lookup.insert(Arc::clone(s), c);
                        c
                    }
                };
                codes.push(code);
            }
            (ColumnData::Str { codes, .. }, Value::Null) => codes.push(u32::MAX),
            (ColumnData::Bytes(arr), Value::Bytes(b)) => arr.push(Arc::clone(b)),
            (ColumnData::Bytes(arr), Value::Null) => arr.push(Arc::from(&[][..])),
            (ColumnData::Bool(arr), Value::Bool(b)) => arr.push(*b),
            (ColumnData::Bool(arr), Value::Null) => arr.push(false),
            (data, v) => unreachable!("schema validation let {v:?} into a {data:?} column"),
        }
    }

    /// Overwrite the value at `off` (update path).  Zone maps only widen.
    fn set(&mut self, off: usize, v: &Value) {
        self.bytes = self.bytes.saturating_sub(self.value_bytes(off));
        self.bytes += v.byte_size() as u64;
        self.validity[off] = !v.is_null();
        self.widen_zone(v);
        match (&mut self.data, v) {
            (ColumnData::Int(arr), Value::Int(i)) => arr[off] = *i,
            (ColumnData::Int(arr), Value::Null) => arr[off] = 0,
            (ColumnData::Float(arr), Value::Float(f)) => arr[off] = *f,
            (ColumnData::Float(arr), Value::Null) => arr[off] = 0.0,
            (ColumnData::Str { dict, codes }, Value::Str(s)) => {
                let code = match self.dict_lookup.get(s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(Arc::clone(s));
                        self.dict_lookup.insert(Arc::clone(s), c);
                        c
                    }
                };
                codes[off] = code;
            }
            (ColumnData::Str { codes, .. }, Value::Null) => codes[off] = u32::MAX,
            (ColumnData::Bytes(arr), Value::Bytes(b)) => arr[off] = Arc::clone(b),
            (ColumnData::Bytes(arr), Value::Null) => arr[off] = Arc::from(&[][..]),
            (ColumnData::Bool(arr), Value::Bool(b)) => arr[off] = *b,
            (ColumnData::Bool(arr), Value::Null) => arr[off] = false,
            (data, v) => unreachable!("schema validation let {v:?} into a {data:?} column"),
        }
    }

    /// Materialize the value at `off` as a [`Value`].
    pub fn value(&self, off: usize) -> Value {
        if !self.validity[off] {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(arr) => Value::Int(arr[off]),
            ColumnData::Float(arr) => Value::Float(arr[off]),
            ColumnData::Str { dict, codes } => Value::Str(Arc::clone(&dict[codes[off] as usize])),
            ColumnData::Bytes(arr) => Value::Bytes(Arc::clone(&arr[off])),
            ColumnData::Bool(arr) => Value::Bool(arr[off]),
        }
    }

    /// Bytes the value at `off` accounts for.
    fn value_bytes(&self, off: usize) -> u64 {
        if !self.validity[off] {
            return 1; // NULL
        }
        (match &self.data {
            ColumnData::Int(_) | ColumnData::Float(_) => 8,
            ColumnData::Str { dict, codes } => 2 + dict[codes[off] as usize].len(),
            ColumnData::Bytes(arr) => 4 + arr[off].len(),
            ColumnData::Bool(_) => 1,
        }) as u64
    }
}

// ---------------------------------------------------------------------------
// Segments
// ---------------------------------------------------------------------------

/// One fixed-size horizontal slice of a table: per-column typed arrays plus
/// the per-slot insert timestamps and tombstones.
#[derive(Debug, Clone)]
pub struct Segment {
    columns: Vec<Column>,
    insert_ts: Vec<Timestamp>,
    deleted: Vec<bool>,
    live: usize,
}

impl Segment {
    fn new(schema: &TableSchema) -> Segment {
        Segment {
            columns: schema.columns().iter().map(|c| Column::new(c.ty)).collect(),
            insert_ts: Vec::new(),
            deleted: Vec::new(),
            live: 0,
        }
    }

    /// Number of occupied slots (live + tombstoned).
    pub fn slot_count(&self) -> usize {
        self.deleted.len()
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        self.live
    }

    /// Tombstone bitmap (`true` = deleted).
    pub fn deleted(&self) -> &[bool] {
        &self.deleted
    }

    /// Is the slot at `off` live?
    pub fn is_live(&self, off: usize) -> bool {
        off < self.deleted.len() && !self.deleted[off]
    }

    /// The column at position `c`.
    pub fn column(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    /// Materialize one cell.
    pub fn value(&self, off: usize, c: usize) -> Value {
        self.columns[c].value(off)
    }

    /// Materialize a full row.
    fn row(&self, off: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(off)).collect()
    }
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

/// A columnar table: an append-only vector of [`Segment`]s behind the
/// row-oriented compatibility API.
///
/// Segments are held behind [`Arc`] so cloning a table (the release
/// manager's copy-on-write snapshot path) shares every immutable segment;
/// a mutation after the clone copies only the one segment it touches
/// (`Arc::make_mut`).  Segment identity (`Arc::as_ptr`) is what release
/// diffs use to tell shared segments from rewritten ones.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: TableSchema,
    segments: Vec<Arc<Segment>>,
    /// Total occupied slots across all segments.
    slots: usize,
    live_rows: usize,
    data_bytes: u64,
    /// Free-text description shown by the schema browser.
    description: String,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: TableSchema) -> Self {
        Table {
            name: name.into(),
            schema,
            segments: Vec::new(),
            slots: 0,
            live_rows: 0,
            data_bytes: 0,
            description: String::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Human-readable description (documentation).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Set the description.
    pub fn set_description(&mut self, d: impl Into<String>) {
        self.description = d.into();
    }

    /// Number of live (non-deleted) rows.
    pub fn row_count(&self) -> usize {
        self.live_rows
    }

    /// Number of slots including tombstones.
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// Approximate bytes of live row data (the paper's Table 1 reports data
    /// bytes per table; indices roughly double it).
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Average bytes per live row (0 for an empty table).
    pub fn avg_row_bytes(&self) -> u64 {
        if self.live_rows == 0 {
            0
        } else {
            self.data_bytes / self.live_rows as u64
        }
    }

    /// The table's segments, in slot order (segment `s` covers slots
    /// `[s * SEGMENT_ROWS, s * SEGMENT_ROWS + slot_count)`).  Segments are
    /// shared copy-on-write between cloned tables; compare with
    /// `Arc::as_ptr` to test segment identity across snapshots.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    #[inline]
    fn locate(&self, id: RowId) -> Option<(usize, usize)> {
        if id >= self.slots {
            return None;
        }
        Some((id / SEGMENT_ROWS, id % SEGMENT_ROWS))
    }

    /// Insert a row after validating it against the schema.  Returns the new
    /// RowId.
    pub fn insert(&mut self, row: Vec<Value>, ts: Timestamp) -> Result<RowId, SchemaError> {
        let row = self.schema.validate_row(row)?;
        let bytes: u64 = row.iter().map(|v| v.byte_size() as u64).sum();
        if self
            .segments
            .last()
            .is_none_or(|s| s.slot_count() == SEGMENT_ROWS)
        {
            self.segments.push(Arc::new(Segment::new(&self.schema)));
        }
        let seg = Arc::make_mut(self.segments.last_mut().expect("segment just ensured"));
        for (c, v) in row.iter().enumerate() {
            seg.columns[c].push(v);
        }
        seg.insert_ts.push(ts);
        seg.deleted.push(false);
        seg.live += 1;
        let id = self.slots;
        self.slots += 1;
        self.live_rows += 1;
        self.data_bytes += bytes;
        Ok(id)
    }

    /// Fetch a live row by id, materialized from the column arrays.
    pub fn get(&self, id: RowId) -> Option<Vec<Value>> {
        let (s, off) = self.locate(id)?;
        let seg = &self.segments[s];
        if seg.is_live(off) {
            Some(seg.row(off))
        } else {
            None
        }
    }

    /// Fetch a live row by id, materializing only the cells named in
    /// `columns` (storage ordinals); every other cell is [`Value::Null`].
    ///
    /// The row keeps its full width so schema ordinals stay valid.  The
    /// caller must guarantee the skipped cells are never read — the SQL
    /// planner's per-alias scan-column union (every column the statement
    /// references on that alias) provides exactly that guarantee for
    /// index-lookup joins, where gathering all 50+ catalog columns per
    /// probe would dominate the join cost.
    pub fn get_sparse(&self, id: RowId, columns: &[usize]) -> Option<Vec<Value>> {
        let (s, off) = self.locate(id)?;
        let seg = &self.segments[s];
        if !seg.is_live(off) {
            return None;
        }
        let mut row = vec![Value::Null; seg.columns.len()];
        for &c in columns {
            if c < seg.columns.len() {
                row[c] = seg.value(off, c);
            }
        }
        Some(row)
    }

    /// Fetch a single cell of a live row.
    pub fn get_cell(&self, id: RowId, column: usize) -> Option<Value> {
        let (s, off) = self.locate(id)?;
        let seg = &self.segments[s];
        if seg.is_live(off) && column < seg.columns.len() {
            Some(seg.value(off, column))
        } else {
            None
        }
    }

    /// Insert timestamp of a row (even if deleted).
    pub fn insert_timestamp(&self, id: RowId) -> Option<Timestamp> {
        let (s, off) = self.locate(id)?;
        self.segments[s].insert_ts.get(off).copied()
    }

    /// Mark a row deleted; returns true if it was live.  Zone maps stay
    /// untouched (conservative supersets of the live values).
    pub fn delete(&mut self, id: RowId) -> bool {
        let Some((s, off)) = self.locate(id) else {
            return false;
        };
        if !self.segments[s].is_live(off) {
            return false;
        }
        let seg = Arc::make_mut(&mut self.segments[s]);
        let bytes: u64 = seg.columns.iter().map(|c| c.value_bytes(off)).sum();
        for c in seg.columns.iter_mut() {
            c.bytes = c.bytes.saturating_sub(c.value_bytes(off));
        }
        seg.deleted[off] = true;
        seg.live -= 1;
        self.live_rows -= 1;
        self.data_bytes = self.data_bytes.saturating_sub(bytes);
        true
    }

    /// Update a live row in place (validating the new values).  Zone maps
    /// only widen — the old values are not removed from them.
    pub fn update(&mut self, id: RowId, row: Vec<Value>) -> Result<bool, SchemaError> {
        let Some((s, off)) = self.locate(id) else {
            return Ok(false);
        };
        if !self.segments[s].is_live(off) {
            return Ok(false);
        }
        let row = self.schema.validate_row(row)?;
        let seg = Arc::make_mut(&mut self.segments[s]);
        let old_bytes: u64 = seg.columns.iter().map(|c| c.value_bytes(off)).sum();
        let new_bytes: u64 = row.iter().map(|v| v.byte_size() as u64).sum();
        for (c, v) in row.iter().enumerate() {
            seg.columns[c].set(off, v);
        }
        self.data_bytes = self.data_bytes - old_bytes + new_bytes;
        Ok(true)
    }

    /// Delete every row whose insert timestamp falls in `[start, stop]`.
    /// This is the loader's UNDO primitive.  Returns the number of rows
    /// removed.
    pub fn delete_by_timestamp_range(&mut self, start: Timestamp, stop: Timestamp) -> usize {
        let mut removed = 0;
        for id in 0..self.slots {
            let (s, off) = (id / SEGMENT_ROWS, id % SEGMENT_ROWS);
            if self.segments[s].is_live(off) {
                let ts = self.segments[s].insert_ts[off];
                if ts >= start && ts <= stop {
                    self.delete(id);
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Iterate over live rows as `(RowId, row)`, materializing each row from
    /// the column arrays.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, Vec<Value>)> + '_ {
        self.iter_range(0, self.slots)
    }

    /// Iterate over all live RowIds.
    pub fn row_ids(&self) -> impl Iterator<Item = RowId> + '_ {
        (0..self.slots).filter(move |&i| self.segments[i / SEGMENT_ROWS].is_live(i % SEGMENT_ROWS))
    }

    /// Split the live row-id space into at most `n` chunks of whole
    /// segments for the parallel scan operator.  Segment alignment keeps
    /// per-worker zone pruning and byte accounting identical to the serial
    /// scan.
    pub fn partition_row_ids(&self, n: usize) -> Vec<(RowId, RowId)> {
        let total = self.slots;
        if total == 0 || n == 0 {
            return vec![];
        }
        let nsegs = self.segments.len();
        let n = n.min(nsegs);
        let per = nsegs.div_ceil(n);
        (0..n)
            .map(|i| {
                let lo = i * per * SEGMENT_ROWS;
                let hi = (((i + 1) * per) * SEGMENT_ROWS).min(total);
                (lo, hi)
            })
            .filter(|(lo, hi)| lo < hi)
            .collect()
    }

    /// Iterate live rows whose slot index lies in `[lo, hi)` (for parallel
    /// scan partitions).
    pub fn iter_range(
        &self,
        lo: RowId,
        hi: RowId,
    ) -> impl Iterator<Item = (RowId, Vec<Value>)> + '_ {
        let hi = hi.min(self.slots);
        (lo..hi).filter_map(move |i| {
            let (s, off) = (i / SEGMENT_ROWS, i % SEGMENT_ROWS);
            let seg = &self.segments[s];
            if seg.is_live(off) {
                Some((i, seg.row(off)))
            } else {
                None
            }
        })
    }

    /// Remove all rows (used by reload steps and tests).
    pub fn truncate(&mut self) {
        self.segments.clear();
        self.slots = 0;
        self.live_rows = 0;
        self.data_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("mag", DataType::Float),
            ColumnDef::new("name", DataType::Str).nullable(),
        ])
        .with_primary_key(&["id"]);
        Table::new("objects", schema)
    }

    fn row(id: i64, mag: f64, name: &str) -> Vec<Value> {
        vec![Value::Int(id), Value::Float(mag), Value::str(name)]
    }

    #[test]
    fn insert_and_get() {
        let mut t = table();
        let r0 = t.insert(row(1, 17.5, "a"), 10).unwrap();
        let r1 = t.insert(row(2, 18.5, "b"), 11).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get(r0).unwrap()[0], Value::Int(1));
        assert_eq!(t.get(r1).unwrap()[2], Value::str("b"));
        assert_eq!(t.get_cell(r1, 1), Some(Value::Float(18.5)));
        assert_eq!(t.insert_timestamp(r1), Some(11));
    }

    #[test]
    fn delete_hides_rows_and_updates_counts() {
        let mut t = table();
        let r0 = t.insert(row(1, 17.5, "a"), 1).unwrap();
        t.insert(row(2, 18.5, "b"), 1).unwrap();
        let bytes_before = t.data_bytes();
        assert!(t.delete(r0));
        assert!(!t.delete(r0), "double delete reports false");
        assert_eq!(t.row_count(), 1);
        assert!(t.get(r0).is_none());
        assert!(t.data_bytes() < bytes_before);
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn update_replaces_values() {
        let mut t = table();
        let r0 = t.insert(row(1, 17.5, "a"), 1).unwrap();
        assert!(t.update(r0, row(1, 12.0, "brighter")).unwrap());
        assert_eq!(t.get_cell(r0, 1), Some(Value::Float(12.0)));
        assert!(!t.update(999, row(9, 9.0, "x")).unwrap());
    }

    #[test]
    fn undo_by_timestamp_window() {
        let mut t = table();
        t.insert(row(1, 10.0, "keep"), 100).unwrap();
        t.insert(row(2, 11.0, "bad"), 200).unwrap();
        t.insert(row(3, 12.0, "bad"), 205).unwrap();
        t.insert(row(4, 13.0, "keep"), 300).unwrap();
        let removed = t.delete_by_timestamp_range(150, 250);
        assert_eq!(removed, 2);
        assert_eq!(t.row_count(), 2);
        let remaining: Vec<i64> = t.iter().map(|(_, r)| r[0].as_i64().unwrap()).collect();
        assert_eq!(remaining, vec![1, 4]);
    }

    #[test]
    fn schema_violations_bubble_up() {
        let mut t = table();
        assert!(t.insert(vec![Value::Int(1)], 0).is_err());
        assert!(t
            .insert(vec![Value::Null, Value::Float(1.0), Value::Null], 0)
            .is_err());
    }

    #[test]
    fn byte_accounting_tracks_inserts() {
        let mut t = table();
        assert_eq!(t.data_bytes(), 0);
        t.insert(row(1, 1.0, "abcd"), 0).unwrap();
        // 8 (int) + 8 (float) + 2+4 (str) = 22
        assert_eq!(t.data_bytes(), 22);
        assert_eq!(t.avg_row_bytes(), 22);
    }

    #[test]
    fn partition_covers_all_rows() {
        let mut t = table();
        for i in 0..100 {
            t.insert(row(i, i as f64, "x"), 0).unwrap();
        }
        let parts = t.partition_row_ids(7);
        let mut seen = 0;
        for (lo, hi) in &parts {
            seen += t.iter_range(*lo, *hi).count();
        }
        assert_eq!(seen, 100);
        assert!(parts.len() <= 7);
    }

    #[test]
    fn partition_of_empty_table_is_empty() {
        let t = table();
        assert!(t.partition_row_ids(4).is_empty());
    }

    #[test]
    fn truncate_resets() {
        let mut t = table();
        t.insert(row(1, 1.0, "a"), 0).unwrap();
        t.truncate();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.data_bytes(), 0);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn rows_spill_into_multiple_segments() {
        let mut t = table();
        let n = SEGMENT_ROWS + 100;
        for i in 0..n {
            t.insert(row(i as i64, i as f64, "x"), 0).unwrap();
        }
        assert_eq!(t.segments().len(), 2);
        assert_eq!(t.segments()[0].slot_count(), SEGMENT_ROWS);
        assert_eq!(t.segments()[1].slot_count(), 100);
        assert_eq!(t.row_count(), n);
        // RowIds address across the segment boundary.
        assert_eq!(
            t.get(SEGMENT_ROWS).unwrap()[0],
            Value::Int(SEGMENT_ROWS as i64)
        );
        // Segment-aligned partitions split on the boundary.
        let parts = t.partition_row_ids(2);
        assert_eq!(parts, vec![(0, SEGMENT_ROWS), (SEGMENT_ROWS, n)]);
    }

    #[test]
    fn zone_maps_track_min_max_and_nulls() {
        let mut t = table();
        t.insert(row(5, 17.5, "b"), 0).unwrap();
        t.insert(row(2, 19.5, "a"), 0).unwrap();
        t.insert(vec![Value::Int(9), Value::Float(16.0), Value::Null], 0)
            .unwrap();
        let seg = &t.segments()[0];
        assert_eq!(seg.column(0).zone_min(), Some(&Value::Int(2)));
        assert_eq!(seg.column(0).zone_max(), Some(&Value::Int(9)));
        assert_eq!(seg.column(1).zone_min(), Some(&Value::Float(16.0)));
        assert_eq!(seg.column(1).zone_max(), Some(&Value::Float(19.5)));
        assert_eq!(seg.column(2).zone_min(), Some(&Value::str("a")));
        assert_eq!(seg.column(2).zone_max(), Some(&Value::str("b")));
        assert_eq!(seg.column(2).null_count(), 1);
        assert_eq!(seg.column(0).null_count(), 0);
    }

    #[test]
    fn updates_widen_zones_conservatively() {
        let mut t = table();
        let r0 = t.insert(row(5, 17.5, "m"), 0).unwrap();
        t.update(r0, row(100, 17.5, "m")).unwrap();
        let seg = &t.segments()[0];
        // Widened to cover the new value; the stale min stays (conservative).
        assert_eq!(seg.column(0).zone_min(), Some(&Value::Int(5)));
        assert_eq!(seg.column(0).zone_max(), Some(&Value::Int(100)));
    }

    #[test]
    fn string_dictionary_dedups_within_a_segment() {
        let mut t = table();
        for i in 0..100 {
            t.insert(row(i, 0.0, if i % 2 == 0 { "even" } else { "odd" }), 0)
                .unwrap();
        }
        let seg = &t.segments()[0];
        match seg.column(2).data() {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes.len(), 100);
                assert_eq!(&*dict[codes[0] as usize], "even");
                assert_eq!(&*dict[codes[1] as usize], "odd");
            }
            other => panic!("expected a Str column, got {other:?}"),
        }
        assert_eq!(seg.column(2).value(3), Value::str("odd"));
    }

    #[test]
    fn column_bytes_are_exact_per_segment() {
        let mut t = table();
        let r0 = t.insert(row(1, 1.0, "abcd"), 0).unwrap();
        t.insert(row(2, 2.0, "xy"), 0).unwrap();
        let seg = &t.segments()[0];
        assert_eq!(seg.column(0).bytes(), 16);
        assert_eq!(seg.column(1).bytes(), 16);
        assert_eq!(seg.column(2).bytes(), (2 + 4) + (2 + 2));
        t.delete(r0);
        let seg = &t.segments()[0];
        assert_eq!(seg.column(0).bytes(), 8);
        assert_eq!(seg.column(2).bytes(), 2 + 2);
    }
}
