//! Named fault-injection sites ("failpoints") for chaos testing.
//!
//! A decade of operating the real SkyServer (see the DR13 retrospective in
//! PAPERS.md) was survival through partial failure: disks misread, workers
//! died, caches corrupted — and the site had to keep answering.  This
//! module lets tests and operators *inject* those faults deterministically
//! at named sites threaded through the engine and the web tier, so the
//! chaos suite can prove every fault surfaces as a structured error
//! instead of a dead worker or a poisoned lock.
//!
//! Sites currently wired in:
//!
//! | site | where it fires |
//! |------|----------------|
//! | `storage.segment_read` | per segment in the executor's heap-scan loop |
//! | `executor.batch` | every 256-row executor checkpoint (all plan shapes) |
//! | `cache.insert` | web result/row cache inserts (fault → skip caching) |
//! | `jobs.runner` | just before a batch worker runs a job's SQL |
//! | `http.response_write` | just before a response is written to a socket |
//!
//! Configuration is programmatic ([`configure`] / [`clear`] / [`clear_all`])
//! or via the `SKYSERVER_FAILPOINTS` environment variable, parsed once at
//! first use: a comma-separated list of `site=action` pairs where the
//! action is `error`, `delay(<millis>)` or `panic`, e.g.
//!
//! ```text
//! SKYSERVER_FAILPOINTS="storage.segment_read=error,jobs.runner=delay(50)"
//! ```
//!
//! The check is two relaxed-or-acquire atomic loads when no failpoint is
//! active, so production paths pay nothing for carrying the hooks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed failpoint does when its site is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Return an injected error from the site.
    Error,
    /// Sleep this many milliseconds, then continue normally.
    Delay(u64),
    /// Panic at the site (the chaos suite proves workers survive this).
    Panic,
}

/// Fast path: false ⇒ no site is armed and [`check`] returns immediately.
static ANY_ACTIVE: AtomicBool = AtomicBool::new(false);

/// True once the registry (and with it `SKYSERVER_FAILPOINTS`) has been
/// initialized.  [`armed`] must force that init before trusting
/// [`ANY_ACTIVE`]: the fast path would otherwise short-circuit forever
/// and env-armed sites would never fire.
static ENV_SCANNED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, FailAction>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FailAction>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("SKYSERVER_FAILPOINTS") {
            for (site, action) in parse_spec(&spec) {
                map.insert(site, action);
            }
        }
        if !map.is_empty() {
            ANY_ACTIVE.store(true, Ordering::SeqCst);
        }
        ENV_SCANNED.store(true, Ordering::Release);
        Mutex::new(map)
    })
}

/// Parse a `SKYSERVER_FAILPOINTS`-style spec.  Unparseable entries are
/// skipped: fault injection must never take the server down by itself.
fn parse_spec(spec: &str) -> Vec<(String, FailAction)> {
    spec.split(',')
        .filter_map(|entry| {
            let (site, action) = entry.split_once('=')?;
            let site = site.trim();
            if site.is_empty() {
                return None;
            }
            let action = match action.trim() {
                "error" => FailAction::Error,
                "panic" => FailAction::Panic,
                delay => {
                    let millis = delay.strip_prefix("delay(")?.strip_suffix(')')?;
                    FailAction::Delay(millis.trim().parse().ok()?)
                }
            };
            Some((site.to_string(), action))
        })
        .collect()
}

/// Arm `site` with `action`.  Replaces any previous action for the site.
pub fn configure(site: &str, action: FailAction) {
    let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    map.insert(site.to_string(), action);
    ANY_ACTIVE.store(true, Ordering::SeqCst);
}

/// Disarm `site` (a no-op if it was not armed).
pub fn clear(site: &str) {
    let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    map.remove(site);
    if map.is_empty() {
        ANY_ACTIVE.store(false, Ordering::SeqCst);
    }
}

/// Disarm every site.
pub fn clear_all() {
    let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
    map.clear();
    ANY_ACTIVE.store(false, Ordering::SeqCst);
}

/// The action currently armed at `site`, if any.
pub fn armed(site: &str) -> Option<FailAction> {
    if !ENV_SCANNED.load(Ordering::Acquire) {
        registry();
    }
    if !ANY_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(site)
        .copied()
}

/// The hook a site calls: returns `Err` with an injected message, sleeps,
/// or panics according to the armed action; `Ok(())` when the site is not
/// armed.  The registry lock is released *before* sleeping or panicking,
/// so an injected panic can never poison the registry itself.
pub fn check(site: &str) -> Result<(), String> {
    let Some(action) = armed(site) else {
        return Ok(());
    };
    match action {
        FailAction::Error => Err(format!("injected fault at failpoint {site}")),
        FailAction::Delay(millis) => {
            std::thread::sleep(Duration::from_millis(millis));
            Ok(())
        }
        FailAction::Panic => {
            // skylint: allow(no-panic) panic injection is this module's purpose; the chaos suite proves workers survive it
            panic!("injected panic at failpoint {site}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint state is process-global; tests that touch it serialize on
    // this lock (the chaos suite in the web crate does the same).
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_sites_pass_and_arming_is_reversible() {
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        clear_all();
        assert_eq!(check("storage.segment_read"), Ok(()));
        configure("storage.segment_read", FailAction::Error);
        let err = check("storage.segment_read").unwrap_err();
        assert!(err.contains("storage.segment_read"), "{err}");
        assert_eq!(check("some.other.site"), Ok(()));
        clear("storage.segment_read");
        assert_eq!(check("storage.segment_read"), Ok(()));
        assert!(armed("storage.segment_read").is_none());
    }

    #[test]
    fn delay_sleeps_then_continues() {
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        clear_all();
        configure("jobs.runner", FailAction::Delay(20));
        let started = std::time::Instant::now();
        assert_eq!(check("jobs.runner"), Ok(()));
        assert!(started.elapsed() >= Duration::from_millis(20));
        clear_all();
    }

    #[test]
    fn panic_action_panics_without_poisoning_the_registry() {
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        clear_all();
        configure("executor.batch", FailAction::Panic);
        let result = std::panic::catch_unwind(|| check("executor.batch"));
        assert!(result.is_err(), "the armed panic must fire");
        // The registry survives: it can be reconfigured and read.
        configure("executor.batch", FailAction::Error);
        assert!(check("executor.batch").is_err());
        clear_all();
        assert_eq!(check("executor.batch"), Ok(()));
    }

    #[test]
    fn env_spec_parses_all_three_actions_and_skips_garbage() {
        let spec = "a=error, b=delay(50) ,c=panic,broken,d=delay(x),=error";
        let parsed: HashMap<String, FailAction> = parse_spec(spec).into_iter().collect();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed.get("a"), Some(&FailAction::Error));
        assert_eq!(parsed.get("b"), Some(&FailAction::Delay(50)));
        assert_eq!(parsed.get("c"), Some(&FailAction::Panic));
    }
}
