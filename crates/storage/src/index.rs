//! Secondary B-tree indices with composite keys and included ("covering")
//! columns.
//!
//! Section 9.1.3 of the paper argues that indices replace the hand-built
//! "tag tables" of the ObjectivityDB design: *"An index on fields A, B, and
//! C gives an automatically managed tag table on those 3 attributes plus the
//! primary key -- and the SQL query optimizer automatically uses that index
//! if the query is covered by those fields."*  This module provides exactly
//! that: an ordered map from a composite key (the indexed columns) to row
//! ids, optionally storing extra included column values so covered queries
//! never touch the heap.

use crate::table::{RowId, Table};
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A composite index key: the values of the indexed columns in order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct IndexKey(pub Vec<Value>);

impl IndexKey {
    /// Smallest possible key (used as an open lower bound).
    pub fn min() -> IndexKey {
        IndexKey(vec![])
    }
}

/// One index entry: the row it points at plus any included column values.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// The row this entry points at.
    pub row_id: RowId,
    /// Values of the included (covering) columns, in declaration order.
    pub included: Vec<Value>,
}

/// Definition of an index: which columns are keys and which are included.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// The indexed table.
    pub table: String,
    /// Key column names in order.
    pub key_columns: Vec<String>,
    /// Included (non-key, covering) column names.
    pub included_columns: Vec<String>,
    /// Whether duplicate keys are rejected.
    pub unique: bool,
}

impl IndexDef {
    /// A non-unique index on the given key columns.
    pub fn new(name: impl Into<String>, table: impl Into<String>, keys: &[&str]) -> Self {
        IndexDef {
            name: name.into(),
            table: table.into(),
            key_columns: keys.iter().map(|s| s.to_string()).collect(),
            included_columns: Vec::new(),
            unique: false,
        }
    }

    /// Add included (covering) columns.
    pub fn include(mut self, cols: &[&str]) -> Self {
        self.included_columns = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Mark the index unique.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    /// The leading key column — the one seeks and index-lookup joins bind
    /// to.  Indexes always have at least one key column.
    pub fn leading_column(&self) -> &str {
        &self.key_columns[0]
    }

    /// All columns the index can answer from (keys then included).
    pub fn covered_columns(&self) -> Vec<&str> {
        self.key_columns
            .iter()
            .chain(self.included_columns.iter())
            .map(String::as_str)
            .collect()
    }

    /// Does the index cover every column in `needed` (case-insensitive)?
    pub fn covers(&self, needed: &[&str]) -> bool {
        needed.iter().all(|n| {
            self.covered_columns()
                .iter()
                .any(|c| c.eq_ignore_ascii_case(n))
        })
    }
}

/// A B-tree secondary index over one table.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    def: IndexDef,
    /// Column positions of the key columns in the base table.
    key_positions: Vec<usize>,
    /// Column positions of the included columns in the base table.
    included_positions: Vec<usize>,
    tree: BTreeMap<IndexKey, Vec<IndexEntry>>,
    entries: usize,
    /// Approximate index size in bytes (key + entry overhead), for the
    /// "indices approximately double the space" accounting of Table 1.
    bytes: u64,
}

/// Errors raised while building or maintaining an index.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// A key or included column does not exist on the table.
    UnknownColumn(String),
    /// A duplicate key was inserted into a unique index.
    UniqueViolation {
        /// The duplicated key, rendered for the error message.
        key: String,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::UnknownColumn(c) => write!(f, "index references unknown column {c}"),
            IndexError::UniqueViolation { key } => {
                write!(f, "unique index violation for key {key}")
            }
        }
    }
}

impl std::error::Error for IndexError {}

impl BTreeIndex {
    /// Build an index over the current contents of `table`.
    pub fn build(def: IndexDef, table: &Table) -> Result<Self, IndexError> {
        let schema = table.schema();
        let key_positions = def
            .key_columns
            .iter()
            .map(|c| {
                schema
                    .column_index(c)
                    .ok_or_else(|| IndexError::UnknownColumn(c.clone()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let included_positions = def
            .included_columns
            .iter()
            .map(|c| {
                schema
                    .column_index(c)
                    .ok_or_else(|| IndexError::UnknownColumn(c.clone()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut index = BTreeIndex {
            def,
            key_positions,
            included_positions,
            tree: BTreeMap::new(),
            entries: 0,
            bytes: 0,
        };
        for (row_id, row) in table.iter() {
            index.insert_row(row_id, &row)?;
        }
        Ok(index)
    }

    /// The index definition.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Number of entries (== number of indexed rows).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Approximate size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Extract the key for a row.
    pub fn key_of(&self, row: &[Value]) -> IndexKey {
        IndexKey(self.key_positions.iter().map(|&p| row[p].clone()).collect())
    }

    /// Add a row to the index (called on insert).
    pub fn insert_row(&mut self, row_id: RowId, row: &[Value]) -> Result<(), IndexError> {
        let key = self.key_of(row);
        let included = self
            .included_positions
            .iter()
            .map(|&p| row[p].clone())
            .collect::<Vec<_>>();
        let key_bytes: u64 = key.0.iter().map(|v| v.byte_size() as u64).sum();
        let inc_bytes: u64 = included.iter().map(|v| v.byte_size() as u64).sum();
        let bucket = self.tree.entry(key).or_default();
        if self.def.unique && !bucket.is_empty() {
            return Err(IndexError::UniqueViolation {
                key: format!(
                    "({})",
                    self.key_positions
                        .iter()
                        .map(|&p| row[p].to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
        bucket.push(IndexEntry { row_id, included });
        self.entries += 1;
        self.bytes += key_bytes + inc_bytes + 16;
        Ok(())
    }

    /// Remove a row from the index (called on delete).
    pub fn remove_row(&mut self, row_id: RowId, row: &[Value]) {
        let key = self.key_of(row);
        if let Some(bucket) = self.tree.get_mut(&key) {
            let before = bucket.len();
            bucket.retain(|e| e.row_id != row_id);
            let removed = before - bucket.len();
            self.entries -= removed;
            if bucket.is_empty() {
                self.tree.remove(&key);
            }
        }
    }

    /// Exact-match lookup on the full key.
    pub fn seek_exact(&self, key: &IndexKey) -> Vec<&IndexEntry> {
        self.tree
            .get(key)
            .map(|b| b.iter().collect())
            .unwrap_or_default()
    }

    /// Range scan over `[lo, hi]` of full or prefix keys (inclusive bounds;
    /// pass `None` for an open bound).  Entries are returned in key order.
    pub fn seek_range(
        &self,
        lo: Option<&IndexKey>,
        hi: Option<&IndexKey>,
    ) -> Vec<(&IndexKey, &IndexEntry)> {
        let lower: Bound<&IndexKey> = match lo {
            Some(k) => Bound::Included(k),
            None => Bound::Unbounded,
        };
        let upper: Bound<&IndexKey> = match hi {
            Some(k) => Bound::Included(k),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (k, bucket) in self.tree.range((lower, upper)) {
            for e in bucket {
                out.push((k, e));
            }
        }
        out
    }

    /// Prefix scan: all entries whose first key column equals `first`.
    ///
    /// This is what an equality predicate on the leading column of a
    /// composite index compiles to (e.g. `run = 1000` against the
    /// `(run, camcol, field)` index).  It starts the B-tree cursor at the
    /// first key with that leading value and stops as soon as the leading
    /// value changes, so the cost is proportional to the number of matches.
    pub fn seek_prefix(&self, first: &Value) -> Vec<(&IndexKey, &IndexEntry)> {
        let start = IndexKey(vec![first.clone()]);
        let mut out = Vec::new();
        for (k, bucket) in self
            .tree
            .range(start..)
            .take_while(|(k, _)| k.0.first() == Some(first))
        {
            for e in bucket {
                out.push((k, e));
            }
        }
        out
    }

    /// Iterate all entries in key order (an "index scan": the 10-100x
    /// smaller column-subset scan the paper describes).
    pub fn scan(&self) -> impl Iterator<Item = (&IndexKey, &IndexEntry)> {
        self.tree
            .iter()
            .flat_map(|(k, bucket)| bucket.iter().map(move |e| (k, e)))
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::DataType;

    fn table_with_rows() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::new("objID", DataType::Int),
            ColumnDef::new("htmID", DataType::Int),
            ColumnDef::new("ra", DataType::Float),
            ColumnDef::new("type", DataType::Str),
        ])
        .with_primary_key(&["objID"]);
        let mut t = Table::new("photoObj", schema);
        let rows = [
            (1, 500, 10.0, "galaxy"),
            (2, 400, 20.0, "star"),
            (3, 450, 30.0, "galaxy"),
            (4, 500, 40.0, "star"),
            (5, 700, 50.0, "galaxy"),
        ];
        for (id, htm, ra, ty) in rows {
            t.insert(
                vec![
                    Value::Int(id),
                    Value::Int(htm),
                    Value::Float(ra),
                    Value::str(ty),
                ],
                0,
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn build_and_exact_seek() {
        let t = table_with_rows();
        let idx = BTreeIndex::build(IndexDef::new("ix_htm", "photoObj", &["htmID"]), &t).unwrap();
        assert_eq!(idx.len(), 5);
        let hits = idx.seek_exact(&IndexKey(vec![Value::Int(500)]));
        assert_eq!(hits.len(), 2);
        assert_eq!(idx.distinct_keys(), 4);
    }

    #[test]
    fn range_scan_is_ordered_and_bounded() {
        let t = table_with_rows();
        let idx = BTreeIndex::build(IndexDef::new("ix_htm", "photoObj", &["htmID"]), &t).unwrap();
        let lo = IndexKey(vec![Value::Int(400)]);
        let hi = IndexKey(vec![Value::Int(500)]);
        let hits = idx.seek_range(Some(&lo), Some(&hi));
        assert_eq!(hits.len(), 4);
        let keys: Vec<i64> = hits.iter().map(|(k, _)| k.0[0].as_i64().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(keys.iter().all(|&k| (400..=500).contains(&k)));
    }

    #[test]
    fn covering_index_stores_included_values() {
        let t = table_with_rows();
        let idx = BTreeIndex::build(
            IndexDef::new("ix_type_ra", "photoObj", &["type"]).include(&["ra", "objID"]),
            &t,
        )
        .unwrap();
        let hits = idx.seek_exact(&IndexKey(vec![Value::str("galaxy")]));
        assert_eq!(hits.len(), 3);
        for e in hits {
            assert_eq!(e.included.len(), 2);
            assert!(e.included[0].as_f64().is_some());
        }
        assert!(idx.def().covers(&["type", "ra", "objid"]));
        assert!(!idx.def().covers(&["type", "htmID"]));
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let t = table_with_rows();
        assert!(
            BTreeIndex::build(IndexDef::new("pk", "photoObj", &["objID"]).unique(), &t).is_ok()
        );
        let err = BTreeIndex::build(IndexDef::new("uq_htm", "photoObj", &["htmID"]).unique(), &t)
            .unwrap_err();
        assert!(matches!(err, IndexError::UniqueViolation { .. }));
    }

    #[test]
    fn unknown_column_errors() {
        let t = table_with_rows();
        let err =
            BTreeIndex::build(IndexDef::new("bad", "photoObj", &["nonexistent"]), &t).unwrap_err();
        assert_eq!(err, IndexError::UnknownColumn("nonexistent".into()));
    }

    #[test]
    fn maintenance_on_insert_and_delete() {
        let mut t = table_with_rows();
        let mut idx =
            BTreeIndex::build(IndexDef::new("ix_htm", "photoObj", &["htmID"]), &t).unwrap();
        let rid = t
            .insert(
                vec![
                    Value::Int(6),
                    Value::Int(450),
                    Value::Float(60.0),
                    Value::str("star"),
                ],
                0,
            )
            .unwrap();
        idx.insert_row(rid, &t.get(rid).unwrap()).unwrap();
        assert_eq!(idx.seek_exact(&IndexKey(vec![Value::Int(450)])).len(), 2);
        let row = t.get(rid).unwrap();
        t.delete(rid);
        idx.remove_row(rid, &row);
        assert_eq!(idx.seek_exact(&IndexKey(vec![Value::Int(450)])).len(), 1);
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn prefix_scan_on_composite_key() {
        let t = table_with_rows();
        let idx = BTreeIndex::build(
            IndexDef::new("ix_type_htm", "photoObj", &["type", "htmID"]),
            &t,
        )
        .unwrap();
        let hits = idx.seek_prefix(&Value::str("galaxy"));
        assert_eq!(hits.len(), 3);
        let hits = idx.seek_prefix(&Value::str("star"));
        assert_eq!(hits.len(), 2);
        assert!(idx.seek_prefix(&Value::str("quasar")).is_empty());
    }

    #[test]
    fn scan_visits_everything_in_key_order() {
        let t = table_with_rows();
        let idx = BTreeIndex::build(IndexDef::new("ix_ra", "photoObj", &["ra"]), &t).unwrap();
        let ras: Vec<f64> = idx.scan().map(|(k, _)| k.0[0].as_f64().unwrap()).collect();
        let mut sorted = ras.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(ras, sorted);
        assert_eq!(ras.len(), 5);
        assert!(idx.bytes() > 0);
    }
}
