//! Error type shared by the storage engine.

use crate::index::IndexError;
use crate::schema::SchemaError;
use std::fmt;

/// Errors raised by catalog and data operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Table (or view) name not found in the catalog.
    UnknownTable(String),
    /// Release name not found in the release catalog.
    UnknownRelease(String),
    /// Index name not found.
    UnknownIndex(String),
    /// An object with the same name already exists.
    DuplicateName(String),
    /// A row failed schema validation.
    Schema(SchemaError),
    /// An index build or maintenance failure.
    Index(IndexError),
    /// A foreign-key constraint was violated.
    ForeignKeyViolation {
        /// The referencing table.
        table: String,
        /// The violated constraint's name.
        constraint: String,
        /// The offending key value.
        value: String,
    },
    /// Generic constraint violation.
    ConstraintViolation(String),
    /// A read failed (today only injected by [`crate::failpoints`]; the
    /// slot where a real I/O error class would surface).
    ReadFailed(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table {t}"),
            StorageError::UnknownRelease(r) => write!(f, "unknown release {r}"),
            StorageError::UnknownIndex(i) => write!(f, "unknown index {i}"),
            StorageError::DuplicateName(n) => write!(f, "object named {n} already exists"),
            StorageError::Schema(e) => write!(f, "schema error: {e}"),
            StorageError::Index(e) => write!(f, "index error: {e}"),
            StorageError::ForeignKeyViolation {
                table,
                constraint,
                value,
            } => write!(
                f,
                "foreign key {constraint} on {table} violated by value {value}"
            ),
            StorageError::ConstraintViolation(m) => write!(f, "constraint violation: {m}"),
            StorageError::ReadFailed(m) => write!(f, "read failed: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<SchemaError> for StorageError {
    fn from(e: SchemaError) -> Self {
        StorageError::Schema(e)
    }
}

impl From<IndexError> for StorageError {
    fn from(e: IndexError) -> Self {
        StorageError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnknownTable("photoObjX".into());
        assert!(e.to_string().contains("photoObjX"));
        let e = StorageError::ForeignKeyViolation {
            table: "specObj".into(),
            constraint: "fk_specobj_plate".into(),
            value: "42".into(),
        };
        let s = e.to_string();
        assert!(s.contains("specObj") && s.contains("42"));
    }

    #[test]
    fn conversions() {
        let s: StorageError = SchemaError::NullViolation {
            column: "ra".into(),
        }
        .into();
        assert!(matches!(s, StorageError::Schema(_)));
        let i: StorageError = IndexError::UnknownColumn("x".into()).into();
        assert!(matches!(i, StorageError::Index(_)));
    }
}
