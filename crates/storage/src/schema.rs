//! Table schemas: column definitions, primary keys and descriptions.
//!
//! The SkyServer documents every table and column online (the SkyServerQA
//! object browser reads that metadata), so column definitions here carry an
//! optional human-readable description which the schema-browser endpoint
//! serves.

use crate::value::{DataType, Value};
use std::fmt;

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (case preserved, matched case-insensitively).
    pub name: String,
    /// Column type.
    pub ty: DataType,
    /// Whether NULLs are allowed.  The SkyServer insists all fields are
    /// non-null (§9.1.3), so most columns set this to `false`.
    pub nullable: bool,
    /// Default value used when an insert omits the column.
    pub default: Option<Value>,
    /// Documentation string surfaced by the schema browser.
    pub description: String,
    /// Unit string (mag, deg, arcsec, ...) for the metadata browser.
    pub unit: String,
}

impl ColumnDef {
    /// A NOT NULL column with no default.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
            default: None,
            description: String::new(),
            unit: String::new(),
        }
    }

    /// Allow NULLs.
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }

    /// Attach a default value.
    pub fn with_default(mut self, v: Value) -> Self {
        self.default = Some(v);
        self
    }

    /// Attach a description.
    pub fn describe(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    /// Attach a unit.
    pub fn with_unit(mut self, u: impl Into<String>) -> Self {
        self.unit = u.into();
        self
    }
}

/// A table schema: ordered columns plus an optional primary key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableSchema {
    columns: Vec<ColumnDef>,
    /// Indices (into `columns`) of the primary-key columns, in key order.
    primary_key: Vec<usize>,
}

impl TableSchema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        TableSchema {
            columns,
            primary_key: Vec::new(),
        }
    }

    /// Declare the primary key by column names.  Panics if a column is
    /// unknown (schema construction is programmer-controlled).
    pub fn with_primary_key(mut self, key_columns: &[&str]) -> Self {
        self.primary_key = key_columns
            .iter()
            .map(|name| {
                self.column_index(name)
                    .unwrap_or_else(|| panic!("primary key column {name} not in schema"))
            })
            .collect();
        self
    }

    /// All columns in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column definition by case-insensitive name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Primary-key column indices.
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// Primary-key column names.
    pub fn primary_key_names(&self) -> Vec<&str> {
        self.primary_key
            .iter()
            .map(|&i| self.columns[i].name.as_str())
            .collect()
    }

    /// Validate a row against the schema: length, types (with coercion) and
    /// nullability.  Returns the (possibly coerced) row.
    pub fn validate_row(&self, row: Vec<Value>) -> Result<Vec<Value>, SchemaError> {
        if row.len() != self.columns.len() {
            return Err(SchemaError::ColumnCountMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (value, col) in row.into_iter().zip(&self.columns) {
            if value.is_null() {
                if !col.nullable {
                    if let Some(default) = &col.default {
                        out.push(default.clone());
                        continue;
                    }
                    return Err(SchemaError::NullViolation {
                        column: col.name.clone(),
                    });
                }
                out.push(Value::Null);
                continue;
            }
            match value.coerce(col.ty) {
                Some(v) => out.push(v),
                None => {
                    return Err(SchemaError::TypeMismatch {
                        column: col.name.clone(),
                        expected: col.ty,
                        got: value.data_type(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Render `CREATE TABLE`-style DDL for documentation purposes.
    pub fn to_ddl(&self, table_name: &str) -> String {
        let mut s = format!("CREATE TABLE {table_name} (\n");
        for (i, c) in self.columns.iter().enumerate() {
            s.push_str(&format!(
                "    {} {}{}{}",
                c.name,
                c.ty.sql_name(),
                if c.nullable { "" } else { " NOT NULL" },
                if i + 1 < self.columns.len() || !self.primary_key.is_empty() {
                    ",\n"
                } else {
                    "\n"
                }
            ));
        }
        if !self.primary_key.is_empty() {
            s.push_str(&format!(
                "    PRIMARY KEY ({})\n",
                self.primary_key_names().join(", ")
            ));
        }
        s.push(')');
        s
    }
}

/// Errors raised by schema validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// A row had the wrong number of values.
    ColumnCountMismatch {
        /// Columns the schema defines.
        expected: usize,
        /// Values the row supplied.
        got: usize,
    },
    /// NULL in a non-nullable column.
    NullViolation {
        /// The violated column.
        column: String,
    },
    /// A value's type does not match its column.
    TypeMismatch {
        /// The violated column.
        column: String,
        /// The column's declared type.
        expected: DataType,
        /// The supplied value's type (None for NULL).
        got: Option<DataType>,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::ColumnCountMismatch { expected, got } => {
                write!(
                    f,
                    "row has {got} values but the table has {expected} columns"
                )
            }
            SchemaError::NullViolation { column } => {
                write!(f, "column {column} is NOT NULL but received NULL")
            }
            SchemaError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "column {column} expects {expected} but received {}",
                got.map(|t| t.to_string()).unwrap_or_else(|| "NULL".into())
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(vec![
            ColumnDef::new("objID", DataType::Int).describe("unique object id"),
            ColumnDef::new("ra", DataType::Float).with_unit("deg"),
            ColumnDef::new("name", DataType::Str).nullable(),
            ColumnDef::new("flags", DataType::Int).with_default(Value::Int(0)),
        ])
        .with_primary_key(&["objID"])
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("objid"), Some(0));
        assert_eq!(s.column_index("RA"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.column("NAME").unwrap().ty, DataType::Str);
    }

    #[test]
    fn primary_key_names() {
        let s = schema();
        assert_eq!(s.primary_key_names(), vec!["objID"]);
        assert_eq!(s.primary_key(), &[0]);
    }

    #[test]
    fn validate_accepts_good_row_and_coerces() {
        let s = schema();
        let row = s
            .validate_row(vec![
                Value::str("17"),
                Value::Int(185),
                Value::Null,
                Value::Int(3),
            ])
            .unwrap();
        assert_eq!(row[0], Value::Int(17));
        assert_eq!(row[1], Value::Float(185.0));
        assert!(row[2].is_null());
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let s = schema();
        let err = s.validate_row(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, SchemaError::ColumnCountMismatch { .. }));
    }

    #[test]
    fn validate_rejects_null_in_not_null_column() {
        let s = schema();
        let err = s
            .validate_row(vec![
                Value::Null,
                Value::Float(1.0),
                Value::Null,
                Value::Int(0),
            ])
            .unwrap_err();
        assert!(matches!(err, SchemaError::NullViolation { .. }));
    }

    #[test]
    fn validate_uses_default_for_null_in_defaulted_column() {
        let s = schema();
        let row = s
            .validate_row(vec![
                Value::Int(1),
                Value::Float(1.0),
                Value::Null,
                Value::Null,
            ])
            .unwrap();
        assert_eq!(row[3], Value::Int(0));
    }

    #[test]
    fn validate_rejects_uncoercible() {
        let s = schema();
        let err = s
            .validate_row(vec![
                Value::str("not a number"),
                Value::Float(1.0),
                Value::Null,
                Value::Int(0),
            ])
            .unwrap_err();
        assert!(matches!(err, SchemaError::TypeMismatch { .. }));
    }

    #[test]
    fn ddl_rendering_mentions_all_columns() {
        let ddl = schema().to_ddl("photoObj");
        assert!(ddl.contains("CREATE TABLE photoObj"));
        assert!(ddl.contains("objID bigint NOT NULL"));
        assert!(ddl.contains("name varchar,"));
        assert!(ddl.contains("PRIMARY KEY (objID)"));
    }
}
