//! Table and column statistics for the cost-based optimizer.
//!
//! The DR1 release process (Abazajian et al. 2003) treats each catalog load
//! as a batch publish -- the natural point to scan the data once and
//! summarize it.  This module collects, per table: the live row count, and
//! per column the min/max (from the segment zone maps), the live NULL
//! count, a distinct-value estimate (a KMV sketch over the typed segment
//! arrays) and, for numeric columns, an equi-width histogram.
//!
//! Collection is a *segment sweep*: it walks the typed columnar arrays and
//! validity/tombstone bitmaps directly and never materializes a row.  The
//! planner's selectivity model (`skyserver-sql::planner::stats`) turns these
//! summaries into cardinality estimates.
//!
//! Statistics are a snapshot: single-row inserts, updates and deletes leave
//! them stale until the next [`crate::Database::analyze_table`] call.  Batch
//! ingest paths (`insert_many`, the CSV loader) re-analyze automatically.

use crate::table::{ColumnData, Table, Timestamp};
use crate::value::{DataType, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// Number of buckets in a numeric column histogram.
pub const HISTOGRAM_BINS: usize = 32;

/// Size of the KMV (k-minimum-values) sketch behind the NDV estimate.
pub const KMV_K: usize = 256;

/// An equi-width histogram over a numeric column's live non-null values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the first bucket.
    pub lo: f64,
    /// Inclusive upper bound of the last bucket.
    pub hi: f64,
    /// Per-bucket live-row counts ([`HISTOGRAM_BINS`] buckets of equal
    /// width spanning `[lo, hi]`).
    pub counts: Vec<u64>,
    /// Total rows counted (the sum of `counts`).
    pub total: u64,
}

impl Histogram {
    fn new(lo: f64, hi: f64) -> Histogram {
        Histogram {
            lo,
            hi,
            counts: vec![0; HISTOGRAM_BINS],
            total: 0,
        }
    }

    fn bin_of(&self, v: f64) -> usize {
        if self.hi <= self.lo {
            return 0;
        }
        let frac = (v - self.lo) / (self.hi - self.lo);
        ((frac * HISTOGRAM_BINS as f64) as usize).min(HISTOGRAM_BINS - 1)
    }

    fn add(&mut self, v: f64) {
        let bin = self.bin_of(v);
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Estimated fraction of rows with value `< bound` (linear
    /// interpolation inside the straddled bucket).
    pub fn fraction_below(&self, bound: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if bound <= self.lo {
            return 0.0;
        }
        if bound >= self.hi || self.hi <= self.lo {
            return 1.0;
        }
        let width = (self.hi - self.lo) / HISTOGRAM_BINS as f64;
        let pos = (bound - self.lo) / width;
        let full = (pos as usize).min(HISTOGRAM_BINS - 1);
        let mut below: u64 = self.counts[..full].iter().sum();
        let partial = self.counts[full] as f64 * (pos - full as f64).clamp(0.0, 1.0);
        below = below.min(self.total);
        ((below as f64 + partial) / self.total as f64).clamp(0.0, 1.0)
    }
}

/// Statistics for one column of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest non-null value (conservative: from the zone maps, so it may
    /// predate deleted rows).
    pub min: Value,
    /// Largest non-null value (conservative, see `min`).
    pub max: Value,
    /// Exact number of live NULLs.
    pub null_count: u64,
    /// Estimated number of distinct live non-null values (exact below
    /// [`KMV_K`] distinct values, a KMV estimate above).
    pub ndv: u64,
    /// Equi-width histogram (numeric columns only).
    pub histogram: Option<Histogram>,
}

/// Statistics for one table, collected by [`analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Live rows at collection time.
    pub row_count: u64,
    /// Logical timestamp of the collection (stale-ness marker).
    pub collected_at: Timestamp,
    /// Per-column statistics, in schema order.  `None` for columns with no
    /// live non-null values.
    pub columns: Vec<Option<ColumnStats>>,
}

impl TableStats {
    /// Statistics for the column at schema ordinal `ordinal`.
    pub fn column(&self, ordinal: usize) -> Option<&ColumnStats> {
        self.columns.get(ordinal).and_then(Option::as_ref)
    }
}

/// A k-minimum-values sketch: keeps the [`KMV_K`] smallest distinct 64-bit
/// hashes seen; the k-th smallest estimates the distinct count.
struct KmvSketch {
    smallest: BTreeSet<u64>,
}

impl KmvSketch {
    fn new() -> KmvSketch {
        KmvSketch {
            smallest: BTreeSet::new(),
        }
    }

    fn observe(&mut self, hash: u64) {
        if self.smallest.len() < KMV_K {
            self.smallest.insert(hash);
            return;
        }
        if let Some(&current_max) = self.smallest.iter().next_back() {
            if hash < current_max && self.smallest.insert(hash) {
                self.smallest.remove(&current_max);
            }
        }
    }

    fn estimate(&self) -> u64 {
        if self.smallest.len() < KMV_K {
            return self.smallest.len() as u64;
        }
        match self.smallest.iter().next_back() {
            // kth smallest of n uniform hashes in [0, M): n ≈ (k-1)·M/kth.
            Some(&kth) if kth > 0 => {
                ((KMV_K - 1) as f64 * (u64::MAX as f64) / kth as f64).round() as u64
            }
            _ => self.smallest.len() as u64,
        }
    }
}

/// `DefaultHasher::new()` uses fixed keys, so these hashes (and therefore
/// the NDV estimates) are deterministic across runs.
fn hash_of(h: impl Hash) -> u64 {
    let mut hasher = DefaultHasher::new();
    h.hash(&mut hasher);
    hasher.finish()
}

/// Per-column accumulator driven by the segment sweep.
struct ColumnAccumulator {
    nulls: u64,
    live_values: u64,
    sketch: KmvSketch,
    histogram: Option<Histogram>,
}

/// Collect statistics for `table`, stamping them with `collected_at`.
///
/// One pass over the segments: zone maps give min/max and the histogram
/// bounds for free; the typed arrays are swept once (skipping tombstones)
/// for NULL counts, NDV sketches and histogram buckets.
pub fn analyze(table: &Table, collected_at: Timestamp) -> TableStats {
    let schema = table.schema();
    let ncols = schema.columns().len();

    // Zone-map pass: global min/max per column (conservative).
    let mut minmax: Vec<Option<(Value, Value)>> = vec![None; ncols];
    for seg in table.segments() {
        for (c, slot) in minmax.iter_mut().enumerate() {
            let col = seg.column(c);
            if let (Some(lo), Some(hi)) = (col.zone_min(), col.zone_max()) {
                match slot {
                    Some((cur_lo, cur_hi)) => {
                        if lo.total_cmp(cur_lo) == std::cmp::Ordering::Less {
                            *cur_lo = lo.clone();
                        }
                        if hi.total_cmp(cur_hi) == std::cmp::Ordering::Greater {
                            *cur_hi = hi.clone();
                        }
                    }
                    None => *slot = Some((lo.clone(), hi.clone())),
                }
            }
        }
    }

    let mut accs: Vec<ColumnAccumulator> = (0..ncols)
        .map(|c| {
            let numeric = matches!(schema.columns()[c].ty, DataType::Int | DataType::Float);
            let histogram = match (&minmax[c], numeric) {
                (Some((lo, hi)), true) => match (lo.as_f64(), hi.as_f64()) {
                    (Some(lo), Some(hi)) => Some(Histogram::new(lo, hi)),
                    _ => None,
                },
                _ => None,
            };
            ColumnAccumulator {
                nulls: 0,
                live_values: 0,
                sketch: KmvSketch::new(),
                histogram,
            }
        })
        .collect();

    // Value pass: sweep the typed arrays, skipping tombstoned slots.
    for seg in table.segments() {
        let slots = seg.slot_count();
        for (c, acc) in accs.iter_mut().enumerate() {
            let col = seg.column(c);
            let validity = col.validity();
            for off in 0..slots {
                if !seg.is_live(off) {
                    continue;
                }
                if !validity[off] {
                    acc.nulls += 1;
                    continue;
                }
                acc.live_values += 1;
                match col.data() {
                    ColumnData::Int(arr) => {
                        acc.sketch.observe(hash_of(arr[off]));
                        if let Some(h) = acc.histogram.as_mut() {
                            h.add(arr[off] as f64);
                        }
                    }
                    ColumnData::Float(arr) => {
                        acc.sketch.observe(hash_of(arr[off].to_bits()));
                        if let Some(h) = acc.histogram.as_mut() {
                            h.add(arr[off]);
                        }
                    }
                    ColumnData::Str { dict, codes } => {
                        let code = codes[off];
                        if let Some(s) = dict.get(code as usize) {
                            acc.sketch.observe(hash_of(s.as_bytes()));
                        }
                    }
                    ColumnData::Bytes(arr) => {
                        acc.sketch.observe(hash_of(arr[off].as_ref()));
                    }
                    ColumnData::Bool(arr) => {
                        acc.sketch.observe(hash_of(arr[off]));
                    }
                }
            }
        }
    }

    let columns = accs
        .into_iter()
        .enumerate()
        .map(|(c, acc)| {
            let (min, max) = match &minmax[c] {
                Some((lo, hi)) => (lo.clone(), hi.clone()),
                None => return None,
            };
            if acc.live_values == 0 && acc.nulls == 0 {
                return None;
            }
            Some(ColumnStats {
                min,
                max,
                null_count: acc.nulls,
                ndv: acc.sketch.estimate().max(u64::from(acc.live_values > 0)),
                histogram: acc.histogram.filter(|h| h.total > 0),
            })
        })
        .collect();

    TableStats {
        row_count: table.row_count() as u64,
        collected_at,
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};

    fn numbers_table(values: impl IntoIterator<Item = Option<i64>>) -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("v", DataType::Int).nullable(),
        ]);
        let mut t = Table::new("t", schema);
        for (i, v) in values.into_iter().enumerate() {
            let v = v.map(Value::Int).unwrap_or(Value::Null);
            t.insert(vec![Value::Int(i as i64), v], 1)
                .expect("insert test row");
        }
        t
    }

    #[test]
    fn exact_ndv_below_sketch_size() {
        let t = numbers_table((0..100).map(|i| Some(i % 10)));
        let stats = analyze(&t, 1);
        assert_eq!(stats.row_count, 100);
        let v = stats.column(1).expect("stats for v");
        assert_eq!(v.ndv, 10);
        assert_eq!(v.null_count, 0);
        assert_eq!(v.min, Value::Int(0));
        assert_eq!(v.max, Value::Int(9));
    }

    #[test]
    fn kmv_estimate_close_on_large_distinct_counts() {
        // 20k distinct values, well above the sketch size.
        let t = numbers_table((0..20_000).map(Some));
        let stats = analyze(&t, 1);
        let v = stats.column(1).expect("stats for v");
        let err = (v.ndv as f64 - 20_000.0).abs() / 20_000.0;
        assert!(
            err < 0.15,
            "NDV estimate {} more than 15% off true 20000",
            v.ndv
        );
    }

    #[test]
    fn histogram_counts_match_a_known_uniform_distribution() {
        let t = numbers_table((0..3200).map(|i| Some(i % 320)));
        let stats = analyze(&t, 1);
        let v = stats.column(1).expect("stats for v");
        let h = v.histogram.as_ref().expect("histogram");
        assert_eq!(h.total, 3200);
        assert_eq!(h.counts.len(), HISTOGRAM_BINS);
        // Uniform over [0, 319]: every bucket should hold ~100 rows.
        for (i, &c) in h.counts.iter().enumerate() {
            assert!(
                (80..=120).contains(&(c as i64)),
                "bucket {i} holds {c} rows, expected ~100"
            );
        }
        // Median sits near the middle.
        let below = h.fraction_below(160.0);
        assert!((below - 0.5).abs() < 0.05, "fraction_below(160) = {below}");
    }

    #[test]
    fn null_counts_are_live_exact() {
        let t = numbers_table([Some(1), None, Some(2), None, None]);
        let stats = analyze(&t, 1);
        let v = stats.column(1).expect("stats for v");
        assert_eq!(v.null_count, 3);
        assert_eq!(v.ndv, 2);
    }

    #[test]
    fn deleted_rows_drop_out_of_the_value_pass() {
        let mut t = numbers_table((0..10).map(Some));
        // Delete the even rows.
        let ids: Vec<_> = t.row_ids().collect();
        for id in ids.iter().step_by(2) {
            assert!(t.delete(*id));
        }
        let stats = analyze(&t, 2);
        assert_eq!(stats.row_count, 5);
        let v = stats.column(1).expect("stats for v");
        assert_eq!(v.ndv, 5);
        // Min/max stay conservative (zone maps never shrink).
        assert_eq!(v.min, Value::Int(0));
        assert_eq!(v.max, Value::Int(9));
    }

    #[test]
    fn string_ndv_counts_distinct_dictionary_entries() {
        let schema = TableSchema::new(vec![ColumnDef::new("s", DataType::Str)]);
        let mut t = Table::new("t", schema);
        for i in 0..50 {
            t.insert(vec![Value::str(format!("cat-{}", i % 7))], 1)
                .expect("insert test row");
        }
        let stats = analyze(&t, 1);
        let s = stats.column(0).expect("stats for s");
        assert_eq!(s.ndv, 7);
        assert!(s.histogram.is_none(), "strings get no histogram");
    }

    #[test]
    fn fraction_below_interpolates_and_clamps() {
        let t = numbers_table((0..1000).map(Some));
        let stats = analyze(&t, 1);
        let h = stats
            .column(1)
            .and_then(|c| c.histogram.as_ref().cloned())
            .expect("histogram");
        assert_eq!(h.fraction_below(-5.0), 0.0);
        assert_eq!(h.fraction_below(5000.0), 1.0);
        let quarter = h.fraction_below(250.0);
        assert!(
            (quarter - 0.25).abs() < 0.05,
            "fraction_below(250) = {quarter}"
        );
    }
}
