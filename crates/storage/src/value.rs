//! Typed values and data types for the row store.
//!
//! The SkyServer schema needs only a small palette of SQL types: 64-bit
//! integers (object ids, HTM ids, bit-flag words), double-precision floats
//! (magnitudes, coordinates), strings (names, URLs), and binary blobs
//! (profile arrays, JPEG cutouts).  `NULL` exists in the type system but the
//! SkyServer schema declares every column `NOT NULL` (§9.1.3), which the
//! constraint layer enforces.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (`bigint`/`int`/flag words).
    Int,
    /// 64-bit IEEE float (`float`/`real`).
    Float,
    /// Variable-length UTF-8 string (`varchar`).
    Str,
    /// Binary blob (`varbinary`/`image`): profile arrays, JPEG tiles.
    Bytes,
    /// Boolean (`bit`).
    Bool,
}

impl DataType {
    /// Parse a SQL type name into a [`DataType`].
    pub fn parse(name: &str) -> Option<DataType> {
        let lower = name.to_ascii_lowercase();
        let base = lower.split('(').next().unwrap_or("").trim();
        match base {
            "bigint" | "int" | "integer" | "smallint" | "tinyint" => Some(DataType::Int),
            "float" | "real" | "double" | "decimal" | "numeric" => Some(DataType::Float),
            "varchar" | "char" | "nvarchar" | "text" | "string" => Some(DataType::Str),
            "varbinary" | "image" | "blob" | "binary" => Some(DataType::Bytes),
            "bit" | "bool" | "boolean" => Some(DataType::Bool),
            _ => None,
        }
    }

    /// The SQL spelling used when rendering DDL.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Int => "bigint",
            DataType::Float => "float",
            DataType::Str => "varchar",
            DataType::Bytes => "varbinary",
            DataType::Bool => "bit",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A single cell value.
///
/// Strings and blobs are reference counted so rows can be cloned cheaply by
/// the executor (projection, sorting, temp-table materialisation).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String (shared).
    Str(Arc<str>),
    /// Binary blob (shared).
    Bytes(Arc<[u8]>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a blob value.
    pub fn bytes(b: impl AsRef<[u8]>) -> Value {
        Value::Bytes(Arc::from(b.as_ref()))
    }

    /// The value's data type, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bytes(_) => Some(DataType::Bytes),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64 (ints and bools coerce; everything else is None).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (floats truncate; bools map to 0/1).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Blob view.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Boolean view: `Bool` values directly, numbers via != 0.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            _ => None,
        }
    }

    /// SQL truthiness for WHERE clauses: NULL is "unknown", i.e. not true.
    pub fn is_truthy(&self) -> bool {
        self.as_bool().unwrap_or(false)
    }

    /// Coerce this value to the given column type, if a lossless-enough
    /// conversion exists (the loader uses this for CSV ingestion).
    pub fn coerce(&self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (v, t) if v.data_type() == Some(t) => Some(v.clone()),
            (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) => Some(Value::Int(*f as i64)),
            (Value::Int(i), DataType::Bool) => Some(Value::Bool(*i != 0)),
            (Value::Bool(b), DataType::Int) => Some(Value::Int(i64::from(*b))),
            (Value::Str(s), DataType::Int) => s.trim().parse::<i64>().ok().map(Value::Int),
            (Value::Str(s), DataType::Float) => s.trim().parse::<f64>().ok().map(Value::Float),
            (Value::Str(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "1" | "true" | "t" | "yes" => Some(Value::Bool(true)),
                "0" | "false" | "f" | "no" => Some(Value::Bool(false)),
                _ => None,
            },
            (Value::Int(i), DataType::Str) => Some(Value::str(i.to_string())),
            (Value::Float(f), DataType::Str) => Some(Value::str(format!("{f}"))),
            (Value::Bool(b), DataType::Str) => Some(Value::str(if *b { "1" } else { "0" })),
            _ => None,
        }
    }

    /// Approximate on-disk size in bytes, used for the Table 1 byte counts
    /// and the I/O model.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 2 + s.len(),
            Value::Bytes(b) => 4 + b.len(),
        }
    }

    /// Total ordering used by indices and ORDER BY.
    ///
    /// NULL sorts first; cross-type numeric comparisons (Int vs Float) use
    /// numeric order; otherwise values order within their type and types are
    /// ordered by a fixed rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// SQL equality (NULL = anything is not equal).
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.total_cmp(other) == Ordering::Equal
    }

    /// Render as a CSV field (no quoting of numerics; strings quoted when
    /// they contain separators).
    pub fn to_csv_field(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{:.1}", f)
                } else {
                    format!("{}", f)
                }
            }
            Value::Bool(b) => if *b { "1" } else { "0" }.to_string(),
            Value::Str(s) => csv_escape(s),
            Value::Bytes(b) => hex_encode(b),
        }
    }
}

/// Quote a CSV field when it contains a separator, quote or newline
/// (doubling embedded quotes, RFC 4180 style).  The single source of the
/// quoting rule for both data fields and header names.
pub fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 2,
        Value::Str(_) => 3,
        Value::Bytes(_) => 4,
    }
}

/// Hex-encode a byte slice (used for blob CSV round-trips).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2 + 2);
    s.push_str("0x");
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decode a `0x…` hex string back into bytes.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    let s = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"))?;
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

/// Hashing consistent with the [`Value::total_cmp`]-based `Eq`: the executor
/// keys hash joins, DISTINCT and GROUP BY on `Value` rows, so equal values
/// must hash equally **across types**.  `Int` and `Float` compare numerically
/// (`Int(2) == Float(2.0)`), so both hash through the float's total-order bit
/// pattern: `f64::total_cmp` equality is exactly bit equality, which makes
/// the bits a sound hash key.  Distinct large ints that collapse to the same
/// `f64` merely collide — `Eq` still separates them.
impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(u8::from(*b));
            }
            Value::Int(i) => {
                state.write_u8(2);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(f.to_bits());
            }
            // Length-prefix variable-width payloads: without it, adjacent
            // values in a multi-column key could shift bytes across value
            // boundaries and collide ([ "a\x03b", "c" ] vs [ "a", "b\x03c" ]).
            Value::Str(s) => {
                state.write_u8(3);
                state.write_usize(s.len());
                state.write(s.as_bytes());
            }
            Value::Bytes(b) => {
                state.write_u8(4);
                state.write_usize(b.len());
                state.write(b);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{}", if *b { 1 } else { 0 }),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "{}", hex_encode(b)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_parse() {
        assert_eq!(DataType::parse("bigint"), Some(DataType::Int));
        assert_eq!(DataType::parse("FLOAT"), Some(DataType::Float));
        assert_eq!(DataType::parse("varchar(64)"), Some(DataType::Str));
        assert_eq!(DataType::parse("varbinary(max)"), Some(DataType::Bytes));
        assert_eq!(DataType::parse("bit"), Some(DataType::Bool));
        assert_eq!(DataType::parse("geometry"), None);
    }

    #[test]
    fn null_sorts_first_and_is_not_equal() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(1)];
        vals.sort();
        assert!(vals[0].is_null());
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
    }

    #[test]
    fn numeric_cross_type_ordering() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert!(Value::Int(10) > Value::Float(9.5));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Int(5).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::str("x").is_truthy());
    }

    #[test]
    fn coerce_between_types() {
        assert_eq!(Value::str("42").coerce(DataType::Int), Some(Value::Int(42)));
        assert_eq!(
            Value::str("3.25").coerce(DataType::Float),
            Some(Value::Float(3.25))
        );
        assert_eq!(
            Value::Int(1).coerce(DataType::Bool),
            Some(Value::Bool(true))
        );
        assert_eq!(Value::Float(7.9).coerce(DataType::Int), Some(Value::Int(7)));
        assert_eq!(Value::str("abc").coerce(DataType::Int), None);
        assert_eq!(Value::Null.coerce(DataType::Int), Some(Value::Null));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(1).byte_size(), 8);
        assert_eq!(Value::Float(1.0).byte_size(), 8);
        assert_eq!(Value::str("abcd").byte_size(), 6);
        assert_eq!(Value::bytes([1u8, 2, 3]).byte_size(), 7);
    }

    #[test]
    fn csv_field_rendering() {
        assert_eq!(Value::Int(5).to_csv_field(), "5");
        assert_eq!(Value::Float(2.0).to_csv_field(), "2.0");
        assert_eq!(Value::str("plain").to_csv_field(), "plain");
        assert_eq!(Value::str("a,b").to_csv_field(), "\"a,b\"");
        assert_eq!(
            Value::str("say \"hi\"").to_csv_field(),
            "\"say \"\"hi\"\"\""
        );
        assert_eq!(Value::Null.to_csv_field(), "");
    }

    #[test]
    fn hex_round_trip() {
        let data = vec![0u8, 1, 2, 255, 128, 7];
        let s = hex_encode(&data);
        assert!(s.starts_with("0x"));
        assert_eq!(hex_decode(&s).unwrap(), data);
        assert_eq!(hex_decode("0xzz"), None);
        assert_eq!(hex_decode("1234"), None);
    }

    #[test]
    fn display_matches_sql_expectations() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Bool(true).to_string(), "1");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn hash_agrees_with_eq_across_types() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        // Cross-type numeric equality must hash equally.
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
        // total_cmp distinguishes -0.0 from +0.0, and so do the hashes.
        assert_ne!(Value::Float(-0.0), Value::Float(0.0));
        assert_ne!(h(&Value::Float(-0.0)), h(&Value::Float(0.0)));
        // Bool(1) and Int(1) are different types, never equal.
        assert_ne!(Value::Bool(true), Value::Int(1));
        // A HashSet keyed on rows of values behaves like the ordered map.
        let mut set = std::collections::HashSet::new();
        assert!(set.insert(vec![Value::Int(3), Value::str("x")]));
        assert!(!set.insert(vec![Value::Float(3.0), Value::str("x")]));
        // String payloads are length-prefixed: bytes must not shift across
        // value boundaries within a multi-column key.
        fn hrow(r: &[Value]) -> u64 {
            let mut s = DefaultHasher::new();
            r.hash(&mut s);
            s.finish()
        }
        assert_ne!(
            hrow(&[Value::str("a\u{3}b"), Value::str("c")]),
            hrow(&[Value::str("a"), Value::str("b\u{3}c")]),
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
    }
}
