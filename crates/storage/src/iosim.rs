//! Analytic model of the SkyServer's I/O and CPU hardware (§12, Fig 14/15).
//!
//! The paper's evaluation hardware is a Compaq ML530 with two 1 GHz Pentium
//! III Xeon CPUs, 2 GB of RAM, two Ultra3 SCSI controllers and ten 10 kRPM
//! SCSI disks, plus several measured constants:
//!
//! * one disk delivers ~40 MB/s of sequential bandwidth,
//! * three disks saturate one Ultra3 controller at ~119 MB/s,
//! * a 64-bit/33 MHz PCI bus saturates at ~220 MB/s,
//! * memory streams at ~600 MB/s (single threaded),
//! * SQL Server evaluates a trivial `count(*)` at ~10 CPU clocks per byte
//!   (≈2.6 M records/s, 75 % CPU on 9 disks ≈ 320 MB/s) and the filtered
//!   `count(*) where (r-g)>1` at ~19 clocks per byte (CPU bound),
//! * warm (in-memory) scans run at ~5 M records/s.
//!
//! We cannot buy that machine, so this module reproduces the *model*: given
//! a disk/controller configuration and a per-record CPU cost it predicts the
//! sequential scan bandwidth and converts a scan's bytes/rows into simulated
//! elapsed and CPU seconds.  The `reproduce fig15` harness sweeps disk
//! configurations through this model, and the SQL executor uses it to report
//! paper-scale elapsed times next to measured wall-clock times.

/// Hardware constants measured in the paper (all bandwidths in MB/s).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HardwareProfile {
    /// Sequential bandwidth of a single disk.
    pub disk_mbps: f64,
    /// Saturation bandwidth of one SCSI controller.
    pub controller_mbps: f64,
    /// Saturation bandwidth of one 64-bit/33 MHz PCI bus.
    pub pci_bus_mbps: f64,
    /// Single-threaded memory bandwidth.
    pub memory_mbps: f64,
    /// CPU clock rate in MHz (1 GHz Pentium III Xeon).
    pub cpu_mhz: f64,
    /// Number of CPUs available to a parallel scan.
    pub cpus: u32,
    /// Maximum number of disks one controller is attached to.
    pub disks_per_controller: u32,
    /// Maximum number of controllers one PCI bus can feed before saturating.
    pub controllers_per_bus: u32,
}

impl Default for HardwareProfile {
    fn default() -> Self {
        HardwareProfile::skyserver_ml530()
    }
}

impl HardwareProfile {
    /// The backend database server of the paper (Compaq ProLiant ML530).
    pub fn skyserver_ml530() -> Self {
        HardwareProfile {
            disk_mbps: 40.0,
            controller_mbps: 119.0,
            pci_bus_mbps: 220.0,
            memory_mbps: 600.0,
            cpu_mhz: 1000.0,
            cpus: 2,
            disks_per_controller: 3,
            controllers_per_bus: 2,
        }
    }

    /// The web front-end (Compaq DL380): same CPUs, single mirrored disk.
    pub fn skyserver_dl380() -> Self {
        HardwareProfile {
            cpus: 2,
            ..HardwareProfile::skyserver_ml530()
        }
    }
}

/// CPU cost model for record processing, in clocks per byte (cpb).
/// The paper reports ~10 cpb for a trivial predicate and ~19 cpb for the
/// `(r-g) > 1` filter (~1 300 and ~2 300 clocks per 128-byte record).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CpuCost {
    /// Clocks of CPU work per byte scanned.
    pub clocks_per_byte: f64,
}

impl CpuCost {
    /// Trivial `select count(*)` scan.
    pub fn simple_scan() -> Self {
        CpuCost {
            clocks_per_byte: 10.0,
        }
    }

    /// Scan with an arithmetic predicate like `(r-g) > 1`.
    pub fn filtered_scan() -> Self {
        CpuCost {
            clocks_per_byte: 19.0,
        }
    }

    /// Raw file copy (NTFS scan): almost no per-byte CPU.
    pub fn raw_copy() -> Self {
        CpuCost {
            clocks_per_byte: 1.2,
        }
    }

    /// Index lookup path: dominated by per-row logic rather than bytes.
    pub fn index_lookup() -> Self {
        CpuCost {
            clocks_per_byte: 25.0,
        }
    }

    /// Arbitrary cost.
    pub fn new(clocks_per_byte: f64) -> Self {
        CpuCost { clocks_per_byte }
    }
}

/// A disk subsystem configuration (how many spindles/controllers/buses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DiskConfig {
    /// Number of spindles.
    pub disks: u32,
    /// Number of disk controllers.
    pub controllers: u32,
    /// Number of PCI buses the controllers share.
    pub pci_buses: u32,
}

impl DiskConfig {
    /// A configuration with `disks` spindles and one controller per
    /// `disks_per_controller` disks (the paper added a controller for every
    /// three disks), all on one PCI bus.
    pub fn balanced(disks: u32, profile: &HardwareProfile) -> Self {
        let controllers = disks.div_ceil(profile.disks_per_controller).max(1);
        DiskConfig {
            disks,
            controllers,
            pci_buses: 1,
        }
    }

    /// The paper's "12 disk, 2 volume" point: the 12-disk configuration with
    /// the controllers split over two PCI buses.
    pub fn two_volume(disks: u32, profile: &HardwareProfile) -> Self {
        let controllers = disks.div_ceil(profile.disks_per_controller).max(1);
        DiskConfig {
            disks,
            controllers,
            pci_buses: 2,
        }
    }

    /// The production SkyServer database volume: 4 data mirrors on 2
    /// controllers (≈140 MB/s scans, §12).
    pub fn skyserver_production() -> Self {
        DiskConfig {
            disks: 4,
            controllers: 2,
            pci_buses: 1,
        }
    }
}

/// The I/O simulator: combines a hardware profile with a disk configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoSimulator {
    /// Per-component hardware speeds.
    pub profile: HardwareProfile,
    /// Disk subsystem shape.
    pub config: DiskConfig,
}

/// Simulated timing of a scan or lookup.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct SimTiming {
    /// CPU seconds consumed (summed over cores).
    pub cpu_seconds: f64,
    /// Wall-clock seconds (max of IO time and per-core CPU time).
    pub elapsed_seconds: f64,
    /// Whether the workload was I/O bound (elapsed dominated by the disks).
    pub io_bound: bool,
    /// Effective sequential bandwidth achieved, MB/s.
    pub effective_mbps: f64,
}

impl IoSimulator {
    /// Build a simulator for the given configuration.
    pub fn new(profile: HardwareProfile, config: DiskConfig) -> Self {
        IoSimulator { profile, config }
    }

    /// The paper's production database server (4 data disks, 2 controllers).
    pub fn skyserver_production() -> Self {
        IoSimulator::new(
            HardwareProfile::skyserver_ml530(),
            DiskConfig::skyserver_production(),
        )
    }

    /// Raw hardware sequential bandwidth of the disk path (before any CPU
    /// limits): min of disk, controller and bus aggregate bandwidths.
    pub fn raw_io_mbps(&self) -> f64 {
        let p = &self.profile;
        let disks = f64::from(self.config.disks) * p.disk_mbps;
        let controllers = f64::from(self.config.controllers) * p.controller_mbps;
        let buses = f64::from(self.config.pci_buses) * p.pci_bus_mbps;
        disks
            .min(controllers)
            .min(buses)
            .min(p.memory_mbps * f64::from(self.config.pci_buses))
    }

    /// CPU-limited processing bandwidth in MB/s for the given per-byte cost,
    /// using all CPUs.
    pub fn cpu_mbps(&self, cost: CpuCost) -> f64 {
        let clocks_per_sec = self.profile.cpu_mhz * 1e6 * f64::from(self.profile.cpus);
        clocks_per_sec / cost.clocks_per_byte / 1e6
    }

    /// Effective sequential scan bandwidth: the minimum of the I/O path and
    /// the CPU processing rate (this is the Fig 15 curve).
    pub fn scan_mbps(&self, cost: CpuCost) -> f64 {
        self.raw_io_mbps().min(self.cpu_mbps(cost))
    }

    /// Simulate a sequential scan of `bytes` bytes with the given CPU cost.
    pub fn simulate_scan(&self, bytes: u64, cost: CpuCost) -> SimTiming {
        let mb = bytes as f64 / 1e6;
        let io_seconds = mb / self.raw_io_mbps();
        let cpu_seconds = mb / self.cpu_mbps(cost) * f64::from(self.profile.cpus);
        let per_core_cpu = cpu_seconds / f64::from(self.profile.cpus);
        let elapsed = io_seconds.max(per_core_cpu);
        SimTiming {
            cpu_seconds,
            elapsed_seconds: elapsed,
            io_bound: io_seconds >= per_core_cpu,
            effective_mbps: if elapsed > 0.0 { mb / elapsed } else { 0.0 },
        }
    }

    /// Simulate a warm (in-memory) scan: limited by memory bandwidth and CPU.
    pub fn simulate_warm_scan(&self, bytes: u64, cost: CpuCost) -> SimTiming {
        let mb = bytes as f64 / 1e6;
        let mem_seconds = mb / self.profile.memory_mbps;
        let cpu_seconds = mb / self.cpu_mbps(cost) * f64::from(self.profile.cpus);
        let per_core_cpu = cpu_seconds / f64::from(self.profile.cpus);
        let elapsed = mem_seconds.max(per_core_cpu);
        SimTiming {
            cpu_seconds,
            elapsed_seconds: elapsed,
            io_bound: false,
            effective_mbps: if elapsed > 0.0 { mb / elapsed } else { 0.0 },
        }
    }

    /// Simulate `lookups` random index lookups touching `bytes_per_lookup`
    /// each.  Random 8 KB-page reads cost a seek (~5 ms cold); warm lookups
    /// run from cache.
    pub fn simulate_index_lookups(
        &self,
        lookups: u64,
        bytes_per_lookup: u64,
        warm: bool,
    ) -> SimTiming {
        let seek_seconds = if warm { 0.0 } else { 0.005 };
        let per_lookup_io =
            seek_seconds + (bytes_per_lookup as f64 / 1e6) / self.profile.disk_mbps.max(1.0);
        // Random IOs spread over the spindles.
        let io_seconds = per_lookup_io * lookups as f64 / f64::from(self.config.disks.max(1));
        let cpu_seconds = lookups as f64 * 20_000.0 / (self.profile.cpu_mhz * 1e6);
        let elapsed = io_seconds.max(cpu_seconds / f64::from(self.profile.cpus));
        SimTiming {
            cpu_seconds,
            elapsed_seconds: elapsed,
            io_bound: io_seconds >= cpu_seconds,
            effective_mbps: 0.0,
        }
    }

    /// Records per second achievable for a scan of records of `record_bytes`
    /// bytes (the paper quotes 2.6-2.7 M records/s for 128-byte tag records).
    pub fn records_per_second(&self, record_bytes: u64, cost: CpuCost) -> f64 {
        self.scan_mbps(cost) * 1e6 / record_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(disks: u32) -> IoSimulator {
        let p = HardwareProfile::skyserver_ml530();
        IoSimulator::new(p, DiskConfig::balanced(disks, &p))
    }

    #[test]
    fn single_disk_runs_at_disk_speed() {
        let s = sim(1);
        assert!((s.raw_io_mbps() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn three_disks_saturate_one_controller() {
        // 3 disks * 40 = 120 > 119 controller cap.
        let s = sim(3);
        assert!((s.raw_io_mbps() - 119.0).abs() < 1e-9);
        // 2 disks stay below the controller limit.
        assert!((sim(2).raw_io_mbps() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn pci_bus_caps_many_controllers() {
        // 9 disks => 3 controllers => 357 raw, capped by one PCI bus at 220.
        let s = sim(9);
        assert!((s.raw_io_mbps() - 220.0).abs() < 1e-9);
        // Two buses lift the cap.
        let p = HardwareProfile::skyserver_ml530();
        let two_vol = IoSimulator::new(p, DiskConfig::two_volume(12, &p));
        assert!(two_vol.raw_io_mbps() > s.raw_io_mbps());
    }

    #[test]
    fn sql_scan_saturates_cpu_around_320_mbps() {
        // 2 CPUs * 1 GHz / 10 cpb = 200 MB/s... the paper reports ~320 MB/s
        // at 75 % CPU, i.e. the effective cost is nearer 6-7 cpb, but the
        // relationship we need is: with many disks the scan becomes CPU
        // bound well below the raw-IO ceiling.
        let p = HardwareProfile::skyserver_ml530();
        let s = IoSimulator::new(p, DiskConfig::two_volume(12, &p));
        let sql = s.scan_mbps(CpuCost::simple_scan());
        let raw = s.scan_mbps(CpuCost::raw_copy());
        assert!(sql < raw, "SQL scan should saturate below raw NTFS scan");
        assert!(
            raw > 300.0,
            "raw scan should exceed 300 MB/s on 12 disks/2 buses"
        );
    }

    #[test]
    fn filtered_scan_is_cpu_bound_on_production_config() {
        let s = IoSimulator::skyserver_production();
        let t = s.simulate_scan(30_000_000_000, CpuCost::filtered_scan());
        // 30 GB at 140 MB/s raw would be ~214 s; the 19 cpb predicate gives
        // 30e9*19/2e9 = 285 s of CPU over 2 cores ≈ 142 s per core, so this
        // workload sits near the IO/CPU crossover. The simple scan must be
        // strictly IO bound.
        let simple = s.simulate_scan(30_000_000_000, CpuCost::simple_scan());
        assert!(simple.io_bound);
        assert!(
            simple.elapsed_seconds > 150.0 && simple.elapsed_seconds < 260.0,
            "30GB scan at ~140MB/s should take ~3.5 minutes, got {}",
            simple.elapsed_seconds
        );
        assert!(t.cpu_seconds > simple.cpu_seconds);
    }

    #[test]
    fn production_scan_bandwidth_near_140_mbps() {
        let s = IoSimulator::skyserver_production();
        let mbps = s.scan_mbps(CpuCost::simple_scan());
        assert!((139.0..=161.0).contains(&mbps), "got {mbps}");
    }

    #[test]
    fn warm_scan_faster_than_cold() {
        let s = IoSimulator::skyserver_production();
        let cold = s.simulate_scan(2_000_000_000, CpuCost::simple_scan());
        let warm = s.simulate_warm_scan(2_000_000_000, CpuCost::simple_scan());
        assert!(warm.elapsed_seconds < cold.elapsed_seconds);
    }

    #[test]
    fn index_lookups_warm_vs_cold() {
        let s = IoSimulator::skyserver_production();
        let cold = s.simulate_index_lookups(1000, 8192, false);
        let warm = s.simulate_index_lookups(1000, 8192, true);
        assert!(cold.elapsed_seconds > warm.elapsed_seconds);
        assert!(
            cold.elapsed_seconds < 10.0,
            "1000 cold lookups spread over 4 disks"
        );
    }

    #[test]
    fn records_per_second_scale() {
        let p = HardwareProfile::skyserver_ml530();
        let s = IoSimulator::new(p, DiskConfig::balanced(9, &p));
        let rps = s.records_per_second(128, CpuCost::simple_scan());
        // Paper: ~2.6-2.7 million 128-byte records/s. Our model gives
        // min(220 raw, 200 cpu) / 128 B ≈ 1.56 M/s -- same order of magnitude.
        assert!(rps > 1.0e6 && rps < 4.0e6, "got {rps}");
    }

    #[test]
    fn bandwidth_monotone_in_disk_count() {
        let mut last = 0.0;
        for d in 1..=12 {
            let mbps = sim(d).raw_io_mbps();
            assert!(
                mbps >= last,
                "bandwidth must not decrease when adding disks"
            );
            last = mbps;
        }
    }

    #[test]
    fn scan_timing_effective_mbps_consistent() {
        let s = sim(4);
        let t = s.simulate_scan(10_000_000_000, CpuCost::simple_scan());
        assert!(t.elapsed_seconds > 0.0);
        let expected = 10_000.0 / t.elapsed_seconds;
        assert!((t.effective_mbps - expected).abs() < 1.0);
    }
}
