//! The release catalog: named, immutable, copy-on-write database snapshots.
//!
//! The real SkyServer's life was a sequence of *Data Releases* (DR1, DR2,
//! ...): a new catalog version is published while the previous one keeps
//! serving public traffic.  This module reproduces that lifecycle on top of
//! the storage layer's copy-on-write primitives:
//!
//! * a [`Database`] clone shares every columnar [`Segment`] and B-tree
//!   index behind `Arc`s, so snapshotting the current state for a release
//!   copies only catalog metadata (names, schemas, views, stats);
//! * [`ReleaseCatalog::publish`] pins such a snapshot under a release name
//!   (`dr1`, `dr2`, ...).  Published snapshots are immutable: readers pin
//!   the `Arc<Database>` and are never affected by later publishes;
//! * [`ReleaseCatalog::diff`] reports, per table, how much of a release is
//!   physically shared with another one — segment identity is
//!   `Arc::as_ptr`, so "unchanged" means *the same bytes*, not merely
//!   equal contents.
//!
//! Each release carries its own table statistics and zone maps for free:
//! they live inside the snapshotted `Database`, frozen at publish time.

use crate::database::Database;
use crate::error::StorageError;
use crate::table::{Segment, Table};
use std::collections::HashSet;
use std::sync::Arc;

/// One published release: a named immutable database snapshot.
#[derive(Debug, Clone)]
struct Release {
    /// Release name as published (`dr1`, `dr2`, ...).
    name: String,
    /// 1-based publish sequence number.
    seq: u64,
    /// The pinned snapshot.
    db: Arc<Database>,
}

/// A catalog of published releases, in publish order.
///
/// The catalog itself is cheap to clone (it holds `Arc`s), so a forked
/// engine carries the same release history as its parent.
#[derive(Debug, Clone, Default)]
pub struct ReleaseCatalog {
    releases: Vec<Release>,
}

/// Summary of one published release (the web tier's release-list payload).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReleaseInfo {
    /// Release name.
    pub name: String,
    /// 1-based publish sequence number.
    pub seq: u64,
    /// Number of tables in the snapshot.
    pub tables: usize,
    /// Total live rows across all tables.
    pub rows: u64,
    /// Total bytes of live row data.
    pub data_bytes: u64,
}

/// How a table differs between two releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// The table exists only in the `to` release.
    Added,
    /// The table exists only in the `from` release.
    Removed,
    /// The table exists in both but rows or segments differ.
    Changed,
    /// The table is physically identical (every segment shared).
    Unchanged,
}

impl DiffStatus {
    /// The stable lowercase wire name the JSON API renders.
    pub fn as_str(self) -> &'static str {
        match self {
            DiffStatus::Added => "added",
            DiffStatus::Removed => "removed",
            DiffStatus::Changed => "changed",
            DiffStatus::Unchanged => "unchanged",
        }
    }
}

impl serde::Serialize for DiffStatus {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.as_str().to_string())
    }
}

impl serde::Deserialize for DiffStatus {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        match content {
            serde::Content::Str(s) => match s.as_str() {
                "added" => Ok(DiffStatus::Added),
                "removed" => Ok(DiffStatus::Removed),
                "changed" => Ok(DiffStatus::Changed),
                "unchanged" => Ok(DiffStatus::Unchanged),
                other => Err(serde::DeError::custom(format!(
                    "unknown diff status `{other}`"
                ))),
            },
            _ => Err(serde::DeError::custom("diff status must be a string")),
        }
    }
}

/// Per-table half of a [`ReleaseDiff`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TableDiff {
    /// Table name.
    pub table: String,
    /// Added / removed / changed / unchanged.
    pub status: DiffStatus,
    /// Live rows in the `from` release (0 when the table is absent there).
    pub rows_from: u64,
    /// Live rows in the `to` release (0 when the table is absent there).
    pub rows_to: u64,
    /// Segments present in `to` but not physically shared with `from`.
    pub segments_added: usize,
    /// Segments present in `from` but not physically shared with `to`.
    pub segments_removed: usize,
    /// Segments physically shared (same `Arc`) by both releases.
    pub segments_shared: usize,
}

/// The full diff report between two releases.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReleaseDiff {
    /// The baseline release name.
    pub from: String,
    /// The compared release name.
    pub to: String,
    /// Per-table diffs, sorted by table name; unchanged tables included so
    /// the report doubles as a sharing audit.
    pub tables: Vec<TableDiff>,
}

impl ReleaseCatalog {
    /// An empty catalog.
    pub fn new() -> ReleaseCatalog {
        ReleaseCatalog::default()
    }

    /// Number of published releases.
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    /// True when nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }

    /// Publish `db` under `name`.  Names are case-insensitive and must be
    /// unique; republishing an existing name is an error (releases are
    /// immutable once published).
    pub fn publish(&mut self, name: &str, db: Arc<Database>) -> Result<(), StorageError> {
        if self.contains(name) {
            return Err(StorageError::DuplicateName(name.to_string()));
        }
        let seq = self.releases.len() as u64 + 1;
        self.releases.push(Release {
            name: name.to_string(),
            seq,
            db,
        });
        Ok(())
    }

    /// Is `name` a published release (case-insensitive)?
    pub fn contains(&self, name: &str) -> bool {
        self.find(name).is_some()
    }

    /// The pinned snapshot published under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Arc<Database>> {
        self.find(name).map(|r| &r.db)
    }

    /// The most recently published release, as `(name, snapshot)`.
    pub fn latest(&self) -> Option<(&str, &Arc<Database>)> {
        self.releases.last().map(|r| (r.name.as_str(), &r.db))
    }

    /// Release names in publish order.
    pub fn names(&self) -> Vec<String> {
        self.releases.iter().map(|r| r.name.clone()).collect()
    }

    /// Summaries of every release, in publish order.
    pub fn infos(&self) -> Vec<ReleaseInfo> {
        self.releases
            .iter()
            .map(|r| {
                let rows: u64 =
                    r.db.table_names()
                        .iter()
                        .filter_map(|n| r.db.table(n).ok())
                        .map(|t| t.row_count() as u64)
                        .sum();
                ReleaseInfo {
                    name: r.name.clone(),
                    seq: r.seq,
                    tables: r.db.table_names().len(),
                    rows,
                    data_bytes: r.db.total_data_bytes(),
                }
            })
            .collect()
    }

    /// Diff two releases: per table, rows on each side and how many
    /// segments are physically shared vs added/removed.  Errors with
    /// [`StorageError::UnknownRelease`] when either name is not published.
    pub fn diff(&self, from: &str, to: &str) -> Result<ReleaseDiff, StorageError> {
        let a = self
            .find(from)
            .ok_or_else(|| StorageError::UnknownRelease(from.to_string()))?;
        let b = self
            .find(to)
            .ok_or_else(|| StorageError::UnknownRelease(to.to_string()))?;
        let mut names: Vec<String> = a.db.table_names();
        for n in b.db.table_names() {
            if !names.iter().any(|x| x.eq_ignore_ascii_case(&n)) {
                names.push(n);
            }
        }
        names.sort_by_key(|n| n.to_ascii_lowercase());
        let tables = names
            .iter()
            .map(|name| table_diff(name, a.db.table(name).ok(), b.db.table(name).ok()))
            .collect();
        Ok(ReleaseDiff {
            from: a.name.clone(),
            to: b.name.clone(),
            tables,
        })
    }

    fn find(&self, name: &str) -> Option<&Release> {
        self.releases
            .iter()
            .find(|r| r.name.eq_ignore_ascii_case(name))
    }
}

/// Diff one table across two snapshots by physical segment identity.
fn table_diff(name: &str, from: Option<&Table>, to: Option<&Table>) -> TableDiff {
    let ptrs =
        |t: &Table| -> HashSet<*const Segment> { t.segments().iter().map(Arc::as_ptr).collect() };
    match (from, to) {
        (None, Some(t)) => TableDiff {
            table: name.to_string(),
            status: DiffStatus::Added,
            rows_from: 0,
            rows_to: t.row_count() as u64,
            segments_added: t.segments().len(),
            segments_removed: 0,
            segments_shared: 0,
        },
        (Some(f), None) => TableDiff {
            table: name.to_string(),
            status: DiffStatus::Removed,
            rows_from: f.row_count() as u64,
            rows_to: 0,
            segments_added: 0,
            segments_removed: f.segments().len(),
            segments_shared: 0,
        },
        (Some(f), Some(t)) => {
            let from_ptrs = ptrs(f);
            let shared = t
                .segments()
                .iter()
                .filter(|s| from_ptrs.contains(&Arc::as_ptr(s)))
                .count();
            let added = t.segments().len().saturating_sub(shared);
            let removed = f.segments().len().saturating_sub(shared);
            let status = if added == 0 && removed == 0 && f.row_count() == t.row_count() {
                DiffStatus::Unchanged
            } else {
                DiffStatus::Changed
            };
            TableDiff {
                table: name.to_string(),
                status,
                rows_from: f.row_count() as u64,
                rows_to: t.row_count() as u64,
                segments_added: added,
                segments_removed: removed,
                segments_shared: shared,
            }
        }
        // Unreachable by construction (names came from one of the sides),
        // but degrade gracefully rather than panic.
        (None, None) => TableDiff {
            table: name.to_string(),
            status: DiffStatus::Unchanged,
            rows_from: 0,
            rows_to: 0,
            segments_added: 0,
            segments_removed: 0,
            segments_shared: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::{DataType, Value};

    fn db_with_rows(n: i64) -> Database {
        let mut db = Database::new("sky");
        db.create_table(
            "obj",
            TableSchema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("mag", DataType::Float),
            ]),
        )
        .unwrap();
        for i in 0..n {
            db.insert("obj", vec![Value::Int(i), Value::Float(i as f64)])
                .unwrap();
        }
        db
    }

    #[test]
    fn publish_and_lookup_are_case_insensitive() {
        let mut cat = ReleaseCatalog::new();
        cat.publish("dr1", Arc::new(db_with_rows(3))).unwrap();
        assert!(cat.contains("DR1"));
        assert!(cat.get("Dr1").is_some());
        assert_eq!(cat.names(), vec!["dr1"]);
        assert_eq!(cat.latest().map(|(n, _)| n), Some("dr1"));
        assert!(matches!(
            cat.publish("DR1", Arc::new(db_with_rows(1))),
            Err(StorageError::DuplicateName(_))
        ));
    }

    #[test]
    fn snapshots_are_immune_to_later_writes() {
        let mut cat = ReleaseCatalog::new();
        let mut live = db_with_rows(5);
        cat.publish("dr1", Arc::new(live.clone())).unwrap();
        live.insert("obj", vec![Value::Int(100), Value::Float(1.0)])
            .unwrap();
        assert_eq!(cat.get("dr1").unwrap().table("obj").unwrap().row_count(), 5);
        assert_eq!(live.table("obj").unwrap().row_count(), 6);
    }

    #[test]
    fn diff_reports_shared_and_changed_segments() {
        let mut cat = ReleaseCatalog::new();
        let mut live = db_with_rows(crate::table::SEGMENT_ROWS as i64 + 10);
        cat.publish("dr1", Arc::new(live.clone())).unwrap();
        // Append into the open tail segment: the full first segment stays
        // physically shared, the tail is rewritten.
        live.insert("obj", vec![Value::Int(999_999), Value::Float(0.0)])
            .unwrap();
        cat.publish("dr2", Arc::new(live.clone())).unwrap();
        let diff = cat.diff("dr1", "dr2").unwrap();
        assert_eq!(diff.from, "dr1");
        assert_eq!(diff.to, "dr2");
        let t = &diff.tables[0];
        assert_eq!(t.status, DiffStatus::Changed);
        assert_eq!(t.segments_shared, 1, "the sealed segment stays shared");
        assert_eq!(t.segments_added, 1, "the tail segment was rewritten");
        assert_eq!(t.segments_removed, 1);
        assert_eq!(t.rows_to, t.rows_from + 1);

        // A no-op publish shares everything.
        cat.publish("dr3", Arc::new(live.clone())).unwrap();
        let same = cat.diff("dr2", "dr3").unwrap();
        assert_eq!(same.tables[0].status, DiffStatus::Unchanged);
        assert_eq!(same.tables[0].segments_added, 0);

        assert!(matches!(
            cat.diff("dr1", "nope"),
            Err(StorageError::UnknownRelease(_))
        ));
    }

    #[test]
    fn diff_reports_added_and_removed_tables() {
        let mut cat = ReleaseCatalog::new();
        let mut live = db_with_rows(2);
        cat.publish("dr1", Arc::new(live.clone())).unwrap();
        live.create_table(
            "neighbors",
            TableSchema::new(vec![ColumnDef::new("id", DataType::Int)]),
        )
        .unwrap();
        live.insert("neighbors", vec![Value::Int(1)]).unwrap();
        live.drop_table("obj").unwrap();
        cat.publish("dr2", Arc::new(live)).unwrap();
        let diff = cat.diff("dr1", "dr2").unwrap();
        let by_name = |n: &str| diff.tables.iter().find(|t| t.table == n).unwrap();
        assert_eq!(by_name("neighbors").status, DiffStatus::Added);
        assert_eq!(by_name("obj").status, DiffStatus::Removed);
        assert_eq!(by_name("obj").segments_removed, 1);
    }

    #[test]
    fn infos_summarize_in_publish_order() {
        let mut cat = ReleaseCatalog::new();
        cat.publish("dr1", Arc::new(db_with_rows(4))).unwrap();
        cat.publish("dr2", Arc::new(db_with_rows(7))).unwrap();
        let infos = cat.infos();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].name, "dr1");
        assert_eq!(infos[0].seq, 1);
        assert_eq!(infos[0].rows, 4);
        assert_eq!(infos[1].rows, 7);
        assert!(infos[1].data_bytes > 0);
    }
}
