//! # skyserver-storage
//!
//! The relational storage engine substrate of the SkyServer reproduction.
//!
//! The original SkyServer runs on Microsoft SQL Server 2000; this crate is a
//! from-scratch stand-in providing the pieces the paper's design actually
//! relies on:
//!
//! * typed [`Value`]s and [`TableSchema`]s with NOT NULL enforcement
//!   (§9.1.3: *"We also insist that all fields are non-null"*),
//! * heap [`Table`]s whose rows carry insert timestamps (the loader's UNDO
//!   primitive, §9.4),
//! * composite, optionally covering [`BTreeIndex`]es -- the automatically
//!   managed replacement for the old "tag tables" (§9.1.3),
//! * a [`Database`] catalog with views, foreign keys and size accounting
//!   (Table 1),
//! * an analytic [`iosim`] hardware model of the paper's Compaq ML530 disk
//!   subsystem used to project measured scans onto the paper's Figure 13 and
//!   Figure 15 axes.
//!
//! The SQL layer (`skyserver-sql`) builds the parser, planner and executor
//! on top of these primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod error;
pub mod failpoints;
pub mod index;
pub mod iosim;
pub mod release;
pub mod schema;
pub mod stats;
pub mod table;
pub mod table_stats;
pub mod value;

pub use database::{Database, ForeignKey, TableSummary, ViewDef};
pub use error::StorageError;
pub use failpoints::FailAction;
pub use index::{BTreeIndex, IndexDef, IndexEntry, IndexKey};
pub use iosim::{CpuCost, DiskConfig, HardwareProfile, IoSimulator, SimTiming};
pub use release::{DiffStatus, ReleaseCatalog, ReleaseDiff, ReleaseInfo, TableDiff};
pub use schema::{ColumnDef, SchemaError, TableSchema};
pub use stats::{ExecutionStats, ScanStats};
pub use table::{Column, ColumnData, RowId, Segment, Table, Timestamp, SEGMENT_ROWS};
pub use table_stats::{ColumnStats, Histogram, TableStats, HISTOGRAM_BINS, KMV_K};
pub use value::{csv_escape, hex_decode, hex_encode, DataType, Value};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            any::<f64>()
                .prop_filter("finite", |f| f.is_finite())
                .prop_map(Value::Float),
            "[a-zA-Z0-9 ,._-]{0,24}".prop_map(Value::str),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    proptest! {
        /// Value ordering is a total order: antisymmetric and transitive on
        /// sampled triples.
        #[test]
        fn value_ordering_total(a in arb_value(), b in arb_value(), c in arb_value()) {
            use std::cmp::Ordering::*;
            let ab = a.total_cmp(&b);
            let ba = b.total_cmp(&a);
            prop_assert_eq!(ab.reverse(), ba);
            if ab != Greater && b.total_cmp(&c) != Greater {
                prop_assert_ne!(a.total_cmp(&c), Greater);
            }
            prop_assert_eq!(a.total_cmp(&a), Equal);
        }

        /// Hex encoding of blobs round-trips.
        #[test]
        fn hex_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let enc = hex_encode(&data);
            prop_assert_eq!(hex_decode(&enc).unwrap(), data);
        }

        /// Inserting rows then deleting a timestamp window leaves exactly the
        /// rows outside the window, and index contents match the heap.
        #[test]
        fn undo_window_consistency(stamps in proptest::collection::vec(1u64..100, 1..60),
                                   lo in 1u64..100, hi in 1u64..100) {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let schema = TableSchema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ]);
            let mut db = Database::new("p");
            db.create_table("t", schema).unwrap();
            db.create_index(IndexDef::new("ix_v", "t", &["v"])).unwrap();
            for (i, ts) in stamps.iter().enumerate() {
                db.insert_with_timestamp("t", vec![Value::Int(i as i64), Value::Int(*ts as i64)], *ts).unwrap();
            }
            let expected_remaining = stamps.iter().filter(|&&t| t < lo || t > hi).count();
            let removed = db.delete_by_timestamp_range("t", lo, hi).unwrap();
            prop_assert_eq!(removed, stamps.len() - expected_remaining);
            prop_assert_eq!(db.table("t").unwrap().row_count(), expected_remaining);
            prop_assert_eq!(db.index("t", "ix_v").unwrap().len(), expected_remaining);
        }

        /// An index range scan returns exactly the rows a full scan + filter
        /// would (index and heap agree).
        #[test]
        fn index_range_matches_scan(values in proptest::collection::vec(-50i64..50, 1..80),
                                    lo in -50i64..50, hi in -50i64..50) {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let schema = TableSchema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ]);
            let mut db = Database::new("p");
            db.create_table("t", schema).unwrap();
            db.create_index(IndexDef::new("ix_v", "t", &["v"])).unwrap();
            for (i, v) in values.iter().enumerate() {
                db.insert("t", vec![Value::Int(i as i64), Value::Int(*v)]).unwrap();
            }
            let idx = db.index("t", "ix_v").unwrap();
            let from_index = idx
                .seek_range(Some(&IndexKey(vec![Value::Int(lo)])), Some(&IndexKey(vec![Value::Int(hi)])))
                .len();
            let from_scan = values.iter().filter(|&&v| v >= lo && v <= hi).count();
            prop_assert_eq!(from_index, from_scan);
        }
    }
}
